//! Lowering parsed files into the analysis IR.
//!
//! Each file is analysed in isolation (§4.1): every function and method is an
//! entry point, `self`/`this` is assumed to hold an instance whose origin is
//! the nearest *externally defined* base class (which is why Figure 2's
//! `self` gets origin `TestCase` rather than the file-local `TestPicture`),
//! imports bind module objects, and calls to functions defined outside the
//! file return fresh allocation sites labelled with the callee name.

use crate::ir::{Func, FuncId, Instr, Module, TermUse, Var};
use namer_syntax::{vocab, Ast, Lang, NodeId, ReceiverStyle, Sym};
use std::collections::HashMap;

/// Field name used for container-element loads/stores.
pub fn elem_field() -> Sym {
    Sym::intern("$elem")
}

/// The ⊤ origin label (never reported).
pub fn top_label() -> Sym {
    Sym::intern("$top")
}

struct ClassInfo {
    bases: Vec<Sym>,
}

/// Lowers `ast` (a parsed file) to the analysis IR.
pub fn lower(ast: &Ast, lang: Lang) -> Module {
    let mut b = Builder {
        ast,
        lang,
        module: Module::default(),
        classes: HashMap::new(),
        free_funcs: HashMap::new(),
        method_funcs: HashMap::new(),
        module_env: HashMap::new(),
        next_site: 0,
    };
    b.collect(ast.root(), None);
    b.lower_all();
    b.module
}

struct Builder<'a> {
    ast: &'a Ast,
    lang: Lang,
    module: Module,
    classes: HashMap<Sym, ClassInfo>,
    /// module-level function name → (def node, FuncId)
    free_funcs: HashMap<Sym, (NodeId, FuncId)>,
    /// (class, method) → (def node, FuncId)
    method_funcs: HashMap<(Sym, Sym), (NodeId, FuncId)>,
    /// final version of module-level names (globals, imports)
    module_env: HashMap<Sym, Var>,
    next_site: u32,
}

/// Per-function lowering state.
struct FnCx {
    env: HashMap<Sym, Var>,
    param_inits: Vec<Instr>,
    instrs: Vec<Instr>,
    ret: Var,
    self_var: Option<Var>,
    self_class: Option<Sym>,
}

impl<'a> Builder<'a> {
    // ----- collection pass ---------------------------------------------------

    fn collect(&mut self, id: NodeId, enclosing_class: Option<Sym>) {
        let v = self.ast.value(id);
        if v == vocab::class_def() {
            let name = match self.declared_name(id) {
                Some(n) => n,
                None => return,
            };
            let mut bases = Vec::new();
            for &c in self.ast.children(id) {
                let cv = self.ast.value(c);
                if cv == vocab::bases() {
                    for &base in self.ast.children(c) {
                        if let Some(b) = self.base_name(base) {
                            bases.push(b);
                        }
                    }
                } else if self.is_def(cv) {
                    if let Some(m) = self.declared_name(c) {
                        let fid = self.reserve_func(m);
                        self.method_funcs.insert((name, m), (c, fid));
                    }
                } else {
                    self.collect(c, Some(name));
                }
            }
            self.classes.insert(name, ClassInfo { bases });
            return;
        }
        if self.is_def(v) && enclosing_class.is_none() {
            if let Some(name) = self.declared_name(id) {
                let fid = self.reserve_func(name);
                self.free_funcs.insert(name, (id, fid));
            }
            return;
        }
        for c in self.ast.children(id).to_vec() {
            self.collect(c, enclosing_class);
        }
    }

    fn is_def(&self, v: Sym) -> bool {
        v == vocab::function_def() || v == vocab::method_decl() || v == vocab::ctor_decl()
    }

    fn declared_name(&self, id: NodeId) -> Option<Sym> {
        self.ast
            .children(id)
            .iter()
            .find(|&&c| self.ast.value(c) == vocab::name_store())
            .and_then(|&c| self.ast.children(c).first())
            .map(|&t| self.ast.value(t))
    }

    fn base_name(&self, id: NodeId) -> Option<Sym> {
        let v = self.ast.value(id);
        if v == vocab::name_load() || v == vocab::type_ref() {
            self.ast.children(id).first().map(|&t| self.ast.value(t))
        } else if v == vocab::attribute_load() {
            // `module.Class` — take the attribute name.
            self.ast
                .children(id)
                .get(1)
                .and_then(|&a| self.ast.children(a).first())
                .map(|&t| self.ast.value(t))
        } else {
            None
        }
    }

    fn reserve_func(&mut self, name: Sym) -> FuncId {
        let id = FuncId(self.module.funcs.len() as u32);
        self.module.funcs.push(Func {
            name,
            params: Vec::new(),
            ret: Var(0),
            param_inits: Vec::new(),
            instrs: Vec::new(),
            entry: true,
        });
        id
    }

    /// The origin label for instances of in-file class `c`: the nearest
    /// externally defined base, or `c` itself for base-less classes.
    fn origin_class(&self, c: Sym) -> Sym {
        let mut current = c;
        let mut hops = 0;
        while hops < 16 {
            match self.classes.get(&current) {
                Some(info) => match info.bases.first() {
                    Some(&b) if b != current => {
                        current = b;
                        hops += 1;
                    }
                    _ => return current,
                },
                // Not defined in this file ⇒ external ⇒ canonical.
                None => return current,
            }
        }
        current
    }

    /// Looks a method up on `class` and its in-file ancestors.
    fn resolve_method(&self, class: Sym, method: Sym) -> Option<(Sym, FuncId)> {
        let mut current = class;
        let mut hops = 0;
        while hops < 16 {
            if let Some(&(_, fid)) = self.method_funcs.get(&(current, method)) {
                return Some((current, fid));
            }
            match self.classes.get(&current).and_then(|i| i.bases.first()) {
                Some(&b) if b != current => {
                    current = b;
                    hops += 1;
                }
                _ => return None,
            }
        }
        None
    }

    // ----- lowering pass -----------------------------------------------------

    fn lower_all(&mut self) {
        // Module body first, so functions can see final global versions.
        let module_fid = self.reserve_func(Sym::intern("<module>"));
        let mut cx = self.new_cx();
        for c in self.ast.children(self.ast.root()).to_vec() {
            let v = self.ast.value(c);
            if v == vocab::class_def() || self.is_def(v) {
                continue;
            }
            self.lower_stmt(&mut cx, c);
        }
        self.module_env = cx.env.clone();
        self.finish_func(module_fid, cx, Vec::new());

        let free: Vec<(NodeId, FuncId)> = self.free_funcs.values().copied().collect();
        for (node, fid) in free {
            self.lower_def(node, fid, None);
        }
        let methods: Vec<(Sym, NodeId, FuncId)> = self
            .method_funcs
            .iter()
            .map(|(&(class, _), &(node, fid))| (class, node, fid))
            .collect();
        for (class, node, fid) in methods {
            self.lower_def(node, fid, Some(class));
        }
    }

    fn new_cx(&mut self) -> FnCx {
        let ret = self.module.fresh_var();
        FnCx {
            env: HashMap::new(),
            param_inits: Vec::new(),
            instrs: Vec::new(),
            ret,
            self_var: None,
            self_class: None,
        }
    }

    fn finish_func(&mut self, fid: FuncId, cx: FnCx, params: Vec<Var>) {
        let f = &mut self.module.funcs[fid.index()];
        f.params = params;
        f.ret = cx.ret;
        f.param_inits = cx.param_inits;
        f.instrs = cx.instrs;
    }

    fn lower_def(&mut self, node: NodeId, fid: FuncId, class: Option<Sym>) {
        let mut cx = self.new_cx();
        cx.self_class = class;
        let mut params = Vec::new();
        let children = self.ast.children(node).to_vec();
        let mut first_param = true;
        for &c in &children {
            if self.ast.value(c) != vocab::params() {
                continue;
            }
            for &p in self.ast.children(c).to_vec().iter() {
                let pv = self.lower_param(&mut cx, p, class, first_param);
                params.push(pv);
                first_param = false;
            }
        }
        // Languages with implicit receivers (Java, JavaScript) bind `this`
        // (and `super`) to the enclosing class's canonical origin.
        if self.lang.spec().receiver_style() == ReceiverStyle::ImplicitThis {
            if let Some(cls) = class {
                let this = self.module.fresh_var();
                let label = self.origin_class(cls);
                cx.param_inits.push(Instr::AllocShared { dst: this, label });
                cx.env.insert(Sym::intern("this"), this);
                cx.env.insert(Sym::intern("super"), this);
                cx.self_var = Some(this);
            }
        }
        for &c in &children {
            let v = self.ast.value(c);
            if v == vocab::name_store() || v == vocab::params() || v == vocab::type_ref() {
                continue;
            }
            self.lower_stmt(&mut cx, c);
        }
        self.finish_func(fid, cx, params);
    }

    fn lower_param(
        &mut self,
        cx: &mut FnCx,
        p: NodeId,
        class: Option<Sym>,
        is_first: bool,
    ) -> Var {
        let kids = self.ast.children(p).to_vec();
        let mut name_term = None;
        let mut declared_ty = None;
        for &k in &kids {
            let kv = self.ast.value(k);
            if kv == vocab::name_param() {
                name_term = self.ast.children(k).first().copied();
            } else if kv == vocab::type_ref() {
                declared_ty = self.ast.children(k).first().map(|&t| self.ast.value(t));
            }
        }
        let var = self.module.fresh_var();
        if let Some(t) = name_term {
            let name = self.ast.value(t);
            cx.env.insert(name, var);
            self.module.term_uses.push((t, TermUse::Object(var)));
            // First-param-receiver languages (Python's `self`): assume an
            // instance of the enclosing class's canonical origin.
            if is_first && self.lang.spec().receiver_style() == ReceiverStyle::FirstParamReceiver {
                if let Some(cls) = class {
                    let label = self.origin_class(cls);
                    cx.param_inits.push(Instr::AllocShared { dst: var, label });
                    cx.self_var = Some(var);
                    return var;
                }
            }
        }
        match declared_ty {
            // Java: a parameter's declared type is its origin.
            Some(ty) => cx.param_inits.push(Instr::Alloc { dst: var, label: ty }),
            None => cx.param_inits.push(Instr::Top { dst: var }),
        }
        var
    }

    // ----- statements ---------------------------------------------------------

    fn lower_stmt(&mut self, cx: &mut FnCx, id: NodeId) {
        let v = self.ast.value(id);
        let kids = self.ast.children(id).to_vec();
        if v == vocab::assign() {
            // Children: target…, value (last).
            if let Some((&value, targets)) = kids.split_last() {
                // Annotated assigns parse as [target, type, value?].
                let val = self.lower_expr(cx, value);
                for &t in targets {
                    if self.ast.value(t) == vocab::type_ref() {
                        continue;
                    }
                    self.lower_target(cx, t, val);
                }
            }
        } else if v == vocab::aug_assign() {
            // Modified after creation ⇒ ⊤ (paper §4.1).
            if let Some(&value) = kids.last() {
                let _ = self.lower_expr(cx, value);
            }
            let top = self.module.fresh_var();
            cx.instrs.push(Instr::Top { dst: top });
            if let Some(&t) = kids.first() {
                self.lower_target(cx, t, top);
            }
        } else if v == vocab::expr_stmt() || v == vocab::decorator() {
            for &c in &kids {
                let _ = self.lower_expr(cx, c);
            }
        } else if v == vocab::return_stmt() {
            if let Some(&e) = kids.first() {
                let val = self.lower_expr(cx, e);
                let ret = cx.ret;
                cx.instrs.push(Instr::Move { dst: ret, src: val });
            }
        } else if v == vocab::local_var() {
            self.lower_local_var(cx, &kids);
        } else if v == vocab::field_decl() {
            // Field initialisers run conceptually in the constructor; we do
            // not model them (fields read back as unknown).
        } else if v == vocab::import_stmt() {
            for &c in &kids {
                self.lower_import_target(cx, c);
            }
        } else if v == vocab::import_from() {
            let module_label = kids
                .first()
                .and_then(|&m| self.rightmost_name(m))
                .unwrap_or_else(|| Sym::intern("module"));
            for &c in kids.iter().skip(1) {
                self.lower_from_import_name(cx, c, module_label);
            }
        } else if v == vocab::if_stmt() {
            self.lower_branch(cx, &kids);
        } else if v == vocab::while_stmt() || v == Sym::intern("DoWhile") {
            self.lower_loop_generic(cx, &kids);
        } else if v == vocab::for_stmt() {
            self.lower_for(cx, &kids);
        } else if v == vocab::for_classic() {
            for &c in &kids {
                self.lower_stmt_list(cx, c);
            }
        } else if v == vocab::with_stmt() {
            self.lower_with(cx, &kids);
        } else if v == vocab::try_stmt() {
            for &c in &kids {
                let cv = self.ast.value(c);
                if cv == vocab::handler() {
                    self.lower_handler(cx, c);
                } else {
                    self.lower_stmt_list(cx, c);
                }
            }
        } else if v == vocab::handler() {
            self.lower_handler(cx, id);
        } else if self.is_def(v) || v == vocab::class_def() {
            // Nested definitions: bind the name to an opaque object.
            if let Some(name) = self.declared_name(id) {
                let var = self.module.fresh_var();
                let label = if v == vocab::class_def() {
                    Sym::intern("type")
                } else {
                    Sym::intern("function")
                };
                cx.instrs.push(Instr::Alloc { dst: var, label });
                cx.env.insert(name, var);
            }
        } else if v == vocab::raise_stmt()
            || v == vocab::throw_stmt()
            || v == vocab::assert_stmt()
            || v == vocab::del_stmt()
            || v == vocab::global_stmt()
        {
            for &c in &kids {
                let _ = self.lower_expr(cx, c);
            }
        } else {
            // Generic compound (Switch, Synchronized, Block…): visit children,
            // treating body-like children as statement lists.
            for &c in &kids {
                self.lower_stmt_list(cx, c);
            }
        }
    }

    /// Lowers a node that is either a statement-list wrapper (`Body`,
    /// `OrElse`, …) or a single statement/expression.
    fn lower_stmt_list(&mut self, cx: &mut FnCx, id: NodeId) {
        let v = self.ast.value(id);
        let wrappers = [
            Sym::intern("Body"),
            Sym::intern("OrElse"),
            Sym::intern("Finally"),
            Sym::intern("Init"),
            Sym::intern("Cond"),
            Sym::intern("Update"),
            Sym::intern("Case"),
            Sym::intern("Block"),
            Sym::intern("Initializer"),
        ];
        if wrappers.contains(&v) {
            for c in self.ast.children(id).to_vec() {
                self.lower_stmt_or_expr(cx, c);
            }
        } else {
            self.lower_stmt_or_expr(cx, id);
        }
    }

    fn lower_stmt_or_expr(&mut self, cx: &mut FnCx, id: NodeId) {
        if self.is_stmt(self.ast.value(id)) {
            self.lower_stmt(cx, id);
        } else {
            let _ = self.lower_expr(cx, id);
        }
    }

    fn is_stmt(&self, v: Sym) -> bool {
        v == vocab::assign()
            || v == vocab::aug_assign()
            || v == vocab::expr_stmt()
            || v == vocab::return_stmt()
            || v == vocab::raise_stmt()
            || v == vocab::throw_stmt()
            || v == vocab::assert_stmt()
            || v == vocab::del_stmt()
            || v == vocab::global_stmt()
            || v == vocab::import_stmt()
            || v == vocab::import_from()
            || v == vocab::local_var()
            || v == vocab::field_decl()
            || v == vocab::if_stmt()
            || v == vocab::while_stmt()
            || v == vocab::for_stmt()
            || v == vocab::for_classic()
            || v == vocab::with_stmt()
            || v == vocab::try_stmt()
            || v == vocab::handler()
            || v == vocab::switch_stmt()
            || v == vocab::synchronized_stmt()
            || v == vocab::decorator()
            || v == vocab::class_def()
            || v == vocab::pass_stmt()
            || v == vocab::break_stmt()
            || v == vocab::continue_stmt()
            || v == Sym::intern("DoWhile")
            || v == Sym::intern("Block")
            || self.is_def(v)
    }

    fn lower_local_var(&mut self, cx: &mut FnCx, kids: &[NodeId]) {
        let mut declared_ty = None;
        let mut name_term = None;
        let mut init = None;
        for &k in kids {
            let kv = self.ast.value(k);
            if kv == vocab::type_ref() {
                declared_ty = self.ast.children(k).first().map(|&t| self.ast.value(t));
            } else if kv == vocab::name_store() {
                name_term = self.ast.children(k).first().copied();
            } else {
                init = Some(k);
            }
        }
        let var = self.module.fresh_var();
        match init {
            Some(e) => {
                let val = self.lower_expr(cx, e);
                cx.instrs.push(Instr::Move { dst: var, src: val });
            }
            None => match declared_ty {
                Some(ty) => cx.instrs.push(Instr::Alloc { dst: var, label: ty }),
                None => cx.instrs.push(Instr::Top { dst: var }),
            },
        }
        if let Some(t) = name_term {
            cx.env.insert(self.ast.value(t), var);
            self.module.term_uses.push((t, TermUse::Object(var)));
        }
    }

    fn lower_import_target(&mut self, cx: &mut FnCx, id: NodeId) {
        let v = self.ast.value(id);
        if v == vocab::alias() {
            // (Alias target asname): bind asname to the module object.
            let kids = self.ast.children(id).to_vec();
            let label = kids
                .first()
                .and_then(|&m| self.rightmost_name(m))
                .unwrap_or_else(|| Sym::intern("module"));
            if let Some(&asname) = kids.get(1) {
                self.bind_alloc(cx, asname, label);
            }
        } else if v == vocab::name_load() || v == vocab::attribute_load() {
            // `import os.path` binds `os`.
            if let Some(first) = self.leftmost_name_term(id) {
                let label = self.ast.value(first);
                let var = self.module.fresh_var();
                cx.instrs.push(Instr::Alloc { dst: var, label });
                cx.env.insert(label, var);
                self.module.term_uses.push((first, TermUse::Object(var)));
            }
        }
    }

    fn lower_from_import_name(&mut self, cx: &mut FnCx, id: NodeId, module_label: Sym) {
        let v = self.ast.value(id);
        if v == vocab::alias() {
            if let Some(&asname) = self.ast.children(id).to_vec().get(1) {
                self.bind_alloc(cx, asname, module_label);
            }
        } else if v == vocab::name_store() {
            self.bind_alloc(cx, id, module_label);
        }
    }

    /// Binds the name under a `NameStore` wrapper to a fresh alloc.
    fn bind_alloc(&mut self, cx: &mut FnCx, store: NodeId, label: Sym) {
        if let Some(&t) = self.ast.children(store).first() {
            let name = self.ast.value(t);
            let var = self.module.fresh_var();
            cx.instrs.push(Instr::Alloc { dst: var, label });
            cx.env.insert(name, var);
            self.module.term_uses.push((t, TermUse::Object(var)));
        }
    }

    fn rightmost_name(&self, id: NodeId) -> Option<Sym> {
        let v = self.ast.value(id);
        if v == vocab::name_load() || v == vocab::name_store() {
            self.ast.children(id).first().map(|&t| self.ast.value(t))
        } else if v == vocab::attribute_load() {
            self.ast
                .children(id)
                .get(1)
                .and_then(|&a| self.ast.children(a).first())
                .map(|&t| self.ast.value(t))
        } else {
            None
        }
    }

    fn leftmost_name_term(&self, id: NodeId) -> Option<NodeId> {
        let v = self.ast.value(id);
        if v == vocab::name_load() || v == vocab::name_store() {
            self.ast.children(id).first().copied()
        } else if v == vocab::attribute_load() {
            self.ast
                .children(id)
                .first()
                .and_then(|&b| self.leftmost_name_term(b))
        } else {
            None
        }
    }

    fn lower_branch(&mut self, cx: &mut FnCx, kids: &[NodeId]) {
        // If [cond, Body, OrElse?]
        if let Some(&cond) = kids.first() {
            let _ = self.lower_expr(cx, cond);
        }
        let base_env = cx.env.clone();
        let mut branch_envs = Vec::new();
        for &c in kids.iter().skip(1) {
            cx.env = base_env.clone();
            self.lower_stmt_list(cx, c);
            branch_envs.push(cx.env.clone());
        }
        // Merge: names whose version differs across branches (or from the
        // base) get a fresh merge register fed by every version.
        cx.env = base_env.clone();
        let mut merged: HashMap<Sym, Vec<Var>> = HashMap::new();
        for env in &branch_envs {
            for (&name, &var) in env {
                merged.entry(name).or_default().push(var);
            }
        }
        // Implicit fall-through branch keeps the base version.
        let has_else = branch_envs.len() > 1;
        for (name, mut versions) in merged {
            if let Some(&base) = base_env.get(&name) {
                if !has_else {
                    versions.push(base);
                }
            }
            versions.sort();
            versions.dedup();
            if versions.len() == 1 {
                cx.env.insert(name, versions[0]);
            } else {
                let m = self.module.fresh_var();
                for v in versions {
                    cx.instrs.push(Instr::Move { dst: m, src: v });
                }
                cx.env.insert(name, m);
            }
        }
    }

    fn lower_loop_generic(&mut self, cx: &mut FnCx, kids: &[NodeId]) {
        if let Some(&cond) = kids.first() {
            let _ = self.lower_expr(cx, cond);
        }
        let base_env = cx.env.clone();
        for &c in kids.iter().skip(1) {
            self.lower_stmt_list(cx, c);
        }
        self.merge_loop_env(cx, base_env);
    }

    fn merge_loop_env(&mut self, cx: &mut FnCx, base_env: HashMap<Sym, Var>) {
        // After a loop, a name may hold its pre-loop or its in-loop version.
        let body_env = cx.env.clone();
        for (name, var) in body_env {
            match base_env.get(&name) {
                Some(&b) if b != var => {
                    let m = self.module.fresh_var();
                    cx.instrs.push(Instr::Move { dst: m, src: b });
                    cx.instrs.push(Instr::Move { dst: m, src: var });
                    cx.env.insert(name, m);
                }
                _ => {}
            }
        }
    }

    fn lower_for(&mut self, cx: &mut FnCx, kids: &[NodeId]) {
        // Python: For [target, iter, (Body…)]
        // Java enhanced: For [TypeRef, NameStore, iter, Body]
        let mut declared_ty = None;
        let mut target = None;
        let mut iter = None;
        let mut rest = Vec::new();
        for &k in kids {
            let kv = self.ast.value(k);
            if kv == vocab::type_ref() && declared_ty.is_none() {
                declared_ty = self.ast.children(k).first().map(|&t| self.ast.value(t));
            } else if target.is_none()
                && (kv == vocab::name_store() || kv == vocab::tuple_lit() || kv == vocab::list_lit())
            {
                target = Some(k);
            } else if iter.is_none() && target.is_some() {
                iter = Some(k);
            } else {
                rest.push(k);
            }
        }
        let iter_var = iter.map(|e| self.lower_expr(cx, e));
        if let (Some(t), Some(iv)) = (target, iter_var) {
            let elem = self.module.fresh_var();
            match declared_ty {
                // Java: the element's declared type is authoritative.
                Some(ty) => cx.instrs.push(Instr::Alloc { dst: elem, label: ty }),
                None => cx.instrs.push(Instr::Load {
                    dst: elem,
                    base: iv,
                    field: elem_field(),
                }),
            }
            self.lower_target(cx, t, elem);
        }
        let base_env = cx.env.clone();
        for &c in &rest {
            self.lower_stmt_list(cx, c);
        }
        self.merge_loop_env(cx, base_env);
    }

    fn lower_with(&mut self, cx: &mut FnCx, kids: &[NodeId]) {
        let mut pending: Option<Var> = None;
        for &k in kids {
            let kv = self.ast.value(k);
            if kv == vocab::name_store() || kv == vocab::tuple_lit() {
                if let Some(v) = pending.take() {
                    self.lower_target(cx, k, v);
                }
            } else if kv == Sym::intern("Body") {
                self.lower_stmt_list(cx, k);
            } else {
                pending = Some(self.lower_expr(cx, k));
            }
        }
    }

    fn lower_handler(&mut self, cx: &mut FnCx, id: NodeId) {
        let kids = self.ast.children(id).to_vec();
        let mut exc_label = None;
        for &k in &kids {
            let kv = self.ast.value(k);
            if kv == vocab::type_ref() || kv == vocab::name_load() {
                if exc_label.is_none() {
                    exc_label = self.base_name(k);
                }
            } else if kv == vocab::name_store() {
                let label = exc_label.unwrap_or_else(|| Sym::intern("Exception"));
                self.bind_alloc(cx, k, label);
            } else {
                self.lower_stmt_list(cx, k);
            }
        }
    }

    /// Assigns `val` into a store-position node, recording term uses.
    fn lower_target(&mut self, cx: &mut FnCx, target: NodeId, val: Var) {
        let v = self.ast.value(target);
        if v == vocab::name_store() || v == vocab::name_load() {
            if let Some(&t) = self.ast.children(target).first() {
                let name = self.ast.value(t);
                let var = self.module.fresh_var();
                cx.instrs.push(Instr::Move { dst: var, src: val });
                cx.env.insert(name, var);
                self.module.term_uses.push((t, TermUse::Object(var)));
            }
        } else if v == vocab::attribute_store() || v == vocab::attribute_load() {
            let kids = self.ast.children(target).to_vec();
            if let (Some(&base), Some(&attr)) = (kids.first(), kids.get(1)) {
                let b = self.lower_expr(cx, base);
                if let Some(&ft) = self.ast.children(attr).first() {
                    cx.instrs.push(Instr::Store {
                        base: b,
                        field: self.ast.value(ft),
                        src: val,
                    });
                }
            }
        } else if v == vocab::subscript() {
            if let Some(&base) = self.ast.children(target).first() {
                let b = self.lower_expr(cx, base);
                cx.instrs.push(Instr::Store {
                    base: b,
                    field: elem_field(),
                    src: val,
                });
            }
        } else if v == vocab::tuple_lit() || v == vocab::list_lit() {
            for &el in self.ast.children(target).to_vec().iter() {
                let part = self.module.fresh_var();
                cx.instrs.push(Instr::Load {
                    dst: part,
                    base: val,
                    field: elem_field(),
                });
                self.lower_target(cx, el, part);
            }
        }
        // Other targets (calls, literals) are not assignable; ignore.
    }

    // ----- expressions ----------------------------------------------------------

    fn lower_expr(&mut self, cx: &mut FnCx, id: NodeId) -> Var {
        let v = self.ast.value(id);
        let kids = self.ast.children(id).to_vec();
        if v == vocab::name_load() || v == vocab::name_store() {
            return self.lower_name_use(cx, id);
        }
        if v == vocab::attribute_load() || v == vocab::attribute_store() {
            let base = kids
                .first()
                .map(|&b| self.lower_expr(cx, b))
                .unwrap_or_else(|| self.fresh_top(cx));
            let dst = self.module.fresh_var();
            if let Some(&attr) = kids.get(1) {
                if let Some(&ft) = self.ast.children(attr).first() {
                    cx.instrs.push(Instr::Load {
                        dst,
                        base,
                        field: self.ast.value(ft),
                    });
                    return dst;
                }
            }
            cx.instrs.push(Instr::Top { dst });
            return dst;
        }
        if v == vocab::call() {
            return self.lower_call(cx, &kids);
        }
        if v == vocab::new_object() {
            return self.lower_new(cx, &kids);
        }
        if v == vocab::num() {
            return self.fresh_prim(cx, "Num");
        }
        if v == vocab::str_lit() {
            return self.fresh_prim(cx, "Str");
        }
        if v == vocab::bool_lit() {
            return self.fresh_prim(cx, "Bool");
        }
        if v == vocab::none_lit() {
            return self.fresh_prim(cx, "None");
        }
        if v == vocab::compare() || v == vocab::bool_op() || v == vocab::instance_of() {
            for &k in &kids {
                if !self.ast.is_terminal(k) {
                    let _ = self.lower_expr(cx, k);
                }
            }
            return self.fresh_prim(cx, "Bool");
        }
        if v == vocab::bin_op() || v == vocab::unary_op() || v == vocab::slice() {
            // Derived values: modified after creation ⇒ ⊤.
            for &k in &kids {
                if !self.ast.is_terminal(k) {
                    let _ = self.lower_expr(cx, k);
                }
            }
            return self.fresh_top(cx);
        }
        if v == vocab::subscript() {
            let base = kids
                .first()
                .map(|&b| self.lower_expr(cx, b))
                .unwrap_or_else(|| self.fresh_top(cx));
            for &k in kids.iter().skip(1) {
                let _ = self.lower_expr(cx, k);
            }
            let dst = self.module.fresh_var();
            cx.instrs.push(Instr::Load {
                dst,
                base,
                field: elem_field(),
            });
            return dst;
        }
        if v == vocab::ternary() {
            // [cond, then, else] — merge the two arms.
            let dst = self.module.fresh_var();
            if let Some(&c) = kids.first() {
                let _ = self.lower_expr(cx, c);
            }
            for &k in kids.iter().skip(1) {
                let arm = self.lower_expr(cx, k);
                cx.instrs.push(Instr::Move { dst, src: arm });
            }
            return dst;
        }
        if v == vocab::list_lit()
            || v == vocab::tuple_lit()
            || v == vocab::set_lit()
            || v == vocab::dict_lit()
            || v == vocab::comprehension()
        {
            let label = if v == vocab::dict_lit() {
                "dict"
            } else if v == vocab::tuple_lit() {
                "tuple"
            } else if v == vocab::set_lit() {
                "set"
            } else {
                "list"
            };
            let dst = self.module.fresh_var();
            cx.instrs.push(Instr::Alloc {
                dst,
                label: Sym::intern(label),
            });
            for &k in &kids {
                if !self.ast.is_terminal(k) {
                    let el = self.lower_expr(cx, k);
                    cx.instrs.push(Instr::Store {
                        base: dst,
                        field: elem_field(),
                        src: el,
                    });
                }
            }
            return dst;
        }
        if v == vocab::cast() {
            // Origin follows the value through a cast.
            return kids
                .get(1)
                .map(|&e| self.lower_expr(cx, e))
                .unwrap_or_else(|| self.fresh_top(cx));
        }
        if v == vocab::lambda() {
            let dst = self.module.fresh_var();
            cx.instrs.push(Instr::Alloc {
                dst,
                label: Sym::intern("function"),
            });
            return dst;
        }
        if v == vocab::keyword_arg() || v == vocab::starred() || v == vocab::double_starred() {
            return kids
                .iter()
                .filter(|&&k| !self.ast.is_terminal(k))
                .map(|&k| self.lower_expr(cx, k))
                .last()
                .unwrap_or_else(|| self.fresh_top(cx));
        }
        // Anything else (Await, NewArray, MethodRef, …): lower children and
        // return ⊤ or a labelled alloc for NewArray.
        if v == vocab::new_array() {
            let dst = self.module.fresh_var();
            cx.instrs.push(Instr::Alloc {
                dst,
                label: Sym::intern("array"),
            });
            return dst;
        }
        for &k in &kids {
            if !self.ast.is_terminal(k) {
                let _ = self.lower_expr(cx, k);
            }
        }
        self.fresh_top(cx)
    }

    fn lower_name_use(&mut self, cx: &mut FnCx, id: NodeId) -> Var {
        let t = match self.ast.children(id).first() {
            Some(&t) => t,
            None => return self.fresh_top(cx),
        };
        let name = self.ast.value(t);
        let var = if let Some(&v) = cx.env.get(&name) {
            v
        } else if let Some(&v) = self.module_env.get(&name) {
            v
        } else if self.classes.contains_key(&name) {
            // A class reference: a `type` object.
            let v = self.module.fresh_var();
            cx.instrs.push(Instr::Alloc {
                dst: v,
                label: Sym::intern("type"),
            });
            v
        } else {
            let v = self.module.fresh_var();
            cx.instrs.push(Instr::Top { dst: v });
            cx.env.insert(name, v);
            v
        };
        self.module.term_uses.push((t, TermUse::Object(var)));
        var
    }

    fn lower_call(&mut self, cx: &mut FnCx, kids: &[NodeId]) -> Var {
        let callee = match kids.first() {
            Some(&c) => c,
            None => return self.fresh_top(cx),
        };
        let mut args = Vec::new();
        for &a in kids.iter().skip(1) {
            args.push(self.lower_expr(cx, a));
        }
        let cv = self.ast.value(callee);
        if cv == vocab::attribute_load() {
            // receiver.method(args)
            let ckids = self.ast.children(callee).to_vec();
            let recv = ckids
                .first()
                .map(|&b| self.lower_expr(cx, b))
                .unwrap_or_else(|| self.fresh_top(cx));
            let (mname_term, mname) = match ckids
                .get(1)
                .and_then(|&a| self.ast.children(a).first().copied())
            {
                Some(t) => (Some(t), self.ast.value(t)),
                None => (None, Sym::intern("call")),
            };
            if let Some(t) = mname_term {
                self.module.term_uses.push((t, TermUse::FunctionRecv(recv)));
            }
            // Dispatch on `self`/`this` to in-file methods.
            if Some(recv) == cx.self_var {
                if let Some(class) = cx.self_class {
                    if let Some((_, fid)) = self.resolve_method(class, mname) {
                        let dst = self.module.fresh_var();
                        let mut call_args = vec![recv];
                        call_args.extend(args);
                        let site = self.fresh_site();
                        cx.instrs.push(Instr::Call {
                            dst: Some(dst),
                            func: fid,
                            site,
                            args: call_args,
                        });
                        return dst;
                    }
                }
            }
            // External method: fresh allocation site labelled by the callee.
            let dst = self.module.fresh_var();
            cx.instrs.push(Instr::Alloc { dst, label: mname });
            return dst;
        }
        if cv == vocab::name_load() {
            let fname_term = self.ast.children(callee).first().copied();
            let fname = fname_term
                .map(|t| self.ast.value(t))
                .unwrap_or_else(|| Sym::intern("call"));
            if let Some(&(_, fid)) = self.free_funcs.get(&fname) {
                let dst = self.module.fresh_var();
                let site = self.fresh_site();
                cx.instrs.push(Instr::Call {
                    dst: Some(dst),
                    func: fid,
                    site,
                    args,
                });
                return dst;
            }
            if self.classes.contains_key(&fname) {
                // Constructor call: allocate, then run `__init__` if defined.
                let dst = self.module.fresh_var();
                let label = self.origin_class(fname);
                cx.instrs.push(Instr::Alloc { dst, label });
                if let Some((_, init)) = self.resolve_method(fname, Sym::intern("__init__")) {
                    let mut call_args = vec![dst];
                    call_args.extend(args);
                    let site = self.fresh_site();
                    cx.instrs.push(Instr::Call {
                        dst: None,
                        func: init,
                        site,
                        args: call_args,
                    });
                }
                return dst;
            }
            // External function: fresh allocation labelled by the callee.
            let dst = self.module.fresh_var();
            cx.instrs.push(Instr::Alloc { dst, label: fname });
            return dst;
        }
        // Calling a complex expression: unknown result.
        let _ = self.lower_expr(cx, callee);
        self.fresh_top(cx)
    }

    fn lower_new(&mut self, cx: &mut FnCx, kids: &[NodeId]) -> Var {
        let ty = kids
            .first()
            .and_then(|&t| self.ast.children(t).first().copied())
            .map(|t| self.ast.value(t))
            .unwrap_or_else(|| Sym::intern("Object"));
        let mut args = Vec::new();
        for &a in kids.iter().skip(1) {
            if !self.ast.is_terminal(a) {
                args.push(self.lower_expr(cx, a));
            }
        }
        let dst = self.module.fresh_var();
        let label = self.origin_class(ty);
        cx.instrs.push(Instr::Alloc { dst, label });
        if self.classes.contains_key(&ty) {
            if let Some((_, ctor)) = self.resolve_method(ty, ty) {
                let mut call_args = vec![dst];
                call_args.extend(args);
                let site = self.fresh_site();
                cx.instrs.push(Instr::Call {
                    dst: None,
                    func: ctor,
                    site,
                    args: call_args,
                });
            }
        }
        dst
    }

    fn fresh_top(&mut self, cx: &mut FnCx) -> Var {
        let v = self.module.fresh_var();
        cx.instrs.push(Instr::Top { dst: v });
        v
    }

    fn fresh_prim(&mut self, cx: &mut FnCx, label: &str) -> Var {
        let v = self.module.fresh_var();
        cx.instrs.push(Instr::Prim {
            dst: v,
            label: Sym::intern(label),
        });
        v
    }

    fn fresh_site(&mut self) -> u32 {
        let s = self.next_site;
        self.next_site += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::python;

    fn lower_py(src: &str) -> Module {
        lower(&python::parse(src).unwrap(), Lang::Python)
    }

    #[test]
    fn module_function_is_created() {
        let m = lower_py("x = 1\n");
        assert!(m.funcs.iter().any(|f| f.name.as_str() == "<module>"));
    }

    #[test]
    fn self_gets_class_origin_alloc() {
        let m = lower_py("class C:\n    def m(self):\n        return self\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "m").unwrap();
        assert!(f
            .param_inits
            .iter()
            .any(|i| matches!(i, Instr::AllocShared { label, .. } if label.as_str() == "C")));
    }

    #[test]
    fn self_origin_is_external_base() {
        let m = lower_py(
            "class Mid(TestCase):\n    pass\nclass C(Mid):\n    def m(self):\n        return self\n",
        );
        let f = m.funcs.iter().find(|f| f.name.as_str() == "m").unwrap();
        assert!(f
            .param_inits
            .iter()
            .any(|i| matches!(i, Instr::AllocShared { label, .. } if label.as_str() == "TestCase")));
    }

    #[test]
    fn external_call_allocs_with_callee_label() {
        let m = lower_py("f = open(path)\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "<module>").unwrap();
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Alloc { label, .. } if label.as_str() == "open")));
    }

    #[test]
    fn import_binds_module_object() {
        let m = lower_py("import numpy as np\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "<module>").unwrap();
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Alloc { label, .. } if label.as_str() == "numpy")));
    }

    #[test]
    fn direct_calls_are_resolved() {
        let m = lower_py("def helper(a):\n    return a\n\ndef use():\n    x = helper(1)\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "use").unwrap();
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::Call { .. })));
    }

    #[test]
    fn self_method_dispatch() {
        let m = lower_py(
            "class C:\n    def helper(self):\n        return self\n    def use(self):\n        x = self.helper()\n",
        );
        let f = m.funcs.iter().find(|f| f.name.as_str() == "use").unwrap();
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::Call { .. })));
    }

    #[test]
    fn augassign_goes_top() {
        let m = lower_py("x = 1\nx += 2\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "<module>").unwrap();
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::Top { .. })));
    }

    #[test]
    fn literal_prims() {
        let m = lower_py("s = 'x'\nn = 1\nb = True\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "<module>").unwrap();
        let prims: Vec<&str> = f
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Prim { label, .. } => Some(label.as_str()),
                _ => None,
            })
            .collect();
        assert!(prims.contains(&"Str") && prims.contains(&"Num") && prims.contains(&"Bool"));
    }

    #[test]
    fn branch_merge_creates_moves() {
        let m = lower_py("if c:\n    x = open(p)\nelse:\n    x = 'str'\ny = x\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "<module>").unwrap();
        let moves = f.instrs.iter().filter(|i| matches!(i, Instr::Move { .. })).count();
        assert!(moves >= 3, "expected merge moves, got {moves}");
    }

    #[test]
    fn exception_handler_binds_type() {
        let m = lower_py("try:\n    run()\nexcept ValueError as e:\n    pass\n");
        let f = m.funcs.iter().find(|f| f.name.as_str() == "<module>").unwrap();
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Alloc { label, .. } if label.as_str() == "ValueError")));
    }

    #[test]
    fn java_params_get_declared_type_origin() {
        let ast = namer_syntax::java::parse(
            "class A { void f(Intent intent) { use(intent); } }",
        )
        .unwrap();
        let m = lower(&ast, Lang::Java);
        let f = m.funcs.iter().find(|f| f.name.as_str() == "f").unwrap();
        assert!(f
            .param_inits
            .iter()
            .any(|i| matches!(i, Instr::Alloc { label, .. } if label.as_str() == "Intent")));
    }

    #[test]
    fn java_new_allocates_type() {
        let ast = namer_syntax::java::parse(
            "class A { void f() { StringWriter w = new StringWriter(); } }",
        )
        .unwrap();
        let m = lower(&ast, Lang::Java);
        let f = m.funcs.iter().find(|f| f.name.as_str() == "f").unwrap();
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Alloc { label, .. } if label.as_str() == "StringWriter")));
    }

    #[test]
    fn js_this_gets_class_origin_alloc() {
        let ast = namer_syntax::js::parse(
            "class C extends Base {\n    m() {\n        return this.count;\n    }\n}\n",
        )
        .unwrap();
        let m = lower(&ast, Lang::Js);
        let f = m.funcs.iter().find(|f| f.name.as_str() == "m").unwrap();
        assert!(f
            .param_inits
            .iter()
            .any(|i| matches!(i, Instr::AllocShared { label, .. } if label.as_str() == "Base")));
    }

    #[test]
    fn js_new_allocates_type() {
        let ast = namer_syntax::js::parse(
            "class A {\n    f() {\n        const handler = new EventHandler();\n        return handler;\n    }\n}\n",
        )
        .unwrap();
        let m = lower(&ast, Lang::Js);
        let f = m.funcs.iter().find(|f| f.name.as_str() == "f").unwrap();
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Alloc { label, .. } if label.as_str() == "EventHandler")));
    }

    #[test]
    fn term_uses_cover_name_terminals() {
        let src = "x = open(p)\ny = x\n";
        let ast = python::parse(src).unwrap();
        let m = lower(&ast, Lang::Python);
        // x (store), p (load), x (load), y (store) — at least 4 uses.
        assert!(m.term_uses.len() >= 4, "{:?}", m.term_uses.len());
    }
}
