//! Intermediate representation for the per-file analyses.
//!
//! The builder lowers a parsed file into a soup of functions over virtual
//! registers ([`Var`]). Flow-sensitivity comes from versioning: every
//! assignment allocates a fresh `Var`, and control-flow joins insert explicit
//! merge moves, so the points-to solver itself can stay flow-insensitive
//! (the classic SSA-style reduction).

use namer_syntax::{NodeId, Sym};

/// A virtual register (one version of one source variable, or a temporary).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a function body in the IR.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One IR instruction.
#[derive(Clone, Debug)]
pub enum Instr {
    /// `dst` holds a fresh object with origin label `label`.
    Alloc {
        /// Destination register.
        dst: Var,
        /// Origin label (class name, external callee, module name…).
        label: Sym,
    },
    /// Like [`Instr::Alloc`] but all instructions with the same label share
    /// one abstract object (used for `self`/`this` entry assumptions, so the
    /// fields stored by one method are visible to the others).
    AllocShared {
        /// Destination register.
        dst: Var,
        /// Shared origin label.
        label: Sym,
    },
    /// `dst` holds a primitive value with origin `label` (`Num`, `Str`, …).
    Prim {
        /// Destination register.
        dst: Var,
        /// Primitive origin label.
        label: Sym,
    },
    /// `dst` is unknowable (⊤) — mutated value or untracked source.
    Top {
        /// Destination register.
        dst: Var,
    },
    /// Copy `src` into `dst`.
    Move {
        /// Destination register.
        dst: Var,
        /// Source register.
        src: Var,
    },
    /// `dst = base.field`.
    Load {
        /// Destination register.
        dst: Var,
        /// Base object register.
        base: Var,
        /// Field name.
        field: Sym,
    },
    /// `base.field = src`.
    Store {
        /// Base object register.
        base: Var,
        /// Field name.
        field: Sym,
        /// Source register.
        src: Var,
    },
    /// Direct call to an in-file function, resolved by the builder.
    Call {
        /// Register receiving the return value, if used.
        dst: Option<Var>,
        /// Callee.
        func: FuncId,
        /// Call-site identifier (for k-call-site contexts).
        site: u32,
        /// Actual arguments (for methods, `args[0]` is the receiver).
        args: Vec<Var>,
    },
}

/// One function body.
#[derive(Clone, Debug)]
pub struct Func {
    /// Display name (for diagnostics).
    pub name: Sym,
    /// Formal parameter registers.
    pub params: Vec<Var>,
    /// Return-value register.
    pub ret: Var,
    /// Entry-point assumptions (parameter ⊤/typed initialisation, `self`
    /// allocation). Emitted only in the *entry* clone of the function: when
    /// the function is reached through a call, the caller binds the
    /// parameters instead.
    pub param_inits: Vec<Instr>,
    /// Instruction list.
    pub instrs: Vec<Instr>,
    /// `true` when the function is an analysis entry point (the paper treats
    /// every public function/method as one).
    pub entry: bool,
}

/// Whether an AST terminal reads an object or names a called function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TermUse {
    /// The terminal names an object; origin = origin of `var`.
    Object(Var),
    /// The terminal names a called function; origin = origin of the receiver.
    FunctionRecv(Var),
}

/// The lowered file: functions plus the AST↔IR correspondence.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// All function bodies (clones included, after context expansion).
    pub funcs: Vec<Func>,
    /// Total number of registers allocated.
    pub var_count: u32,
    /// For each interesting terminal of the *file* AST, how its origin is
    /// derived from the solution.
    pub term_uses: Vec<(NodeId, TermUse)>,
}

impl Module {
    /// Allocates a fresh register.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.var_count);
        self.var_count += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct() {
        let mut m = Module::default();
        let a = m.fresh_var();
        let b = m.fresh_var();
        assert_ne!(a, b);
        assert_eq!(m.var_count, 2);
    }
}
