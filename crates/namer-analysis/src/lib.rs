//! Static analyses for name-path context (§4.1 of the Namer paper).
//!
//! For every source file — analysed in isolation, with every public function
//! treated as an entry point — this crate computes:
//!
//! * a flow-sensitive (via register versioning), context-sensitive
//!   (k-call-site cloning, k = 5 with an 8-contexts-per-function fallback)
//!   **Andersen-style points-to analysis**, implemented on the
//!   [`namer-datalog`](namer_datalog) engine;
//! * a **primitive-origin dataflow**: the origin of a value is the function
//!   that returned it or its literal kind, and ⊤ once it is modified.
//!
//! The result is an *origin* per identifier terminal, used by the AST+
//! transformation to decorate trees as in Figure 2 (c).
//!
//! # Examples
//!
//! ```
//! use namer_analysis::{FileAnalysis, AnalysisConfig};
//! use namer_syntax::{python, stmt, transform, Lang};
//!
//! let src = "class T(TestCase):\n    def m(self):\n        self.assertTrue(1, 2)\n";
//! let ast = python::parse(src)?;
//! let analysis = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());
//! let call_stmt = stmt::extract(&ast)
//!     .into_iter()
//!     .find(|s| s.to_sexp().contains("Call"))
//!     .unwrap();
//! let origins = analysis.origins_for(&call_stmt);
//! let plus = transform::to_ast_plus(&call_stmt.ast, &origins);
//! assert!(plus.to_sexp(plus.root()).contains("(TestCase self)"));
//! # Ok::<(), namer_syntax::ParseError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod ir;
pub mod pointsto;

use ir::TermUse;
use namer_syntax::stmt::Stmt;
use namer_syntax::transform::Origins;
use namer_syntax::{Ast, Lang, NodeId, Sym};
use std::collections::HashMap;

/// Configuration for the per-file analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalysisConfig {
    /// Points-to configuration (k, fallback threshold).
    pub pointsto: pointsto::Config,
}

/// The analysis result for one file: origins per identifier terminal.
#[derive(Debug)]
pub struct FileAnalysis {
    origin_of: HashMap<NodeId, Sym>,
    /// Number of function clones the context expansion produced.
    pub clone_count: usize,
    /// Whether the k = 0 fallback fired (combinatorial explosion guard).
    pub fell_back: bool,
}

impl FileAnalysis {
    /// Analyses a parsed file.
    pub fn analyze(ast: &Ast, lang: Lang, config: &AnalysisConfig) -> FileAnalysis {
        let module = builder::lower(ast, lang);
        let solution = pointsto::solve(&module, &config.pointsto);
        let mut origin_of = HashMap::new();
        for &(term, use_) in &module.term_uses {
            let var = match use_ {
                TermUse::Object(v) => v,
                TermUse::FunctionRecv(v) => v,
            };
            if let Some(origin) = solution.origin(var) {
                origin_of.insert(term, origin);
            }
        }
        FileAnalysis {
            origin_of,
            clone_count: solution.clone_count,
            fell_back: solution.fell_back,
        }
    }

    /// The resolved origin of a file-AST terminal, if any.
    pub fn origin(&self, term: NodeId) -> Option<Sym> {
        self.origin_of.get(&term).copied()
    }

    /// Number of terminals with a resolved origin.
    pub fn resolved_count(&self) -> usize {
        self.origin_of.len()
    }

    /// Builds the [`Origins`] map for one extracted statement, translating
    /// file-AST origins through the statement's back-map.
    pub fn origins_for(&self, stmt: &Stmt) -> Origins {
        stmt.ast
            .iter()
            .filter(|&n| stmt.ast.is_terminal(n))
            .filter_map(|n| self.origin(stmt.back(n)).map(|o| (n, o)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::{java, python, stmt};

    #[test]
    fn figure2_self_gets_testcase_origin() {
        let src = "class TestPicture(TestCase):\n    def test(self):\n        self.assertTrue(picture.rotate_angle, 90)\n";
        let ast = python::parse(src).unwrap();
        let a = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());
        let stmts = stmt::extract(&ast);
        let call = stmts.iter().find(|s| s.to_sexp().contains("assertTrue")).unwrap();
        let origins = a.origins_for(call);
        assert!(!origins.is_empty());
        let plus = namer_syntax::transform::to_ast_plus(&call.ast, &origins);
        let sexp = plus.to_sexp(plus.root());
        assert!(sexp.contains("(NumST(1) (TestCase self))"), "{sexp}");
        assert!(sexp.contains("(TestCase assert)"), "{sexp}");
    }

    #[test]
    fn java_catch_origin() {
        let src = "class A { void f() { try { run(); } catch (Throwable e) { e.getStackTrace(); } } }";
        let ast = java::parse(src).unwrap();
        let a = FileAnalysis::analyze(&ast, Lang::Java, &AnalysisConfig::default());
        let stmts = stmt::extract(&ast);
        let call = stmts
            .iter()
            .find(|s| s.to_sexp().contains("getStackTrace"))
            .unwrap();
        let origins = a.origins_for(call);
        let plus = namer_syntax::transform::to_ast_plus(&call.ast, &origins);
        let sexp = plus.to_sexp(plus.root());
        assert!(sexp.contains("(Throwable e)"), "{sexp}");
        // The method-name subtokens carry the receiver's origin.
        assert!(sexp.contains("(Throwable get)"), "{sexp}");
    }

    #[test]
    fn numpy_alias_origin() {
        let src = "import numpy as N\n\nclass C:\n    def m(self, sz):\n        self.sz = N.array(sz)\n";
        let ast = python::parse(src).unwrap();
        let a = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());
        let stmts = stmt::extract(&ast);
        let assign = stmts.iter().find(|s| s.to_sexp().contains("array")).unwrap();
        let origins = a.origins_for(assign);
        let plus = namer_syntax::transform::to_ast_plus(&assign.ast, &origins);
        let sexp = plus.to_sexp(plus.root());
        assert!(sexp.contains("(numpy N)"), "{sexp}");
    }

    #[test]
    fn unresolved_terminals_have_no_origin() {
        let src = "def f(mystery):\n    return mystery\n";
        let ast = python::parse(src).unwrap();
        let a = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());
        let stmts = stmt::extract(&ast);
        let ret = stmts.iter().find(|s| s.to_sexp().contains("Return")).unwrap();
        assert!(a.origins_for(ret).is_empty());
    }

    #[test]
    fn resolved_count_reflects_decorations() {
        let src = "import os\nx = open(p)\n";
        let ast = python::parse(src).unwrap();
        let a = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());
        assert!(a.resolved_count() >= 2, "{}", a.resolved_count());
    }
}
