//! Context expansion and the Andersen points-to solve.
//!
//! Context sensitivity is *cloning-based*: each function body is duplicated
//! per call string of length ≤ k (k-call-site sensitivity, paper default
//! k = 5), and a context-insensitive field-sensitive Andersen analysis runs
//! over the expanded program — the classic reduction. When expansion would
//! exceed an average of `max_avg_contexts` clones per function (paper: 8),
//! the analysis falls back to k = 0, exactly as §4.1 describes.

use crate::builder::top_label;
use crate::ir::{FuncId, Instr, Module, Var};
use namer_datalog::{Program, Term};
use namer_syntax::Sym;
use std::collections::HashMap;

/// Points-to configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Call-string depth (paper default: 5).
    pub k: usize,
    /// Fallback threshold: maximum average clones per function (paper: 8).
    pub max_avg_contexts: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            k: 5,
            max_avg_contexts: 8,
        }
    }
}

/// Result of the points-to solve.
#[derive(Debug)]
pub struct Solution {
    /// Origin labels per *original* IR register (projected onto the entry
    /// clone of the register's owning function).
    labels: HashMap<Var, Vec<Sym>>,
    /// Number of clones materialised.
    pub clone_count: usize,
    /// Whether the k = 0 fallback fired.
    pub fell_back: bool,
}

impl Solution {
    /// The unique, non-⊤ origin of `v`, if the analysis resolved one.
    pub fn origin(&self, v: Var) -> Option<Sym> {
        let labels = self.labels.get(&v)?;
        let mut uniq: Vec<Sym> = labels.clone();
        uniq.sort();
        uniq.dedup();
        match uniq.as_slice() {
            [l] if *l != top_label() => Some(*l),
            _ => None,
        }
    }

    /// All origin labels of `v` (testing/diagnostics).
    pub fn labels(&self, v: Var) -> &[Sym] {
        self.labels.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Runs the full pipeline: clone expansion, Datalog solve, projection.
pub fn solve(module: &Module, config: &Config) -> Solution {
    let (expanded, fell_back) = match expand(module, config.k, config.max_avg_contexts) {
        Some(e) => (e, false),
        None => (
            expand(module, 0, usize::MAX).expect("k=0 expansion cannot explode"),
            true,
        ),
    };
    let clone_count = expanded.clone_count;
    let labels = run_datalog(&expanded, module);
    Solution {
        labels,
        clone_count,
        fell_back,
    }
}

/// One flattened instruction over global registers.
enum Flat {
    Alloc { dst: u64, site: u64 },
    Move { dst: u64, src: u64 },
    Load { dst: u64, base: u64, field: u64 },
    Store { base: u64, field: u64, src: u64 },
}

struct Expanded {
    instrs: Vec<Flat>,
    site_labels: Vec<Sym>,
    clone_count: usize,
    /// Global register of original var `v` in the entry clone of its owner.
    entry_global: HashMap<Var, u64>,
}

fn owner_of_vars(module: &Module) -> HashMap<Var, FuncId> {
    let mut owner = HashMap::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        let fid = FuncId(fi as u32);
        let mut claim = |v: Var| {
            owner.entry(v).or_insert(fid);
        };
        for &p in &f.params {
            claim(p);
        }
        claim(f.ret);
        for i in f.param_inits.iter().chain(&f.instrs) {
            match i {
                Instr::Alloc { dst, .. }
                | Instr::AllocShared { dst, .. }
                | Instr::Prim { dst, .. }
                | Instr::Top { dst } => claim(*dst),
                Instr::Move { dst, src } => {
                    claim(*dst);
                    claim(*src);
                }
                Instr::Load { dst, base, .. } => {
                    claim(*dst);
                    claim(*base);
                }
                Instr::Store { base, src, .. } => {
                    claim(*base);
                    claim(*src);
                }
                Instr::Call { dst, args, .. } => {
                    if let Some(d) = dst {
                        claim(*d);
                    }
                    for &a in args {
                        claim(a);
                    }
                }
            }
        }
    }
    owner
}

/// Expands the module with k-call-site cloning. Returns `None` when the
/// clone budget (`max_avg` × function count) is exceeded.
fn expand(module: &Module, k: usize, max_avg: usize) -> Option<Expanded> {
    let nfuncs = module.funcs.len().max(1);
    let budget = max_avg.saturating_mul(nfuncs).max(nfuncs);
    let stride = u64::from(module.var_count);

    // Clone table: (func, ctx) → clone index.
    let mut clones: HashMap<(FuncId, Vec<u32>), usize> = HashMap::new();
    let mut clone_list: Vec<(FuncId, Vec<u32>)> = Vec::new();
    let mut worklist: Vec<usize> = Vec::new();

    let mut entry_clone: HashMap<FuncId, usize> = HashMap::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        if f.entry {
            let fid = FuncId(fi as u32);
            let idx = clone_list.len();
            clones.insert((fid, Vec::new()), idx);
            clone_list.push((fid, Vec::new()));
            entry_clone.insert(fid, idx);
            worklist.push(idx);
        }
    }

    // Module-level registers are shared across all clones: a global read
    // inside a function must see the module clone's register, not a per-clone
    // copy.
    let owner = owner_of_vars(module);
    let module_fid = module
        .funcs
        .iter()
        .position(|f| f.name.as_str() == "<module>")
        .map(|i| FuncId(i as u32));
    let module_base = module_fid
        .and_then(|f| entry_clone.get(&f).copied())
        .map(|c| c as u64 * stride);

    let mut instrs = Vec::new();
    let mut site_labels = Vec::new();
    let mut shared_sites: HashMap<Sym, u64> = HashMap::new();
    let fresh_site = |label: Sym, site_labels: &mut Vec<Sym>| -> u64 {
        site_labels.push(label);
        (site_labels.len() - 1) as u64
    };

    let mut processed = 0usize;
    while processed < worklist.len() {
        let clone_idx = worklist[processed];
        processed += 1;
        let (fid, ctx) = clone_list[clone_idx].clone();
        let base = clone_idx as u64 * stride;
        let g = |v: Var| {
            if let (Some(mf), Some(mb)) = (module_fid, module_base) {
                if owner.get(&v) == Some(&mf) {
                    return mb + u64::from(v.0);
                }
            }
            base + u64::from(v.0)
        };
        let f = &module.funcs[fid.index()];
        // Entry clones carry the entry-point assumptions; contexts reached
        // through calls get their parameters from the caller instead.
        let inits: &[Instr] = if ctx.is_empty() { &f.param_inits } else { &[] };
        for ins in inits.iter().chain(&f.instrs) {
            match ins {
                Instr::AllocShared { dst, label } => {
                    let site = *shared_sites
                        .entry(*label)
                        .or_insert_with(|| {
                            site_labels.push(*label);
                            (site_labels.len() - 1) as u64
                        });
                    instrs.push(Flat::Alloc { dst: g(*dst), site });
                }
                Instr::Alloc { dst, label } | Instr::Prim { dst, label } => {
                    let site = fresh_site(*label, &mut site_labels);
                    instrs.push(Flat::Alloc { dst: g(*dst), site });
                }
                Instr::Top { dst } => {
                    let site = fresh_site(top_label(), &mut site_labels);
                    instrs.push(Flat::Alloc { dst: g(*dst), site });
                }
                Instr::Move { dst, src } => instrs.push(Flat::Move {
                    dst: g(*dst),
                    src: g(*src),
                }),
                Instr::Load { dst, base: b, field } => instrs.push(Flat::Load {
                    dst: g(*dst),
                    base: g(*b),
                    field: field.index() as u64,
                }),
                Instr::Store { base: b, field, src } => instrs.push(Flat::Store {
                    base: g(*b),
                    field: field.index() as u64,
                    src: g(*src),
                }),
                Instr::Call {
                    dst,
                    func,
                    site,
                    args,
                } => {
                    // Build the callee context: most recent site first.
                    let mut new_ctx = Vec::with_capacity(k.min(ctx.len() + 1));
                    if k > 0 {
                        new_ctx.push(*site);
                        for &s in ctx.iter().take(k.saturating_sub(1)) {
                            new_ctx.push(s);
                        }
                    }
                    let target = match clones.get(&(*func, new_ctx.clone())) {
                        Some(&t) => t,
                        None => {
                            if clone_list.len() >= budget {
                                return None;
                            }
                            let t = clone_list.len();
                            clones.insert((*func, new_ctx.clone()), t);
                            clone_list.push((*func, new_ctx));
                            worklist.push(t);
                            t
                        }
                    };
                    let tbase = target as u64 * stride;
                    let callee = &module.funcs[func.index()];
                    for (i, &a) in args.iter().enumerate() {
                        if let Some(&p) = callee.params.get(i) {
                            instrs.push(Flat::Move {
                                dst: tbase + u64::from(p.0),
                                src: g(a),
                            });
                        }
                    }
                    if let Some(d) = dst {
                        instrs.push(Flat::Move {
                            dst: g(*d),
                            src: tbase + u64::from(callee.ret.0),
                        });
                    }
                }
            }
        }
    }

    // Projection map: original var → global register in its owner's entry
    // clone (every function is an entry, so the entry clone always exists).
    let mut entry_global = HashMap::new();
    for (&v, &f) in &owner {
        if let Some(&c) = entry_clone.get(&f) {
            entry_global.insert(v, c as u64 * stride + u64::from(v.0));
        }
    }

    Some(Expanded {
        instrs,
        site_labels,
        clone_count: clone_list.len(),
        entry_global,
    })
}

fn run_datalog(expanded: &Expanded, module: &Module) -> HashMap<Var, Vec<Sym>> {
    let mut prog = Program::new();
    let alloc = prog.relation("Alloc", 2);
    let mv = prog.relation("Move", 2);
    let load = prog.relation("Load", 3);
    let store = prog.relation("Store", 3);
    let vpt = prog.relation("VarPointsTo", 2);
    let hpt = prog.relation("HeapPointsTo", 3);

    let (v, s, x, sb, f) = (
        Term::var(0),
        Term::var(1),
        Term::var(2),
        Term::var(3),
        Term::var(4),
    );
    // VPT(v,s) :- Alloc(v,s).
    prog.rule(vpt.atom([v, s]), [alloc.atom([v, s]).pos()]);
    // VPT(v,s) :- Move(v,x), VPT(x,s).
    prog.rule(vpt.atom([v, s]), [mv.atom([v, x]).pos(), vpt.atom([x, s]).pos()]);
    // VPT(v,s) :- Load(v,b,f), VPT(b,sb), HPT(sb,f,s).
    prog.rule(
        vpt.atom([v, s]),
        [
            load.atom([v, x, f]).pos(),
            vpt.atom([x, sb]).pos(),
            hpt.atom([sb, f, s]).pos(),
        ],
    );
    // HPT(sb,f,s) :- Store(b,f,x), VPT(b,sb), VPT(x,s).
    prog.rule(
        hpt.atom([sb, f, s]),
        [
            store.atom([v, f, x]).pos(),
            vpt.atom([v, sb]).pos(),
            vpt.atom([x, s]).pos(),
        ],
    );

    let mut db = prog.database();
    for ins in &expanded.instrs {
        match *ins {
            Flat::Alloc { dst, site } => {
                db.insert(alloc, [dst, site]);
            }
            Flat::Move { dst, src } => {
                db.insert(mv, [dst, src]);
            }
            Flat::Load { dst, base, field } => {
                db.insert(load, [dst, base, field]);
            }
            Flat::Store { base, field, src } => {
                db.insert(store, [base, field, src]);
            }
        }
    }
    let out = prog.eval(db).expect("points-to rules are stratified");

    // Project VPT onto the entry-clone registers of interest.
    let mut wanted: HashMap<u64, Var> = HashMap::new();
    for (&orig, &global) in &expanded.entry_global {
        wanted.insert(global, orig);
    }
    let mut labels: HashMap<Var, Vec<Sym>> = HashMap::new();
    for row in out.rows(vpt) {
        if let Some(&orig) = wanted.get(&row[0]) {
            let label = expanded.site_labels[row[1] as usize];
            labels.entry(orig).or_default().push(label);
        }
    }
    let _ = module;
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::ir::TermUse;
    use namer_syntax::{python, Ast, Lang};

    fn origins_by_name(src: &str) -> HashMap<String, Option<String>> {
        let ast: Ast = python::parse(src).unwrap();
        let module = builder::lower(&ast, Lang::Python);
        let sol = solve(&module, &Config::default());
        let mut out = HashMap::new();
        for &(term, use_) in &module.term_uses {
            let var = match use_ {
                TermUse::Object(v) => v,
                TermUse::FunctionRecv(v) => v,
            };
            out.insert(
                ast.value(term).as_str().to_owned(),
                sol.origin(var).map(|s| s.as_str().to_owned()),
            );
        }
        out
    }

    #[test]
    fn external_call_origin_flows_to_binding() {
        let o = origins_by_name("f = open(path)\n");
        assert_eq!(o["f"], Some("open".to_owned()));
    }

    #[test]
    fn origin_flows_through_moves() {
        let o = origins_by_name("f = open(p)\ng = f\nh = g\n");
        assert_eq!(o["h"], Some("open".to_owned()));
    }

    #[test]
    fn self_origin_and_receiver_origin() {
        let src = "class T(TestCase):\n    def m(self):\n        self.assertTrue(1, 2)\n";
        let ast = python::parse(src).unwrap();
        let module = builder::lower(&ast, Lang::Python);
        let sol = solve(&module, &Config::default());
        let mut fn_origin = None;
        for &(term, use_) in &module.term_uses {
            if ast.value(term).as_str() == "assertTrue" {
                if let TermUse::FunctionRecv(r) = use_ {
                    fn_origin = sol.origin(r);
                }
            }
        }
        assert_eq!(fn_origin.map(|s| s.as_str()), Some("TestCase"));
    }

    #[test]
    fn field_store_load_roundtrip() {
        let src = "class C:\n    def put(self):\n        self.f = open(p)\n    def get(self):\n        x = self.f\n        return x\n";
        let o = origins_by_name(src);
        assert_eq!(o["x"], Some("open".to_owned()));
    }

    #[test]
    fn ambiguous_origin_is_none() {
        let o = origins_by_name("if c:\n    x = open(p)\nelse:\n    x = connect(q)\ny = x\n");
        assert_eq!(o["y"], None);
    }

    #[test]
    fn top_origin_is_none() {
        let o = origins_by_name("x = 1\nx += 2\ny = x\n");
        assert_eq!(o["y"], None);
    }

    #[test]
    fn literal_origins() {
        let o = origins_by_name("s = 'hello'\n");
        assert_eq!(o["s"], Some("Str".to_owned()));
    }

    #[test]
    fn context_sensitivity_keeps_callers_apart() {
        // `ident` returns its argument; context-insensitively both callers
        // would see {open, connect}; with k≥1 cloning each stays precise.
        let src = "def ident(a):\n    return a\n\ndef use():\n    x = ident(open(p))\n    y = ident(connect(q))\n    return x, y\n";
        let ast = python::parse(src).unwrap();
        let module = builder::lower(&ast, Lang::Python);
        let sol = solve(&module, &Config { k: 2, max_avg_contexts: 64 });
        let mut by_name = HashMap::new();
        for &(term, use_) in &module.term_uses {
            if let TermUse::Object(v) = use_ {
                by_name.insert(ast.value(term).as_str(), sol.origin(v));
            }
        }
        assert_eq!(by_name["x"].map(|s| s.as_str()), Some("open"));
        assert_eq!(by_name["y"].map(|s| s.as_str()), Some("connect"));
    }

    #[test]
    fn k0_merges_callers() {
        let src = "def ident(a):\n    return a\n\ndef use():\n    x = ident(open(p))\n    y = ident(connect(q))\n    return x, y\n";
        let ast = python::parse(src).unwrap();
        let module = builder::lower(&ast, Lang::Python);
        let sol = solve(&module, &Config { k: 0, max_avg_contexts: 8 });
        for &(term, use_) in &module.term_uses {
            if let TermUse::Object(v) = use_ {
                if ast.value(term).as_str() == "x" {
                    assert_eq!(sol.origin(v), None, "k=0 must merge call sites");
                }
            }
        }
    }

    #[test]
    fn explosion_falls_back_to_k0() {
        // A call chain that fans out: each fn calls the next twice, giving
        // 2^depth contexts — must trip the budget and fall back.
        let mut src = String::new();
        for i in 0..12 {
            src.push_str(&format!(
                "def f{i}(a):\n    x = f{}(a)\n    y = f{}(a)\n    return x\n\n",
                i + 1,
                i + 1
            ));
        }
        src.push_str("def f12(a):\n    return a\n");
        let ast = python::parse(&src).unwrap();
        let module = builder::lower(&ast, Lang::Python);
        let sol = solve(&module, &Config { k: 5, max_avg_contexts: 8 });
        assert!(sol.fell_back);
        assert!(sol.clone_count <= module.funcs.len());
    }

    #[test]
    fn recursion_terminates() {
        let src = "def rec(a):\n    return rec(a)\n";
        let ast = python::parse(src).unwrap();
        let module = builder::lower(&ast, Lang::Python);
        let sol = solve(&module, &Config::default());
        assert!(sol.clone_count < 100);
    }
}
