//! Integration scenarios for origin resolution (§4.1): points-to through
//! fields, containers, control flow, and both languages' specifics.

use namer_analysis::{AnalysisConfig, FileAnalysis};
use namer_syntax::{java, python, stmt, transform, Ast, Lang};

fn python_origins(src: &str) -> Vec<(String, String)> {
    let ast = python::parse(src).unwrap();
    origins_of(&ast, Lang::Python)
}

fn java_origins(src: &str) -> Vec<(String, String)> {
    let ast = java::parse(src).unwrap();
    origins_of(&ast, Lang::Java)
}

/// `(terminal name, origin)` pairs for every resolved terminal.
fn origins_of(ast: &Ast, lang: Lang) -> Vec<(String, String)> {
    let analysis = FileAnalysis::analyze(ast, lang, &AnalysisConfig::default());
    let mut out = Vec::new();
    for node in ast.iter() {
        if ast.is_terminal(node) {
            if let Some(origin) = analysis.origin(node) {
                out.push((ast.value(node).to_string(), origin.to_string()));
            }
        }
    }
    out
}

fn has(pairs: &[(String, String)], name: &str, origin: &str) -> bool {
    pairs
        .iter()
        .any(|(n, o)| n == name && o == origin)
}

#[test]
fn with_as_binds_context_manager_origin() {
    let pairs = python_origins("def read(path):\n    with open(path) as f:\n        data = f.read()\n    return data\n");
    assert!(has(&pairs, "f", "open"), "{pairs:?}");
}

#[test]
fn container_element_flow() {
    let pairs = python_origins(
        "def collect():\n    items = [make_user(), make_user()]\n    for item in items:\n        use(item)\n",
    );
    // list elements come from make_user; the loop variable sees that origin.
    assert!(has(&pairs, "item", "make_user"), "{pairs:?}");
}

#[test]
fn dict_value_flow_is_tracked_via_elements() {
    let pairs = python_origins("def f():\n    cache = {}\n    cache[key] = connect()\n    conn = cache[key]\n    return conn\n");
    assert!(has(&pairs, "conn", "connect"), "{pairs:?}");
}

#[test]
fn branch_merge_with_same_origin_stays_resolved() {
    let pairs = python_origins(
        "def f(flag):\n    if flag:\n        c = connect()\n    else:\n        c = connect()\n    return c\n",
    );
    assert!(has(&pairs, "c", "connect"), "{pairs:?}");
}

#[test]
fn branch_merge_with_mixed_origins_is_unresolved() {
    let pairs = python_origins(
        "def f(flag):\n    if flag:\n        c = connect()\n    else:\n        c = accept()\n    return c\n",
    );
    // Flow-sensitivity: each branch's *store* of `c` resolves precisely…
    assert!(has(&pairs, "c", "connect"), "{pairs:?}");
    assert!(has(&pairs, "c", "accept"), "{pairs:?}");
    // …but the merged *use* in `return c` is ambiguous and stays undecorated,
    // so exactly the two store terminals are resolved.
    assert_eq!(pairs.iter().filter(|(n, _)| n == "c").count(), 2, "{pairs:?}");
}

#[test]
fn tuple_unpacking_loses_precision_gracefully() {
    // Tuple targets load `$elem` of the RHS; precision may be lost but the
    // analysis must not crash or mis-attribute.
    let pairs = python_origins("def f():\n    a, b = make(), take()\n    return a\n");
    assert!(!has(&pairs, "a", "take"), "{pairs:?}");
}

#[test]
fn class_reference_vs_instance() {
    let pairs = python_origins(
        "class Widget:\n    def __init__(self, size):\n        self.size = size\n\ndef build():\n    w = Widget(3)\n    return w\n",
    );
    assert!(has(&pairs, "w", "Widget"), "{pairs:?}");
}

#[test]
fn constructor_stores_visible_across_methods() {
    let pairs = python_origins(
        "class Holder:\n    def fill(self):\n        self.conn = connect()\n    def use(self):\n        c = self.conn\n        return c\n",
    );
    assert!(has(&pairs, "c", "connect"), "{pairs:?}");
}

#[test]
fn exception_variable_in_python_and_java() {
    let p = python_origins("try:\n    go()\nexcept KeyError as e:\n    log(e)\n");
    assert!(has(&p, "e", "KeyError"), "{p:?}");
    let j = java_origins("class A { void f() { try { go(); } catch (IOException e) { log(e); } } }");
    assert!(has(&j, "e", "IOException"), "{j:?}");
}

#[test]
fn java_local_type_fallback() {
    let j = java_origins("class A { void f() { Widget w; use(w); } }");
    assert!(has(&j, "w", "Widget"), "{j:?}");
}

#[test]
fn java_new_overrides_nothing_but_matches_declared() {
    let j = java_origins("class A { void f() { Intent intent = new Intent(); send(intent); } }");
    assert!(has(&j, "intent", "Intent"), "{j:?}");
}

#[test]
fn java_enhanced_for_uses_declared_element_type() {
    let j = java_origins(
        "class A { void f(List<String> names) { for (String name : names) { use(name); } } }",
    );
    assert!(has(&j, "name", "String"), "{j:?}");
}

#[test]
fn java_this_origin_is_external_base() {
    let j = java_origins(
        "class Child extends Fragment { void f() { this.render(); } }",
    );
    // The receiver-origin of render() is the external base class.
    assert!(j.iter().any(|(n, o)| n == "render" && o == "Fragment"), "{j:?}");
}

#[test]
fn python_super_chain_resolves_through_locals() {
    let p = python_origins(
        "class Base(TestCase):\n    pass\n\nclass Mid(Base):\n    pass\n\nclass Leaf(Mid):\n    def t(self):\n        self.assertEqual(1, 2)\n",
    );
    assert!(p.iter().any(|(n, o)| n == "assertEqual" && o == "TestCase"), "{p:?}");
}

#[test]
fn mutation_resets_value_origin() {
    let p = python_origins("def f():\n    n = 1\n    m = n\n    n += 1\n    k = n\n    return m, k\n");
    // m keeps the literal origin; k (post-mutation) loses it.
    assert!(has(&p, "m", "Num"), "{p:?}");
    assert!(!p.iter().any(|(n, _)| n == "k"), "{p:?}");
}

#[test]
fn origins_decorate_statement_trees_consistently() {
    let src = "import numpy as np\n\ndef f(vals):\n    arr = np.array(vals)\n    return arr\n";
    let ast = python::parse(src).unwrap();
    let analysis = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());
    for s in stmt::extract(&ast) {
        let origins = analysis.origins_for(&s);
        let plus = transform::to_ast_plus(&s.ast, &origins);
        // Transform must never panic and must keep the statement shape.
        assert!(plus.len() >= s.ast.len());
    }
}

#[test]
fn analysis_is_deterministic() {
    let src = "class C(TestCase):\n    def a(self):\n        self.x = open(p)\n    def b(self):\n        y = self.x\n        return y\n";
    let ast = python::parse(src).unwrap();
    let one = origins_of(&ast, Lang::Python);
    let two = origins_of(&ast, Lang::Python);
    assert_eq!(one, two);
}
