//! Per-file points-to speed (§5.1 reports 39 ms Python / 20 ms Java per
//! file), plus the k-sensitivity ablation DESIGN.md calls out
//! (k ∈ {0, 1, 2, 5} with the 8-contexts fallback).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use namer_analysis::{pointsto, AnalysisConfig, FileAnalysis};
use namer_corpus::{CorpusConfig, Generator};
use namer_syntax::{parse_file, Ast, Lang};

fn asts(lang: Lang) -> Vec<(Ast, Lang)> {
    Generator::new(CorpusConfig::small(lang))
        .generate(2)
        .files
        .iter()
        .filter_map(|f| parse_file(f).ok().map(|a| (a, f.lang)))
        .take(30)
        .collect()
}

fn bench_analysis(c: &mut Criterion) {
    let py = asts(Lang::Python);
    let java = asts(Lang::Java);

    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    for (name, files) in [("python", &py), ("java", &java)] {
        g.bench_function(format!("per_file_default_{name}"), |b| {
            b.iter(|| {
                files
                    .iter()
                    .map(|(ast, lang)| {
                        FileAnalysis::analyze(ast, *lang, &AnalysisConfig::default())
                            .resolved_count()
                    })
                    .sum::<usize>()
            })
        });
    }
    for k in [0usize, 1, 2, 5] {
        g.bench_with_input(BenchmarkId::new("k_sensitivity_python", k), &k, |b, &k| {
            let config = AnalysisConfig {
                pointsto: pointsto::Config {
                    k,
                    max_avg_contexts: 8,
                },
            };
            b.iter(|| {
                py.iter()
                    .map(|(ast, lang)| {
                        FileAnalysis::analyze(ast, *lang, &config).resolved_count()
                    })
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
