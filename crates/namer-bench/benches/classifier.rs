//! Classifier stack: training, prediction, and the model / PCA ablations
//! of DESIGN.md (SVM vs LogReg vs LDA; PCA on/off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use namer_ml::{Matrix, ModelKind, Pipeline, PipelineConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A Table 1-shaped labeled set: 17 features, 120 samples.
fn labeled_set() -> (Matrix, Vec<bool>) {
    let mut rng = SmallRng::seed_from_u64(9);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..120 {
        let pos = i % 2 == 0;
        let shift = if pos { 0.8 } else { -0.8 };
        rows.push(
            (0..17)
                .map(|j| shift * ((j % 3) as f64 - 1.0) + rng.gen_range(-1.0..1.0))
                .collect::<Vec<f64>>(),
        );
        labels.push(pos);
    }
    (Matrix::from_rows(&rows), labels)
}

fn bench_classifier(c: &mut Criterion) {
    let (x, y) = labeled_set();
    let mut g = c.benchmark_group("classifier");
    for kind in [ModelKind::SvmLinear, ModelKind::LogReg, ModelKind::Lda] {
        g.bench_with_input(
            BenchmarkId::new("train", kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter(|| Pipeline::train(kind, &x, &y, &PipelineConfig::default()).input_dim())
            },
        );
    }
    for use_pca in [true, false] {
        let config = PipelineConfig {
            use_pca,
            ..PipelineConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::new("train_svm_pca", use_pca),
            &config,
            |b, config| b.iter(|| Pipeline::train(ModelKind::SvmLinear, &x, &y, config).input_dim()),
        );
    }
    let trained = Pipeline::train(ModelKind::SvmLinear, &x, &y, &PipelineConfig::default());
    g.bench_function("predict_batch_120", |b| {
        b.iter(|| (0..x.rows()).filter(|&i| trained.predict(x.row(i))).count())
    });
    g.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
