//! Datalog engine fixpoint throughput (the substrate under §4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use namer_datalog::{Program, Term};

fn closure_program() -> (Program, namer_datalog::RelId, namer_datalog::RelId) {
    let mut p = Program::new();
    let e = p.relation("edge", 2);
    let t = p.relation("path", 2);
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
    p.rule(t.atom([x, z]), [e.atom([x, y]).pos(), t.atom([y, z]).pos()]);
    (p, e, t)
}

fn bench_datalog(c: &mut Criterion) {
    let mut g = c.benchmark_group("datalog");
    g.sample_size(20);
    g.bench_function("transitive_closure_chain_300", |b| {
        b.iter(|| {
            let (p, e, t) = closure_program();
            let mut db = p.database();
            for i in 0..300u64 {
                db.insert(e, [i, i + 1]);
            }
            let out = p.eval(db).expect("stratified");
            out.len(t)
        })
    });
    g.bench_function("transitive_closure_grid_20x20", |b| {
        b.iter(|| {
            let (p, e, t) = closure_program();
            let mut db = p.database();
            for r in 0..20u64 {
                for col in 0..20u64 {
                    let n = r * 20 + col;
                    if col + 1 < 20 {
                        db.insert(e, [n, n + 1]);
                    }
                    if r + 1 < 20 {
                        db.insert(e, [n, n + 20]);
                    }
                }
            }
            let out = p.eval(db).expect("stratified");
            out.len(t)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_datalog);
criterion_main!(benches);
