//! FP-tree growth and pattern generation (Algorithms 1–2), plus the
//! pruneUncommon threshold ablation of DESIGN.md (0.5 / 0.8 / 0.9 / 0.95).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use namer_corpus::{CorpusConfig, Generator};
use namer_core::{process, ProcessConfig};
use namer_patterns::{mine_patterns, ConfusingPairs, MiningConfig, PathSet, PatternType};
use namer_syntax::{parse_file, Lang, SourceFile};

fn stmt_paths(lang: Lang) -> (Vec<PathSet>, ConfusingPairs) {
    let corpus = Generator::new(CorpusConfig::small(lang)).generate(3);
    let processed = process(&corpus.files, &ProcessConfig::default());
    let stmts: Vec<PathSet> = processed
        .iter_stmts()
        .map(|(_, s)| s.paths.clone())
        .collect();
    let mut pairs = ConfusingPairs::new();
    for c in &corpus.commits {
        let b = parse_file(&SourceFile::new("c", "b", c.before.clone(), lang));
        let a = parse_file(&SourceFile::new("c", "a", c.after.clone(), lang));
        if let (Ok(b), Ok(a)) = (b, a) {
            pairs.mine_commit(&b, &a);
        }
    }
    (stmts, pairs)
}

fn bench_mining(c: &mut Criterion) {
    let (stmts, pairs) = stmt_paths(Lang::Python);
    let base = MiningConfig {
        min_path_count: 4,
        min_support: 15,
        ..MiningConfig::default()
    };

    let mut g = c.benchmark_group("mining");
    g.sample_size(15);
    g.bench_function("confusing_word_python", |b| {
        b.iter(|| {
            mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), &base).len()
        })
    });
    g.bench_function("consistency_python", |b| {
        b.iter(|| mine_patterns(&stmts, PatternType::Consistency, None, &base).len())
    });
    // pruneUncommon threshold ablation: lower thresholds keep more patterns.
    for threshold in [50u64, 80, 90, 95] {
        let config = MiningConfig {
            min_satisfaction: threshold as f64 / 100.0,
            ..base.clone()
        };
        g.bench_with_input(
            BenchmarkId::new("satisfaction_threshold", threshold),
            &config,
            |b, config| {
                b.iter(|| {
                    mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), config).len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
