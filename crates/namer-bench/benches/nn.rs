//! GGNN / GREAT step cost: one training step and one prediction per
//! architecture (the §5.6 baselines' compute profile).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use namer_corpus::{CorpusConfig, Generator};
use namer_nn::{build_vocab, make_samples, Arch, Model, ModelConfig};
use namer_syntax::Lang;

fn bench_nn(c: &mut Criterion) {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(4);
    let vocab = build_vocab(&corpus.files, 256);
    let config = ModelConfig {
        epochs: 1,
        max_nodes: 120,
        ..ModelConfig::default()
    };
    let samples = make_samples(&corpus.files, &vocab, 16, 0.5, config.max_nodes, 6);

    let mut g = c.benchmark_group("nn");
    g.sample_size(10);
    for arch in [Arch::Ggnn, Arch::Great] {
        g.bench_with_input(
            BenchmarkId::new("train_epoch_16_graphs", arch.to_string()),
            &arch,
            |b, &arch| {
                b.iter(|| {
                    let mut model = Model::new(arch, vocab.size(), config);
                    model.train(&samples)
                })
            },
        );
        let mut model = Model::new(arch, vocab.size(), config);
        model.train(&samples);
        g.bench_with_input(
            BenchmarkId::new("predict", arch.to_string()),
            &arch,
            |b, _| b.iter(|| model.predict(&samples[0].graph).cls),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
