//! Lexer/parser throughput for both languages, plus statement extraction
//! and the AST+ transformation — the front half of the §5.1 per-file cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use namer_corpus::{CorpusConfig, Generator};
use namer_syntax::{parse_file, stmt, transform, Lang};

fn corpus_text(lang: Lang) -> Vec<namer_syntax::SourceFile> {
    Generator::new(CorpusConfig::small(lang)).generate(1).files
}

fn bench_parsing(c: &mut Criterion) {
    let py = corpus_text(Lang::Python);
    let java = corpus_text(Lang::Java);

    let mut g = c.benchmark_group("parsing");
    g.bench_function("python_corpus_parse", |b| {
        b.iter(|| {
            py.iter()
                .map(|f| parse_file(f).expect("corpus parses").len())
                .sum::<usize>()
        })
    });
    g.bench_function("java_corpus_parse", |b| {
        b.iter(|| {
            java.iter()
                .map(|f| parse_file(f).expect("corpus parses").len())
                .sum::<usize>()
        })
    });
    g.bench_function("python_stmt_extract_and_ast_plus", |b| {
        let asts: Vec<_> = py.iter().map(|f| parse_file(f).unwrap()).collect();
        b.iter_batched(
            || asts.clone(),
            |asts| {
                let mut n = 0usize;
                for ast in &asts {
                    for s in stmt::extract(ast) {
                        let plus = transform::to_ast_plus(
                            &s.ast,
                            &namer_syntax::transform::Origins::new(),
                        );
                        n += plus.len();
                    }
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_parsing);
criterion_main!(benches);
