//! End-to-end pipeline cost (the Table 2/5 machinery): preprocessing,
//! mining + training, and detection, each over a small corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use namer_bench::{labeler, namer_config, setup, Scale, Setup};
use namer_core::{process, Namer, NamerBuilder};
use namer_syntax::Lang;

fn bench_pipeline(c: &mut Criterion) {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(Lang::Python, Scale::Small, 5);
    let config = namer_config(Scale::Small);

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("preprocess_small_corpus", |b| {
        b.iter(|| process(&corpus.files, &config.process).stmt_count())
    });
    g.bench_function("train_small_corpus", |b| {
        b.iter(|| {
            Namer::train(&corpus.files, &commits, labeler(&oracle), &config)
                .detector
                .pattern_count()
        })
    });
    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    let session = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds");
    let processed = process(&corpus.files, &config.process);
    g.bench_function("detect_small_corpus", |b| {
        b.iter(|| session.run_processed(&processed).reports.len())
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
