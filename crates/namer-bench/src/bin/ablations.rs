//! Design-choice ablations (DESIGN.md §5): how detection quality — not just
//! speed — responds to the paper's hyper-parameters:
//!
//! * points-to call-string depth k ∈ {0, 1, 5};
//! * the `pruneUncommon` satisfaction threshold ∈ {0.5, 0.8, 0.95};
//! * the PCA preprocessing toggle.

use namer_bench::{
    classify_sample, inspect, labeler, namer_config, print_table, sample_violations, setup, pct,
    Scale, Setup,
};
use namer_core::{process, Namer, NamerBuilder, Report};
use namer_syntax::Lang;

fn run_variant(
    setup_data: &Setup,
    scale: Scale,
    mutate: impl FnOnce(&mut namer_core::NamerConfig),
) -> (usize, f64, usize) {
    let mut config = namer_config(scale);
    mutate(&mut config);
    let namer = Namer::train(
        &setup_data.corpus.files,
        &setup_data.commits,
        labeler(&setup_data.oracle),
        &config,
    );
    let processed = process(&setup_data.corpus.files, &config.process);
    let session = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds");
    let scan = session.run_processed(&processed).scan;
    let namer = session.namer();
    let sample = sample_violations(&scan.violations, &namer.training_set, 300, 7);
    let reports = classify_sample(namer, &sample);
    let refs: Vec<&Report> = reports.iter().collect();
    let inspection = inspect(&refs, &setup_data.oracle);
    (
        inspection.reports,
        inspection.precision(),
        namer.detector.pattern_count(),
    )
}

fn main() {
    let scale = Scale::from_args();
    let setup_data = setup(Lang::Python, scale, 48);

    let mut rows = Vec::new();
    for k in [0usize, 1, 5] {
        let (reports, precision, patterns) = run_variant(&setup_data, scale, |c| {
            c.process.analysis.pointsto.k = k;
        });
        rows.push(vec![
            format!("k = {k}"),
            patterns.to_string(),
            reports.to_string(),
            pct(precision),
        ]);
    }
    for threshold in [0.5f64, 0.8, 0.95] {
        let (reports, precision, patterns) = run_variant(&setup_data, scale, |c| {
            c.mining.min_satisfaction = threshold;
        });
        rows.push(vec![
            format!("pruneUncommon ≥ {threshold}"),
            patterns.to_string(),
            reports.to_string(),
            pct(precision),
        ]);
    }
    for use_pca in [true, false] {
        let (reports, precision, patterns) = run_variant(&setup_data, scale, |c| {
            c.classifier.use_pca = use_pca;
        });
        rows.push(vec![
            format!("PCA = {use_pca}"),
            patterns.to_string(),
            reports.to_string(),
            pct(precision),
        ]);
    }
    print_table(
        "Design-choice ablations (Python, sampled violations)",
        &["variant", "patterns", "reports", "precision"],
        &rows,
    );
    println!("\nExpected shapes: low thresholds admit noisy patterns (more reports, lower precision);\nk = 0 merges call contexts (origins blur); PCA mainly affects conditioning, not accuracy.");
}
