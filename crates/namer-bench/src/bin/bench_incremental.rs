//! `bench_incremental` — incremental re-scan benchmark.
//!
//! ```text
//! bench_incremental [--quick | --small | --large] [--java]
//!                   [--threads N] [--seed N] [--out FILE]
//! ```
//!
//! Mines a detector on one synthetic corpus (pattern set inflated so match
//! cost dominates, the big-code regime), then times five scans through the
//! digest-keyed scan cache — cold, warm, 1-line-dirty, and
//! N-statements-dirty in statement-region mode (DESIGN.md §14), plus the
//! same 1-line edit against a warm *file-granular* cache (the pre-§14
//! baseline) — and a from-scratch full re-scan, and writes
//! `BENCH_incremental.json`. Every phase is checked bit for bit against its
//! full-scan reference; the binary exits non-zero if any phase diverges,
//! if the 1-line-dirty phase fails to beat the file-granular baseline
//! (`--quick`), or if it falls short of the ≥ 5× acceptance speedup (full
//! scales). `--quick` runs the small corpus for the smoke tests; the
//! default scale is medium.

use namer_bench::incremental::measure_incremental;
use namer_bench::Scale;
use namer_core::{atomic_write, RealFs};
use namer_patterns::resolve_threads;
use namer_syntax::Lang;
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick || args.iter().any(|a| a == "--small") {
        Scale::Small
    } else if args.iter().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Medium
    };
    let lang = if args.iter().any(|a| a == "--java") {
        Lang::Java
    } else {
        Lang::Python
    };
    let seed: u64 = match flag_value(&args, "--seed").map(str::parse) {
        None => 2021,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: bad --seed");
            return ExitCode::from(2);
        }
    };
    let threads = match flag_value(&args, "--threads").map(str::parse) {
        None => resolve_threads(0),
        Some(Ok(n)) => resolve_threads(n),
        Some(Err(_)) => {
            eprintln!("error: bad --threads");
            return ExitCode::from(2);
        }
    };
    let out = flag_value(&args, "--out").unwrap_or("BENCH_incremental.json");

    println!("incremental scan bench: {lang}, {scale:?} corpus, {threads} thread(s)");
    let bench = measure_incremental(lang, scale, seed, threads);
    println!(
        "corpus: {} files / {} statements; {} patterns ({} mined); \
         {} statement(s) for the N-dirty phase",
        bench.files, bench.stmts, bench.patterns, bench.base_patterns, bench.dirty_stmt_count
    );
    for (name, p) in [
        ("cold", &bench.cold),
        ("warm", &bench.warm),
        ("1-line-dirty", &bench.dirty_line),
        ("N-stmts-dirty", &bench.dirty_stmts),
        ("file-granular", &bench.granular_line),
        ("full re-scan", &bench.full_rescan),
    ] {
        println!(
            "  {name:>13}: {:>8.3}s | {:>5} reused / {:>5} fresh | \
             {:>6} stmt hits / {:>6} misses | {} violations",
            p.secs, p.reused, p.fresh, p.stmt_hits, p.stmt_misses, p.violations
        );
    }
    println!(
        "warm speedup {:.1}x | dirty-vs-full speedup {:.1}x | \
         region-vs-granular speedup {:.1}x | identical: {}",
        bench.warm_speedup, bench.dirty_speedup, bench.region_speedup, bench.identical
    );

    let json = serde_json::to_string_pretty(&bench).expect("bench serialises");
    if let Err(e) = atomic_write(&RealFs, out.as_ref(), (json + "\n").as_bytes()) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out}");
    if !bench.identical {
        eprintln!("error: incremental scan diverged from the full scan");
        return ExitCode::from(1);
    }
    // Speedup gates: the small smoke scale only requires splicing to win;
    // the full scales hold the ≥ 5× acceptance bar.
    let floor = if scale == Scale::Small { 1.0 } else { 5.0 };
    if bench.region_speedup < floor {
        eprintln!(
            "error: 1-line-dirty phase was only {:.2}x faster than the warm \
             file-granular baseline (floor: {floor}x)",
            bench.region_speedup
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
