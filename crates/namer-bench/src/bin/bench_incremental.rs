//! `bench_incremental` — incremental re-scan benchmark.
//!
//! ```text
//! bench_incremental [--quick | --small | --large] [--java]
//!                   [--threads N] [--seed N] [--out FILE]
//! ```
//!
//! Mines a detector on one synthetic corpus, then times three scans through
//! the digest-keyed scan cache — cold (empty cache), warm (unchanged
//! corpus), and ≈ 1 %-dirty — against a from-scratch full re-scan of the
//! mutated corpus, and writes `BENCH_incremental.json`. Every phase is
//! checked bit for bit against its full-scan reference; the binary exits
//! non-zero if any phase diverges. `--quick` runs the small corpus for the
//! smoke tests; the default scale is medium (the acceptance scale for the
//! ≥ 5× dirty-re-scan speedup).

use namer_bench::incremental::measure_incremental;
use namer_bench::Scale;
use namer_core::{atomic_write, RealFs};
use namer_patterns::resolve_threads;
use namer_syntax::Lang;
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick || args.iter().any(|a| a == "--small") {
        Scale::Small
    } else if args.iter().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Medium
    };
    let lang = if args.iter().any(|a| a == "--java") {
        Lang::Java
    } else {
        Lang::Python
    };
    let seed: u64 = match flag_value(&args, "--seed").map(str::parse) {
        None => 2021,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: bad --seed");
            return ExitCode::from(2);
        }
    };
    let threads = match flag_value(&args, "--threads").map(str::parse) {
        None => resolve_threads(0),
        Some(Ok(n)) => resolve_threads(n),
        Some(Err(_)) => {
            eprintln!("error: bad --threads");
            return ExitCode::from(2);
        }
    };
    let out = flag_value(&args, "--out").unwrap_or("BENCH_incremental.json");

    println!("incremental scan bench: {lang}, {scale:?} corpus, {threads} thread(s)");
    let bench = measure_incremental(lang, scale, seed, threads);
    println!(
        "corpus: {} files / {} statements; {} file(s) dirtied",
        bench.files, bench.stmts, bench.dirty_files
    );
    for (name, p) in [
        ("cold", &bench.cold),
        ("warm", &bench.warm),
        ("dirty", &bench.dirty),
        ("full re-scan", &bench.full_rescan),
    ] {
        println!(
            "  {name:>12}: {:>8.3}s | {:>5} reused / {:>5} fresh | {} violations",
            p.secs, p.reused, p.fresh, p.violations
        );
    }
    println!(
        "warm speedup {:.1}x | 1%-dirty speedup {:.1}x | identical: {}",
        bench.warm_speedup, bench.dirty_speedup, bench.identical
    );

    let json = serde_json::to_string_pretty(&bench).expect("bench serialises");
    if let Err(e) = atomic_write(&RealFs, out.as_ref(), (json + "\n").as_bytes()) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out}");
    if bench.identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: incremental scan diverged from the full scan");
        ExitCode::from(1)
    }
}
