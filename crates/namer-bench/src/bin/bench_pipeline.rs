//! `bench_pipeline` — pipeline throughput sweep over thread counts.
//!
//! ```text
//! bench_pipeline [--quick | --small | --large] [--java]
//!                [--threads 1,4,8] [--seed N] [--out FILE]
//! ```
//!
//! Times the process → mine → scan pipeline on one synthetic corpus at each
//! thread count and writes `BENCH_pipeline.json` (statements/second per
//! stage, straight from the pipeline's own metrics collector). A final
//! overhead check times the scan with and without a live collector against
//! DESIGN.md §10's ≤ 2 % budget, and a model-load phase times JSON versus
//! binary model decoding (cold and page-warm, with peak RSS). `--quick`
//! runs the small corpus with threads 1,2 — fast enough for the smoke
//! tests. By default the sweep
//! covers 1, 2, 4, and all cores.

use namer_bench::throughput::{measure, measure_model_load, measure_overhead};
use namer_bench::Scale;
use namer_core::{atomic_write, RealFs};
use namer_patterns::resolve_threads;
use namer_syntax::Lang;
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick || args.iter().any(|a| a == "--small") {
        Scale::Small
    } else if args.iter().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Medium
    };
    let lang = if args.iter().any(|a| a == "--java") {
        Lang::Java
    } else {
        Lang::Python
    };
    let seed: u64 = match flag_value(&args, "--seed").map(str::parse) {
        None => 2021,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: bad --seed");
            return ExitCode::from(2);
        }
    };
    let out = flag_value(&args, "--out").unwrap_or("BENCH_pipeline.json");

    // Order-preserving dedup; `0` entries mean "all cores".
    let mut threads: Vec<usize> = Vec::new();
    let requested: Vec<usize> = match flag_value(&args, "--threads") {
        Some(list) => {
            let mut parsed = Vec::new();
            for part in list.split(',') {
                match part.trim().parse() {
                    Ok(n) => parsed.push(n),
                    Err(_) => {
                        eprintln!("error: bad --threads entry {part:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            parsed
        }
        None if quick => vec![1, 2],
        None => vec![1, 2, 4, resolve_threads(0)],
    };
    for n in requested {
        let n = resolve_threads(n);
        if !threads.contains(&n) {
            threads.push(n);
        }
    }

    println!("pipeline sweep: {lang}, {scale:?} corpus, threads {threads:?}");
    let mut bench = measure(lang, scale, seed, &threads);
    println!(
        "corpus: {} files / {} statements",
        bench.files, bench.stmts
    );
    for run in &bench.runs {
        println!(
            "  {:>2} thread(s): process {:>9.0} stmts/s | mine {:>9.0} stmts/s | scan {:>9.0} stmts/s | {} patterns, {} violations",
            run.threads,
            run.process.stmts_per_sec,
            run.mine.stmts_per_sec,
            run.scan.stmts_per_sec,
            run.patterns,
            run.violations,
        );
    }

    let overhead_reps = if quick { 2 } else { 5 };
    let overhead = measure_overhead(lang, scale, seed, overhead_reps);
    println!(
        "observer overhead: {:+.2}% (unobserved {:.4}s, observed {:.4}s, best of {})",
        overhead.overhead_pct, overhead.unobserved_secs, overhead.observed_secs, overhead.reps,
    );
    bench.overhead = Some(overhead);

    let load_reps = if quick { 3 } else { 10 };
    let model_load = measure_model_load(lang, scale, seed, load_reps);
    println!(
        "model load: json {}B / binary {}B | cold {:.4}s vs {:.4}s | warm {:.5}s vs {:.5}s ({:.1}x)",
        model_load.json_bytes,
        model_load.binary_bytes,
        model_load.cold_json_secs,
        model_load.cold_binary_secs,
        model_load.warm_json_secs,
        model_load.warm_binary_secs,
        model_load.warm_speedup,
    );
    if let Some(rss) = model_load.peak_rss_bytes {
        println!("  peak RSS after loads: {:.1} MiB", rss as f64 / (1 << 20) as f64);
    }
    bench.model_load = Some(model_load);

    let json = serde_json::to_string_pretty(&bench).expect("bench serialises");
    if let Err(e) = atomic_write(&RealFs, out.as_ref(), (json + "\n").as_bytes()) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
