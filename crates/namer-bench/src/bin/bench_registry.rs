//! `bench_registry` — model-registry hit/evict rates under a byte budget.
//!
//! ```text
//! bench_registry [--quick] [--models N] [--budget-frac F]
//!                [--requests N] [--out FILE]
//! ```
//!
//! Writes a directory of distinct binary models, opens a
//! [`ModelRegistry`](namer_core::ModelRegistry) whose budget holds only
//! `--budget-frac` (default 0.4) of the catalog, replays a deterministic
//! skewed request stream, and writes `BENCH_registry.json` with hit, miss,
//! and eviction rates plus request throughput. `--quick` shrinks the
//! catalog and stream for the smoke tests.

use namer_bench::registry::measure_registry;
use namer_core::{atomic_write, RealFs};
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let models: usize = match flag_value(&args, "--models").map(str::parse) {
        None => {
            if quick {
                8
            } else {
                24
            }
        }
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: bad --models");
            return ExitCode::from(2);
        }
    };
    let budget_frac: f64 = match flag_value(&args, "--budget-frac").map(str::parse) {
        None => 0.4,
        Some(Ok(f)) if f > 0.0 => f,
        Some(_) => {
            eprintln!("error: bad --budget-frac");
            return ExitCode::from(2);
        }
    };
    let requests: usize = match flag_value(&args, "--requests").map(str::parse) {
        None => {
            if quick {
                200
            } else {
                2000
            }
        }
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: bad --requests");
            return ExitCode::from(2);
        }
    };
    let out = flag_value(&args, "--out").unwrap_or("BENCH_registry.json");

    println!(
        "registry bench: {models} models, budget {budget_frac:.0}% of catalog, {requests} requests"
    );
    let bench = measure_registry(models, budget_frac, requests);
    println!(
        "  hit rate {:.1}% | evict rate {:.1}% | {} resident ({} bytes of {} budget) | {:.0} req/s",
        bench.hit_rate * 100.0,
        bench.evict_rate * 100.0,
        bench.resident_models,
        bench.resident_bytes,
        bench.budget_bytes,
        bench.requests_per_sec,
    );

    let json = serde_json::to_string_pretty(&bench).expect("bench serialises");
    if let Err(e) = atomic_write(&RealFs, out.as_ref(), (json + "\n").as_bytes()) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
