//! `bench_shard` — pattern-axis sharding benchmark.
//!
//! ```text
//! bench_shard [--quick | --small | --large] [--java] [--seed N]
//!             [--inflation N] [--shards LIST] [--reps N] [--out FILE]
//! ```
//!
//! Mines a detector on one synthetic corpus, inflates its pattern set with
//! never-matching clone variants (`--inflation` clones per pattern, default
//! 15) so per-statement match cost dominates as it does at big-code scale,
//! then times the scan at one file thread across a shard-count curve
//! (`--shards`, default `2,4,8`) against the unsharded reference, and writes
//! `BENCH_shard.json`. Every sharded scan is checked bit for bit against the
//! reference; the binary exits non-zero if any point diverges. `--quick`
//! runs the small corpus for the smoke tests; the default scale is medium
//! (the acceptance scale for the ≥ 1.5× speedup at 4 shards).

use namer_bench::shard::measure_shard;
use namer_bench::Scale;
use namer_core::{atomic_write, RealFs};
use namer_syntax::Lang;
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick || args.iter().any(|a| a == "--small") {
        Scale::Small
    } else if args.iter().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Medium
    };
    let lang = if args.iter().any(|a| a == "--java") {
        Lang::Java
    } else {
        Lang::Python
    };
    let seed: u64 = match flag_value(&args, "--seed").map(str::parse) {
        None => 2021,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: bad --seed");
            return ExitCode::from(2);
        }
    };
    let inflation: usize = match flag_value(&args, "--inflation").map(str::parse) {
        None => {
            if quick {
                3
            } else {
                15
            }
        }
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: bad --inflation");
            return ExitCode::from(2);
        }
    };
    let shard_counts: Vec<usize> = match flag_value(&args, "--shards") {
        None => vec![2, 4, 8],
        Some(list) => {
            let parsed: Result<Vec<usize>, _> =
                list.split(',').map(|s| s.trim().parse()).collect();
            match parsed {
                Ok(v) if !v.is_empty() => v,
                _ => {
                    eprintln!("error: bad --shards (expected e.g. 2,4,8)");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let reps: usize = match flag_value(&args, "--reps").map(str::parse) {
        None => {
            if quick {
                1
            } else {
                3
            }
        }
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: bad --reps");
            return ExitCode::from(2);
        }
    };
    let out = flag_value(&args, "--out").unwrap_or("BENCH_shard.json");

    println!(
        "pattern-shard bench: {lang}, {scale:?} corpus, inflation ×{}, best of {reps}",
        inflation + 1
    );
    let bench = measure_shard(lang, scale, seed, inflation, &shard_counts, reps);
    println!(
        "corpus: {} files / {} statements; {} patterns ({} mined), file_threads=1",
        bench.files, bench.stmts, bench.patterns, bench.base_patterns
    );
    println!("  unsharded: {:>8.3}s", bench.unsharded_secs);
    for p in &bench.points {
        println!(
            "  {:>2} shards: {:>8.3}s | {:.2}x",
            p.shards, p.secs, p.speedup
        );
    }
    println!(
        "shard loads at 4: {:?} | speedup at 4 shards {:.2}x | identical: {}",
        bench.loads, bench.speedup_at_4, bench.identical
    );

    let json = serde_json::to_string_pretty(&bench).expect("bench serialises");
    if let Err(e) = atomic_write(&RealFs, out.as_ref(), (json + "\n").as_bytes()) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out}");
    if bench.identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: a sharded scan diverged from the unsharded reference");
        ExitCode::from(1)
    }
}
