//! Diagnostic dump of mining and violation behaviour (not a paper table).

use namer_bench::{label_of, labeler, namer_config, setup, Scale, Setup};
use namer_core::{Namer, NamerBuilder};
use namer_syntax::Lang;
use std::collections::HashMap;

fn main() {
    let lang = if std::env::args().any(|a| a == "--java") {
        Lang::Java
    } else {
        Lang::Python
    };
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(
        lang,
        if std::env::args().any(|a| a == "--small") {
            Scale::Small
        } else {
            Scale::Medium
        },
        42,
    );
    println!(
        "files={} injections={} commits={}",
        corpus.files.len(),
        corpus.injections.len(),
        corpus.commits.len()
    );
    let config = namer_config(if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Medium
    });
    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    println!(
        "patterns={} pairs={} model={} cv_acc={:.2}",
        namer.detector.pattern_count(),
        namer.detector.pairs.len(),
        namer.model_kind,
        namer.cv_metrics.accuracy
    );
    let processed = namer_core::process(&corpus.files, &config.process);
    let session = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds");
    let scan = session.run_processed(&processed).scan;
    let namer = session.namer();
    let tp_total = scan
        .violations
        .iter()
        .filter(|v| label_of(&oracle, v).is_some())
        .count();
    println!(
        "violations={} (raw {}) tp={} fp={} files_with_violation={}/{} training={}",
        scan.violations.len(),
        scan.raw_violation_count,
        tp_total,
        scan.violations.len() - tp_total,
        scan.files_with_violation,
        scan.files_scanned,
        namer.training_set.len()
    );
    let mut by_suggestion: HashMap<(String, String, bool), usize> = HashMap::new();
    for v in &scan.violations {
        let tp = label_of(&oracle, v).is_some();
        *by_suggestion
            .entry((v.original.to_string(), v.suggested.to_string(), tp))
            .or_default() += 1;
    }
    let mut rows: Vec<_> = by_suggestion.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1));
    println!("\nviolations by (original → suggested, is_true):");
    for ((o, s, tp), n) in rows.iter().take(30) {
        println!("  {o} → {s}  tp={tp}  ×{n}");
    }
    println!("\nmined pattern deduction ends (top 20):");
    let mut ded: HashMap<String, usize> = HashMap::new();
    for p in &namer.detector.patterns.patterns {
        let tail = p
            .deduction
            .iter()
            .map(|d| {
                d.end_str().unwrap_or("ϵ").to_owned()
                    + " @ "
                    + &d.prefix
                        .iter()
                        .rev()
                        .take(3)
                        .map(|(s, i)| format!("{s}.{i}"))
                        .collect::<Vec<_>>()
                        .join(",")
            })
            .collect::<Vec<_>>()
            .join(" | ");
        *ded.entry(format!("[{}] {tail}", p.ty)).or_default() += 1;
    }
    let mut drows: Vec<_> = ded.into_iter().collect();
    drows.sort_by(|a, b| b.1.cmp(&a.1));
    for (k, n) in drows.iter().take(20) {
        println!("  ×{n}  {k}");
    }
    // Injection recall by category.
    let mut found: HashMap<String, (usize, usize)> = HashMap::new();
    for inj in &corpus.injections {
        let hit = scan.violations.iter().any(|v| {
            v.repo == inj.repo && v.path == inj.path && v.line == inj.line
        });
        let e = found.entry(inj.category.to_string()).or_default();
        e.1 += 1;
        if hit {
            e.0 += 1;
        }
    }
    println!("\ninjection recall by category (violation level):");
    for (cat, (hit, total)) in &found {
        println!("  {cat}: {hit}/{total}");
    }
}
