//! Hyper-parameter probe for the NN baselines (not a paper table).

use namer_bench::{setup, Scale, Setup};
use namer_nn::{build_vocab, make_samples, Arch, Model, ModelConfig};
use namer_syntax::Lang;
use std::time::Instant;

fn main() {
    let Setup { corpus, .. } = setup(Lang::Python, Scale::Small, 46);
    let vocab = build_vocab(&corpus.files, 512);
    for (arch, lr, epochs, max_nodes, nsamp) in [
        (Arch::Great, 1e-3, 12, 150, 600),
        (Arch::Great, 3e-3, 12, 150, 600),
        (Arch::Ggnn, 5e-3, 10, 200, 600),
    ] {
        let config = ModelConfig {
            epochs,
            max_nodes,
            lr,
            ..ModelConfig::default()
        };
        let train = make_samples(&corpus.files, &vocab, nsamp, 0.5, max_nodes, 1);
        let test = make_samples(&corpus.files, &vocab, 200, 0.5, max_nodes, 2);
        let t0 = Instant::now();
        let mut model = Model::new(arch, vocab.size(), config);
        let loss = model.train(&train);
        let acc = model.accuracy(&test);
        println!(
            "{arch} lr={lr} epochs={epochs} nodes={max_nodes}: loss={loss:.3} cls={:.2} loc={:.2} rep={:.2} ({:.0}s)",
            acc.classification, acc.localization, acc.repair,
            t0.elapsed().as_secs_f64()
        );
    }
}
