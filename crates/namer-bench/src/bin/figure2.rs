//! Figure 2: the worked overview example — the `TestPicture` snippet goes
//! through parsing, the AST+ transformation, name-path extraction, pattern
//! matching, and the violation report with its suggested fix.

use namer_analysis::{AnalysisConfig, FileAnalysis};
use namer_patterns::{NamePattern, Relation};
use namer_syntax::{namepath, python, stmt, transform, Lang, Sym};

fn main() {
    let src = "\
class TestPicture(TestCase):
    def test_angle_picture(self):
        rotated_picture_name = \"IMG_2259.jpg\"
        for picture in self.slide.pictures:
            if picture.relative_path == rotated_picture_name:
                picture = self.slide.pictures[0]
                self.assertTrue(picture.rotate_angle, 90)
                break
";
    println!("== Figure 2: overview of Namer on the paper's example ==\n");
    println!("(a) example program:\n{src}");

    let ast = python::parse(src).expect("the Figure 2 snippet parses");
    let stmts = stmt::extract(&ast);
    let target = stmts
        .iter()
        .find(|s| s.to_sexp().contains("assertTrue"))
        .expect("the assert statement is extracted");
    println!("(b) parsed statement AST:\n    {}\n", target.to_sexp());

    let analysis = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());
    let origins = analysis.origins_for(target);
    let plus = transform::to_ast_plus(&target.ast, &origins);
    println!(
        "(c) transformed AST+ (NUM/NumArgs/NumST + origins from the points-to analysis):\n    {}\n",
        plus.to_sexp(plus.root())
    );

    let paths = namepath::extract(&plus, 10);
    println!("(d) name paths:");
    for p in &paths {
        println!("    {p}");
    }

    // (e) the Figure 2 name pattern, built from the statement's own paths.
    let find = |end: &str| {
        paths
            .iter()
            .find(|p| p.end_str() == Some(end))
            .unwrap_or_else(|| panic!("path ending in {end}"))
            .clone()
    };
    let mut deduction = find("True");
    deduction.end = Some(Sym::intern("Equal"));
    let pattern = NamePattern::confusing_word(
        vec![find("self"), find("assert"), find("NUM")],
        deduction,
    );
    println!("\n(e) violated name pattern:\n{pattern}");

    match pattern.relation(&paths) {
        Relation::Violated(v) => println!(
            "violation: `{}` contradicts the deduction — suggested fix: replace `{}` with `{}` (assertTrue → assertEqual)",
            v.violated_path, v.original, v.suggested
        ),
        other => println!("unexpected relation: {other:?}"),
    }
}
