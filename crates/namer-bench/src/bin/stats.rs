//! §5.2 / §5.3 statistics: mined pattern counts, violation coverage,
//! classifier cross-validation metrics, per-file analysis speed, and the
//! ablation knobs DESIGN.md calls out (classifier model comparison).

use namer_bench::{labeler, namer_config, pct, print_table, setup, Scale, Setup};
use namer_core::{process, Namer, NamerBuilder};
use namer_ml::{k_fold_validation, Matrix, ModelKind};
use namer_syntax::Lang;
use std::time::Instant;

fn run_lang(lang: Lang, scale: Scale, seed: u64) {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(lang, scale, seed);
    let config = namer_config(scale);

    // Per-file preprocessing speed (§5.1 reports 39 ms Python / 20 ms Java
    // per file on the authors' server; ours are small synthetic files).
    let t0 = Instant::now();
    let processed = process(&corpus.files, &config.process);
    let per_file_ms = t0.elapsed().as_secs_f64() * 1000.0 / corpus.files.len().max(1) as f64;

    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    let session = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds");
    let scan = session.run_processed(&processed).scan;
    let namer = session.namer();

    let rows = vec![
        vec!["files".into(), corpus.files.len().to_string()],
        vec!["repositories".into(), corpus.repo_count().to_string()],
        vec!["statements".into(), processed.stmt_count().to_string()],
        vec![
            "mined name patterns".into(),
            namer.detector.pattern_count().to_string(),
        ],
        vec![
            "confusing word pairs".into(),
            namer.detector.pairs.len().to_string(),
        ],
        vec![
            "violations (report candidates)".into(),
            scan.violations.len().to_string(),
        ],
        vec![
            "raw (statement, pattern) violations".into(),
            scan.raw_violation_count.to_string(),
        ],
        vec![
            "files with ≥1 violation".into(),
            format!(
                "{} ({})",
                scan.files_with_violation,
                pct(scan.files_with_violation as f64 / scan.files_scanned.max(1) as f64)
            ),
        ],
        vec![
            "repos with ≥1 violation".into(),
            format!(
                "{} ({})",
                scan.repos_with_violation,
                pct(scan.repos_with_violation as f64 / corpus.repo_count().max(1) as f64)
            ),
        ],
        vec![
            "selected classifier".into(),
            namer.model_kind.to_string(),
        ],
        vec![
            "CV accuracy/precision/recall/F1".into(),
            format!(
                "{} / {} / {} / {}",
                pct(namer.cv_metrics.accuracy),
                pct(namer.cv_metrics.precision),
                pct(namer.cv_metrics.recall),
                pct(namer.cv_metrics.f1)
            ),
        ],
        vec![
            "preprocessing per file".into(),
            format!("{per_file_ms:.1} ms"),
        ],
    ];
    print_table(&format!("§5.2/§5.3 statistics ({lang})"), &["metric", "value"], &rows);

    // Model-choice ablation (DESIGN.md §5): CV metrics per candidate model.
    if !namer.training_set.is_empty() {
        let x = Matrix::from_rows(
            &namer
                .training_set
                .iter()
                .map(|v| v.features.to_vec())
                .collect::<Vec<_>>(),
        );
        let lab = labeler(&oracle);
        let y: Vec<bool> = namer.training_set.iter().map(|v| lab(v)).collect();
        let rows: Vec<Vec<String>> = [ModelKind::SvmLinear, ModelKind::LogReg, ModelKind::Lda]
            .into_iter()
            .map(|kind| {
                let m = k_fold_validation(kind, &x, &y, 5, &config.classifier, 7);
                vec![
                    kind.to_string(),
                    pct(m.accuracy),
                    pct(m.precision),
                    pct(m.recall),
                    pct(m.f1),
                ]
            })
            .collect();
        print_table(
            &format!("Classifier model selection ({lang})"),
            &["model", "accuracy", "precision", "recall", "F1"],
            &rows,
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    run_lang(Lang::Python, scale, 42);
    run_lang(Lang::Java, scale, 43);
    println!("\nPaper reference: 65,619 Python / 79,417 Java patterns; 50%/11% of files and 92%/77% of repos with ≥1 violation; CV ≈81% (Py) / ≈90% (Java); 39/20 ms per file.");
}
