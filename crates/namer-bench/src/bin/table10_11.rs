//! Tables 10 & 11 (+ the §5.6 synthetic-accuracy block): GGNN and GREAT vs
//! Namer on real issues. The baselines are trained on synthetic variable
//! misuse, reach high synthetic accuracy, and are then evaluated on the
//! uncorrupted corpus with their confidence tuned to report ~5× fewer
//! issues than Namer — exactly the paper's §5.6 protocol.

use namer_bench::{
    inspect, labeler, namer_config, pct, print_table, setup, Inspection, Scale, Setup,
};
use namer_core::{Namer, NamerBuilder, Report};
use namer_corpus::Severity;
use namer_nn::{build_vocab, make_samples, scan, top_reports, Arch, Model, ModelConfig};
use namer_syntax::Lang;

fn run_lang(lang: Lang, scale: Scale, seed: u64) {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(lang, scale, seed);
    let config = namer_config(scale);
    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    let namer_reports = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds")
        .run(&corpus.files)
        .expect("cacheless run")
        .reports;
    let namer_refs: Vec<&Report> = namer_reports.iter().collect();
    let namer_row = inspect(&namer_refs, &oracle);

    // Train the baselines on synthetic VarMisuse over the same corpus.
    let vocab = build_vocab(&corpus.files, 512);
    // The paper tunes baseline confidence to ~5× fewer reports than Namer.
    let target = (namer_reports.len() / 5).max(5);

    let mut rows = Vec::new();
    for arch in [Arch::Ggnn, Arch::Great] {
        let nn_config = match arch {
            Arch::Ggnn => ModelConfig {
                epochs: 10,
                max_nodes: 200,
                lr: 5e-3,
                ..ModelConfig::default()
            },
            // The transformer needs a gentler rate and more passes; smaller
            // graphs keep the n² attention affordable.
            Arch::Great => ModelConfig {
                epochs: 20,
                max_nodes: 120,
                lr: 1e-3,
                ..ModelConfig::default()
            },
        };
        let train = make_samples(&corpus.files, &vocab, 900, 0.5, nn_config.max_nodes, seed);
        let test = make_samples(&corpus.files, &vocab, 300, 0.5, nn_config.max_nodes, seed ^ 1);
        let mut model = Model::new(arch, vocab.size(), nn_config);
        model.train(&train);
        let acc = model.accuracy(&test);
        println!(
            "{arch} synthetic accuracy: classification {} localization {} repair {}",
            pct(acc.classification),
            pct(acc.localization),
            pct(acc.repair)
        );
        let reports = top_reports(scan(&model, &corpus.files, &vocab), target);
        let mut row = Inspection {
            reports: reports.len(),
            ..Inspection::default()
        };
        for r in &reports {
            let file = &corpus.files[r.file_idx];
            match oracle.label(
                &file.repo,
                &file.path,
                r.line,
                r.original.as_str(),
                r.suggested.as_str(),
            ) {
                Some(cat) if cat.severity() == Severity::SemanticDefect => row.semantic += 1,
                Some(_) => row.quality += 1,
                None => row.false_positives += 1,
            }
        }
        rows.push((arch.to_string(), row));
    }
    rows.push(("Namer".to_owned(), namer_row));

    let table = if lang == Lang::Python {
        "Table 10"
    } else {
        "Table 11"
    };
    print_table(
        &format!("{table}: precision of GGNN, GREAT and Namer ({lang})"),
        &[
            "System",
            "Reports",
            "Semantic defects",
            "Code quality issues",
            "False positives",
            "Precision",
        ],
        &rows
            .iter()
            .map(|(name, i)| {
                vec![
                    name.clone(),
                    i.reports.to_string(),
                    i.semantic.to_string(),
                    i.quality.to_string(),
                    i.false_positives.to_string(),
                    pct(i.precision()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn main() {
    let scale = Scale::from_args();
    run_lang(Lang::Python, scale, 46);
    run_lang(Lang::Java, scale, 47);
    println!("\nPaper shape: GGNN/GREAT score well on synthetic bugs but ≤16% precision on real issues; Namer ≈70% with ~5× more reports (distribution mismatch).");
}
