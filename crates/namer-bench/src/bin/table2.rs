//! Table 2: precision of Namer and ablations on sampled violations from the
//! Python corpus ("C" = defect classifier, "A" = static analyses).

use namer_bench::{ablation_table, print_ablation, Scale};
use namer_syntax::Lang;

fn main() {
    let scale = Scale::from_args();
    let rows = ablation_table(Lang::Python, scale, 42, 300);
    print_ablation(
        "Table 2: Namer and baselines on sampled violations (Python)",
        &rows,
    );
    println!("\nPaper shape: Namer ≈70% ≫ w/o A > w/o C > w/o C & A; w/o A also reports fewer issues.");
}
