//! Tables 3 & 6: example reports — curated paper snippets run through the
//! full pipeline, printing Namer's suggested fixes (`--java` for Table 6).

use namer_bench::{labeler, namer_config, setup, Scale, Setup};
use namer_core::{Namer, NamerBuilder};
use namer_syntax::{Lang, SourceFile};

fn main() {
    let lang = if std::env::args().any(|a| a == "--java") {
        Lang::Java
    } else {
        Lang::Python
    };
    let scale = Scale::from_args();
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(lang, scale, 45);
    let config = namer_config(scale);
    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    let mut session = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds");

    // Curated statements shaped like the paper's Tables 3 / 6 rows. The
    // tables exist only for the paper's two languages, so this binary keeps
    // a Python/Java switch (no registry dispatch to migrate).
    let snippets: Vec<(&str, String)> = if lang == Lang::Python {
        vec![
            (
                "example 1 (semantic defect: wrong API)",
                "class TestVec(TestCase):\n    def test_len(self):\n        vec = load_vec()\n        self.assertTrue(vec.size, 4)\n".to_owned(),
            ),
            (
                "example 2 (semantic defect: deprecated API)",
                "def sum_items(items):\n    total = 0\n    for i in xrange(10):\n        total += i\n    return total\n".to_owned(),
            ),
            (
                "example 3 (semantic defect: deprecated assertEquals)",
                "class TestVal(TestCase):\n    def test_val(self):\n        val = load_val()\n        self.assertEquals(val.count, 3)\n".to_owned(),
            ),
            (
                "example 4 (code quality: typo)",
                "class PortServer:\n    def __init__(self, port, host):\n        self.port = por\n        self.host = host\n".to_owned(),
            ),
            (
                "example 5 (code quality: **args for kwargs)",
                "class EvolveOptions:\n    def evolve(self, rate, **args):\n        self.rate = rate\n        self.configure(args)\n".to_owned(),
            ),
            (
                "example 6 (code quality: N for np)",
                "import numpy as N\ndef convert_sizes(values):\n    sizes = N.array(values)\n    return sizes\n".to_owned(),
            ),
            (
                "example 7 (expected FALSE POSITIVE: islink is legitimate)",
                "class TestPathLink(TestCase):\n    def test_link(self):\n        self.assertTrue(os.path.islink(path))\n".to_owned(),
            ),
        ]
    } else {
        vec![
            (
                "example 1 (semantic defect: getStackTrace misuse)",
                "public class TaskRunner { public void runTask() { try { run(); } catch (Exception e) { e.getStackTrace(); } } }".to_owned(),
            ),
            (
                "example 2 (semantic defect: double loop index)",
                "public class ChainCounter { public int countChains(int chainlength) { int total = 0; for (double i = 1; i < chainlength; i++) { total += i; } return total; } }".to_owned(),
            ),
            (
                "example 3 (semantic defect: catching Throwable)",
                "public class JobRunner { public void runJob() { try { run(); } catch (Throwable e) { e.printStackTrace(); } } }".to_owned(),
            ),
            (
                "example 4 (code quality: publickKey typo)",
                "public class KeyEntity { private String publicKey; public void setPublicKey(String publickKey) { this.publicKey = publickKey; } }".to_owned(),
            ),
            (
                "example 5 (code quality: `i` holding an Intent)",
                "public class MenuActivity { public void openMenu(Context context) { Intent i = new Intent(); context.startActivity(i); } }".to_owned(),
            ),
            (
                "example 6 (code quality: progDialog abbreviation)",
                "public class LoadScreen { public void closeLoad(ProgressDialog progDialog) { progDialog.dismiss(); } }".to_owned(),
            ),
            (
                "example 7 (expected FALSE POSITIVE: outputWriter is fine)",
                "public class LogExporter { public void exportLog() { StringWriter outputWriter = new StringWriter(); outputWriter.flush(); } }".to_owned(),
            ),
        ]
    };

    let table = if lang == Lang::Python { "Table 3" } else { "Table 6" };
    println!("== {table}: example reports by Namer ({lang}) ==\n");
    for (label, code) in snippets {
        let file = SourceFile::new("examples", "snippet", code.clone(), lang);
        let reports = session
            .run(std::slice::from_ref(&file))
            .expect("cacheless run")
            .reports;
        println!("--- {label}");
        for line in code.lines().filter(|l| !l.trim().is_empty()) {
            println!("    {line}");
        }
        if reports.is_empty() {
            println!("  → no report\n");
        } else {
            for r in reports.iter().take(2) {
                println!(
                    "  → line {}: replace `{}` with `{}` [{}]",
                    r.violation.line, r.violation.original, r.violation.suggested,
                    r.violation.pattern_ty
                );
                let line = code.lines().nth(r.violation.line as usize - 1).unwrap_or("");
                if let Some(fixed) = namer_core::fix_line(
                    line,
                    r.violation.original.as_str(),
                    r.violation.suggested.as_str(),
                ) {
                    println!("    fixed: {}", fixed.trim());
                }
            }
            println!();
        }
    }
}
