//! Table 4: per-pattern-type inspection of Namer reports (Python), with the
//! code-quality breakdown, plus the §5.2 distribution of reports per pattern
//! type (consistency vs confusing-word vs both).

use namer_bench::{label_of, labeler, namer_config, pct, print_table, setup, Scale, Setup};
use namer_core::{Namer, NamerBuilder};
use namer_corpus::{IssueCategory, Severity};
use namer_patterns::PatternType;
use namer_syntax::Lang;

fn main() {
    let scale = Scale::from_args();
    let lang = if std::env::args().any(|a| a == "--java") {
        Lang::Java
    } else {
        Lang::Python
    };
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(lang, scale, 44);
    let config = namer_config(scale);
    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    let reports = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds")
        .run(&corpus.files)
        .expect("cacheless run")
        .reports;

    // §5.2 distribution: % of reports per pattern type.
    let total = reports.len().max(1) as f64;
    let consistency = reports
        .iter()
        .filter(|r| r.violation.pattern_ty == PatternType::Consistency || r.violation.detected_by_both)
        .count();
    let confusing = reports
        .iter()
        .filter(|r| r.violation.pattern_ty == PatternType::ConfusingWord || r.violation.detected_by_both)
        .count();
    let both = reports.iter().filter(|r| r.violation.detected_by_both).count();
    println!(
        "reports: {} | consistency {} | confusing-word {} | detected by both {}",
        reports.len(),
        pct(consistency as f64 / total),
        pct(confusing as f64 / total),
        pct(both as f64 / total),
    );

    // Table 4: inspect up to 100 reports per pattern type.
    let mut rows = Vec::new();
    let quality_cats = [
        IssueCategory::ConfusingName,
        IssueCategory::IndescriptiveName,
        IssueCategory::InconsistentName,
        IssueCategory::MinorIssue,
        IssueCategory::Typo,
    ];
    let mut per_type: Vec<Vec<String>> = vec![Vec::new(); 2];
    for (col, ty) in [PatternType::Consistency, PatternType::ConfusingWord]
        .into_iter()
        .enumerate()
    {
        let selected: Vec<_> = reports
            .iter()
            .filter(|r| r.violation.pattern_ty == ty)
            .take(100)
            .collect();
        let mut semantic = 0;
        let mut fp = 0;
        let mut per_cat = vec![0usize; quality_cats.len()];
        for r in &selected {
            match label_of(&oracle, &r.violation) {
                Some(cat) if cat.severity() == Severity::SemanticDefect => semantic += 1,
                Some(cat) => {
                    if let Some(i) = quality_cats.iter().position(|&c| c == cat) {
                        per_cat[i] += 1;
                    }
                }
                None => fp += 1,
            }
        }
        let quality: usize = per_cat.iter().sum();
        per_type[col] = vec![
            selected.len().to_string(),
            semantic.to_string(),
            quality.to_string(),
            fp.to_string(),
        ];
        per_type[col].extend(per_cat.iter().map(usize::to_string));
    }
    let labels = [
        "Inspected reports",
        "Semantic defect",
        "Code quality issue",
        "False positive",
        "  Confusing name",
        "  Indescriptive name",
        "  Inconsistent name",
        "  Minor issue",
        "  Typo",
    ];
    for (i, l) in labels.iter().enumerate() {
        rows.push(vec![
            l.to_string(),
            per_type[0][i].clone(),
            per_type[1][i].clone(),
        ]);
    }
    print_table(
        &format!("Table 4: inspection per pattern type ({lang})"),
        &["Inspection outcome", "Consistency", "Confusing word"],
        &rows,
    );
    println!("\nPaper shape: confusing-word patterns recover more semantic defects; consistency patterns produce fewer false positives.");
}
