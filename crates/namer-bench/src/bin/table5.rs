//! Table 5: precision of Namer and ablations on sampled violations from the
//! Java corpus.

use namer_bench::{ablation_table, print_ablation, Scale};
use namer_syntax::Lang;

fn main() {
    let scale = Scale::from_args();
    let rows = ablation_table(Lang::Java, scale, 43, 300);
    print_ablation(
        "Table 5: Namer and baselines on sampled violations (Java)",
        &rows,
    );
    println!("\nPaper shape: Namer ≈68% ≫ w/o A > w/o C ≈ w/o C & A.");
}
