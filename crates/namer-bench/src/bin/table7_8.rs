//! Tables 7 & 8: the user study — five code-quality reports (one per
//! Table 4 category) and the simulated 7-developer acceptance panel.

use namer_bench::print_table;
use namer_corpus::{Acceptance, StudyPanel, STUDY_CATEGORIES};

fn main() {
    // Table 7: the five study issues, one per category (the paper's set).
    let issues = [
        (
            "Inconsistent name",
            "if docstring is not None:\n        self.help = docstring",
            "Rename help to docstring",
        ),
        (
            "Minor issue",
            "def fullpath_set(self, value):\n        self._fullpath = value",
            "Rename value to a more descriptive name like fullpath",
        ),
        (
            "Confusing name",
            "self._factory = song",
            "Change some name to avoid code like self._factory = song",
        ),
        ("Typo", "self.port = por", "Rename por to port"),
        (
            "Indescriptive name",
            "def reset(self, *e):\n        self._autostep = 0",
            "Rename e to a more descriptive name",
        ),
    ];
    println!("== Table 7: code quality issues selected for the user study ==\n");
    for (cat, code, fix) in issues {
        println!("[{cat}]");
        for line in code.lines() {
            println!("    {line}");
        }
        println!("  → {fix}\n");
    }

    // Table 8: simulated panel responses.
    let panel = StudyPanel::new(7, 2021);
    let rows: Vec<Vec<String>> = STUDY_CATEGORIES
        .iter()
        .map(|&cat| {
            let t = panel.tally(cat);
            let mut row = vec![cat.to_string()];
            row.extend(t.iter().map(usize::to_string));
            row
        })
        .collect();
    print_table(
        "Table 8: simulated 7-developer acceptance responses",
        &[
            "Issue category",
            "Not accepted",
            "With IDE plugin",
            "With pull request",
            "Would fix manually",
        ],
        &rows,
    );
    let rejected: usize = STUDY_CATEGORIES.iter().map(|&c| panel.tally(c)[0]).sum();
    let manual: usize = STUDY_CATEGORIES
        .iter()
        .map(|&c| {
            let t = panel.tally(c);
            let idx = Acceptance::all()
                .iter()
                .position(|&a| a == Acceptance::FixManually)
                .expect("option exists");
            t[idx]
        })
        .sum();
    println!(
        "\nPaper shape: only ~5/35 responses reject; ~9/35 would fix manually. Simulated: {rejected} rejected, {manual} manual."
    );
}
