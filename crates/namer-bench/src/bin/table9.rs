//! Table 9: feature weights of the learned classifier, averaged over the
//! Python and Java systems, for the three multi-level feature families
//! (identical statements, satisfaction counts, violation counts).

use namer_bench::{labeler, namer_config, print_table, setup, Scale, Setup};
use namer_core::{Namer, FEATURE_NAMES};
use namer_syntax::Lang;

fn weights_for(lang: Lang, scale: Scale, seed: u64) -> Option<Vec<f64>> {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(lang, scale, seed);
    let config = namer_config(scale);
    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    namer.feature_weights()
}

fn main() {
    let scale = Scale::from_args();
    let py = weights_for(Lang::Python, scale, 42).expect("python classifier trained");
    let java = weights_for(Lang::Java, scale, 43).expect("java classifier trained");
    let avg: Vec<f64> = py.iter().zip(&java).map(|(a, b)| (a + b) / 2.0).collect();

    // Table 1 indices (0-based): identical statements 1–2, satisfaction
    // counts 9–11, violation counts 6–8.
    let fam = |name: &str, idx: &[Option<usize>]| {
        let mut row = vec![name.to_owned()];
        row.extend(idx.iter().map(|i| match i {
            Some(i) => format!("{:+.4}", avg[*i]),
            None => "-".to_owned(),
        }));
        row
    };
    let rows = vec![
        fam("Identical statement", &[Some(1), Some(2), None]),
        fam("Satisfaction count", &[Some(9), Some(10), Some(11)]),
        fam("Violation count", &[Some(6), Some(7), Some(8)]),
    ];
    print_table(
        "Table 9: feature weights of the learned classifier (avg. Python+Java)",
        &["Feature", "File level", "Repo level", "Entire dataset"],
        &rows,
    );

    println!("\nAll 17 feature weights (averaged):");
    for (i, name) in FEATURE_NAMES.iter().enumerate() {
        println!("  {:+.4}  {name}", avg[i]);
    }
    println!("\nPaper shape: the same feature family can carry opposite signs at local vs dataset level (e.g. violation count).");
}
