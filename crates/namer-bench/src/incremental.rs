//! Incremental re-scan benchmark behind the `bench_incremental` binary
//! (`BENCH_incremental.json`): cold, warm, and 1 %-dirty scan timings
//! through the digest-keyed scan cache, against a from-scratch full scan of
//! the same corpus.
//!
//! Every phase's results are compared bit for bit against the matching full
//! scan — the benchmark doubles as an end-to-end check of the DESIGN.md §8
//! equivalence guarantee, and the binary exits non-zero when it fails.

use crate::{namer_config, setup, Scale, Setup};
use namer_core::{
    process_parallel, process_parallel_observed, Detector, ProcessConfig, ScanCache, ScanResult,
};
use namer_observe::{Phase, PipelineMetrics};
use namer_patterns::{MiningConfig, ShardPlan};
use namer_syntax::{Lang, SourceFile};
use serde::Serialize;

/// Wall-clock and cache accounting of one scan phase.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PhaseTiming {
    /// Elapsed seconds (processing dirty files included).
    pub secs: f64,
    /// Files served from the cache.
    pub reused: usize,
    /// Files processed and scanned fresh.
    pub fresh: usize,
    /// Deduplicated violations found.
    pub violations: usize,
}

/// The benchmark report serialised to `BENCH_incremental.json`.
#[derive(Clone, Debug, Serialize)]
pub struct IncrementalBench {
    /// Corpus language.
    pub lang: String,
    /// Files in the corpus.
    pub files: usize,
    /// Statements in the corpus.
    pub stmts: usize,
    /// Worker threads used for every phase.
    pub threads: usize,
    /// Files mutated for the dirty phases (≈ 1 % of the corpus).
    pub dirty_files: usize,
    /// Empty cache, every file fresh.
    pub cold: PhaseTiming,
    /// Fully warmed cache, unchanged corpus.
    pub warm: PhaseTiming,
    /// Warmed cache, ≈ 1 % of files mutated.
    pub dirty: PhaseTiming,
    /// From-scratch process + scan of the mutated corpus (the baseline the
    /// dirty phase replaces).
    pub full_rescan: PhaseTiming,
    /// `cold.secs / warm.secs`.
    pub warm_speedup: f64,
    /// `full_rescan.secs / dirty.secs` — the headline number.
    pub dirty_speedup: f64,
    /// Every phase matched its full-scan reference bit for bit.
    pub identical: bool,
}

/// Everything observable about a scan, bitwise.
fn key(scan: &ScanResult) -> Vec<(String, Vec<u64>)> {
    scan.violations
        .iter()
        .map(|v| {
            (
                v.to_string(),
                v.features.iter().map(|f| f.to_bits()).collect(),
            )
        })
        .collect()
}

/// Appends a trailing comment to `file`, changing its digest without
/// changing its statements — the cheapest realistic "file was touched" edit.
fn dirty(file: &mut SourceFile, round: usize) {
    let marker = match file.lang {
        Lang::Python => "#",
        Lang::Java => "//",
    };
    file.text
        .push_str(&format!("\n{marker} dirtied {round} for bench_incremental\n"));
}

/// Times a from-scratch process + scan of `files`. Seconds are the sum of
/// the collector's process, scan, and assembly phase walls — the same
/// clocks the incremental phases report, so the speedup ratios compare like
/// with like.
fn time_full(
    det: &Detector,
    files: &[SourceFile],
    config: &ProcessConfig,
    threads: usize,
) -> (f64, ScanResult) {
    let metrics = PipelineMetrics::new();
    let obs = metrics.observer();
    let processed = process_parallel_observed(files, config, threads, obs);
    let scan = det.violations_sharded_observed(&processed, threads, &ShardPlan::unsharded(), obs);
    let snap = metrics.snapshot();
    let secs = snap.phase_secs(Phase::Process)
        + snap.phase_secs(Phase::Scan)
        + snap.phase_secs(Phase::Assemble);
    (secs, scan)
}

/// Generates one corpus, mines a detector, and times the cold / warm /
/// 1 %-dirty incremental phases against full-scan baselines.
pub fn measure_incremental(lang: Lang, scale: Scale, seed: u64, threads: usize) -> IncrementalBench {
    let Setup {
        corpus, commits, ..
    } = setup(lang, scale, seed);
    let config = namer_config(scale);
    let process_config = config.process;

    let processed = process_parallel(&corpus.files, &process_config, threads);
    let stmts = processed.stmt_count();
    let mining = MiningConfig {
        threads,
        ..config.mining.clone()
    };
    let det = Detector::mine(&processed, &commits, lang, &mining);
    let fingerprint = det.fingerprint(&process_config);

    // Baseline: a full scan of the pristine corpus.
    let (_, full_base) = time_full(&det, &corpus.files, &process_config, threads);

    let phase = |cache: &mut ScanCache, files: &[SourceFile]| {
        let metrics = PipelineMetrics::new();
        let inc = det.violations_incremental_sharded_observed(
            files,
            &process_config,
            cache,
            threads,
            &ShardPlan::unsharded(),
            metrics.observer(),
        );
        let snap = metrics.snapshot();
        // Cache lookup + fresh-file processing + scan + assembly: every
        // phase the incremental path actually runs.
        let secs = snap.phase_secs(Phase::CacheLookup)
            + snap.phase_secs(Phase::Process)
            + snap.phase_secs(Phase::Scan)
            + snap.phase_secs(Phase::Assemble);
        (
            PhaseTiming {
                secs,
                reused: inc.reused,
                fresh: inc.fresh,
                violations: inc.scan.violations.len(),
            },
            inc.scan,
        )
    };

    let mut cache = ScanCache::empty(fingerprint);
    let (cold, cold_scan) = phase(&mut cache, &corpus.files);
    let (warm, warm_scan) = phase(&mut cache, &corpus.files);

    // Mutate ≈ 1 % of the files (at least one), spread across the corpus.
    let n = corpus.files.len();
    let dirty_files = (n / 100).max(1).min(n);
    let step = n / dirty_files;
    let mut mutated = corpus.files.clone();
    for k in 0..dirty_files {
        dirty(&mut mutated[k * step], k);
    }

    let (full_secs, full_scan) = time_full(&det, &mutated, &process_config, threads);
    let (dirty_t, dirty_scan) = phase(&mut cache, &mutated);

    let identical = key(&cold_scan) == key(&full_base)
        && key(&warm_scan) == key(&full_base)
        && key(&dirty_scan) == key(&full_scan);

    let full_rescan = PhaseTiming {
        secs: full_secs,
        reused: 0,
        fresh: n,
        violations: full_scan.violations.len(),
    };
    IncrementalBench {
        lang: lang.to_string(),
        files: n,
        stmts,
        threads,
        dirty_files,
        cold,
        warm,
        dirty: dirty_t,
        full_rescan,
        warm_speedup: cold.secs / warm.secs.max(1e-9),
        dirty_speedup: full_rescan.secs / dirty_t.secs.max(1e-9),
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_covers_all_phases_and_stays_identical() {
        let bench = measure_incremental(Lang::Python, Scale::Small, 7, 1);
        assert!(bench.identical, "incremental diverged from full scan");
        assert_eq!(bench.cold.fresh, bench.files);
        assert_eq!(bench.warm.fresh, 0);
        assert_eq!(bench.warm.reused, bench.files);
        assert!(bench.dirty.fresh >= 1);
        assert!(bench.dirty.fresh <= bench.dirty_files);
        assert!(bench.dirty_speedup > 0.0);
        assert!(bench.warm_speedup > 0.0);
    }
}
