//! Incremental re-scan benchmark behind the `bench_incremental` binary
//! (`BENCH_incremental.json`): cold, warm, 1-line-dirty, and
//! N-statements-dirty scan timings through the digest-keyed scan cache in
//! statement-region mode (DESIGN.md §14), against the pre-region
//! file-granular baseline (§8) and a from-scratch full scan.
//!
//! The pattern set is inflated with never-matching clone variants
//! ([`crate::shard::inflate`]) so per-statement match cost dominates — the
//! big-code regime where statement splicing pays: a one-statement edit
//! re-matches one statement instead of every statement of the touched file.
//!
//! Every phase's results are compared bit for bit against the matching full
//! scan — the benchmark doubles as an end-to-end check of the DESIGN.md
//! §8/§14 equivalence guarantees, and the binary exits non-zero when it
//! fails.

use crate::shard::inflate;
use crate::{namer_config, setup, Scale, Setup};
use namer_core::{
    process_parallel, process_parallel_observed, Detector, ProcessConfig, ScanCache, ScanRequest,
    ScanResult,
};
use namer_observe::{Counter, Phase, PipelineMetrics};
use namer_patterns::{MiningConfig, ShardPlan};
use namer_syntax::{Lang, SourceFile};
use serde::Serialize;

/// Wall-clock and cache accounting of one scan phase.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PhaseTiming {
    /// Elapsed seconds (processing dirty files included).
    pub secs: f64,
    /// Files served from the cache.
    pub reused: usize,
    /// Files processed and scanned fresh.
    pub fresh: usize,
    /// Statements spliced from cached regions (0 in file-granular mode and
    /// for the from-scratch baseline).
    pub stmt_hits: u64,
    /// Statements matched fresh against the pattern set.
    pub stmt_misses: u64,
    /// Deduplicated violations found.
    pub violations: usize,
}

/// The benchmark report serialised to `BENCH_incremental.json`.
#[derive(Clone, Debug, Serialize)]
pub struct IncrementalBench {
    /// Corpus language.
    pub lang: String,
    /// Files in the corpus.
    pub files: usize,
    /// Statements in the corpus.
    pub stmts: usize,
    /// Worker threads used for every phase.
    pub threads: usize,
    /// Patterns actually mined from the corpus.
    pub base_patterns: usize,
    /// Pattern-set size after inflation (what every phase scans against).
    pub patterns: usize,
    /// Statements appended for the N-statements-dirty phase.
    pub dirty_stmt_count: usize,
    /// Empty cache, every file fresh (region mode).
    pub cold: PhaseTiming,
    /// Fully warmed cache, unchanged corpus (region mode).
    pub warm: PhaseTiming,
    /// Warmed cache, one statement appended to one file (region mode).
    pub dirty_line: PhaseTiming,
    /// Warmed cache, `dirty_stmt_count` statements appended across several
    /// files (region mode).
    pub dirty_stmts: PhaseTiming,
    /// Warmed *file-granular* cache, the same one-statement edit as
    /// `dirty_line` — the pre-§14 baseline statement splicing is measured
    /// against.
    pub granular_line: PhaseTiming,
    /// From-scratch process + scan of the one-statement-edit corpus.
    pub full_rescan: PhaseTiming,
    /// `cold.secs / warm.secs`.
    pub warm_speedup: f64,
    /// `full_rescan.secs / dirty_line.secs`.
    pub dirty_speedup: f64,
    /// `granular_line.secs / dirty_line.secs` — the headline number:
    /// statement splicing vs whole-file re-matching for a one-statement
    /// edit (acceptance: ≥ 5 at the default scale).
    pub region_speedup: f64,
    /// Every phase matched its full-scan reference bit for bit.
    pub identical: bool,
}

/// Everything observable about a scan, bitwise.
fn key(scan: &ScanResult) -> Vec<(String, Vec<u64>)> {
    scan.violations
        .iter()
        .map(|v| {
            (
                v.to_string(),
                v.features.iter().map(|f| f.to_bits()).collect(),
            )
        })
        .collect()
}

/// Appends one new statement to `file` — the single-statement edit of the
/// dirty phases. The probe names are salted so the statement's name paths
/// (and therefore its region key, DESIGN.md §14) are new to the cache.
fn dirty_stmt(file: &mut SourceFile, salt: usize) {
    let stmt = if file.lang == Lang::Python {
        format!("bench_probe_{salt} = probe_value_{salt}\n")
    } else if file.lang == Lang::Java {
        format!("class BenchProbe{salt} {{\n    private String benchProbe{salt};\n}}\n")
    } else {
        format!("const benchProbe{salt} = probeValue{salt};\n")
    };
    file.text.push_str(&stmt);
}

/// Times a from-scratch process + scan of `files`. Seconds are the sum of
/// the collector's process, scan, and assembly phase walls — the same
/// clocks the incremental phases report, so the speedup ratios compare like
/// with like.
fn time_full(
    det: &Detector,
    files: &[SourceFile],
    config: &ProcessConfig,
    threads: usize,
) -> (f64, ScanResult) {
    let metrics = PipelineMetrics::new();
    let obs = metrics.observer();
    let processed = process_parallel_observed(files, config, threads, obs);
    let scan = det.scan(ScanRequest::full(&processed).threads(threads).observer(obs));
    let snap = metrics.snapshot();
    let secs = snap.phase_secs(Phase::Process)
        + snap.phase_secs(Phase::Scan)
        + snap.phase_secs(Phase::Assemble);
    (secs, scan)
}

/// Times one incremental phase, best of `reps`. Each rep starts from a
/// clone of `cache` (a scan warms the cache it runs against, so re-running
/// on the same instance would time a different phase); results and the
/// updated cache come from the first rep — the scan is deterministic, so
/// every rep produces the same bytes. Seconds are the cache lookup +
/// fresh-file processing + scan + assembly phase walls: every phase the
/// incremental path actually runs.
fn run_phase(
    det: &Detector,
    files: &[SourceFile],
    config: &ProcessConfig,
    threads: usize,
    cache: &ScanCache,
    regions: bool,
    reps: usize,
) -> (PhaseTiming, ScanResult, ScanCache) {
    let mut best: Option<PhaseTiming> = None;
    let mut out: Option<(ScanResult, ScanCache)> = None;
    for _ in 0..reps.max(1) {
        let mut c = cache.clone();
        let metrics = PipelineMetrics::new();
        let mut req = ScanRequest::incremental(files, config, &mut c)
            .threads(threads)
            .observer(metrics.observer());
        if !regions {
            req = req.file_granular();
        }
        let scan = det.scan(req);
        let snap = metrics.snapshot();
        let secs = snap.phase_secs(Phase::CacheLookup)
            + snap.phase_secs(Phase::Process)
            + snap.phase_secs(Phase::Scan)
            + snap.phase_secs(Phase::Assemble);
        let stats = scan.cache.unwrap_or_default();
        let timing = PhaseTiming {
            secs,
            reused: stats.reused,
            fresh: stats.fresh,
            stmt_hits: snap.counter(Counter::StmtCacheHits),
            stmt_misses: snap.counter(Counter::StmtCacheMisses),
            violations: scan.violations.len(),
        };
        if best.map_or(true, |b| timing.secs < b.secs) {
            best = Some(timing);
        }
        if out.is_none() {
            out = Some((scan, c));
        }
    }
    let (scan, cache) = out.expect("at least one rep");
    (best.expect("at least one rep"), scan, cache)
}

/// Generates one corpus, mines and inflates a detector, and times the
/// cold / warm / 1-line-dirty / N-statements-dirty region-mode phases
/// against the file-granular and full-scan baselines.
pub fn measure_incremental(lang: Lang, scale: Scale, seed: u64, threads: usize) -> IncrementalBench {
    let Setup {
        corpus, commits, ..
    } = setup(lang, scale, seed);
    let config = namer_config(scale);
    let process_config = config.process;

    let processed = process_parallel(&corpus.files, &process_config, threads);
    let stmts = processed.stmt_count();
    let mining = MiningConfig {
        threads,
        ..config.mining.clone()
    };
    let base = Detector::mine(&processed, &commits, lang, &mining);
    let base_patterns = base.pattern_count();
    // Small corpora mine small pattern sets; inflate so matching — the work
    // splicing saves — dominates the fixed parse/process cost of a dirty
    // file. Quick runs keep a lighter factor.
    let inflation = match scale {
        Scale::Small => 6,
        _ => 12,
    };
    let det = inflate(&base, inflation);
    let fingerprint = det.fingerprint(&process_config, &ShardPlan::unsharded());

    // Baseline: a full scan of the pristine corpus.
    let (_, full_base) = time_full(&det, &corpus.files, &process_config, threads);

    // Cold (timed, single shot — it is the expensive phase) then warm.
    let empty = ScanCache::empty(fingerprint);
    let (cold, cold_scan, region_cache) = run_phase(
        &det,
        &corpus.files,
        &process_config,
        threads,
        &empty,
        true,
        1,
    );
    let reps = 3;
    let (warm, warm_scan, _) = run_phase(
        &det,
        &corpus.files,
        &process_config,
        threads,
        &region_cache,
        true,
        reps,
    );
    // An equally-warm file-granular cache for the baseline phase (untimed
    // warm-up; file-granular caches carry no regions to splice from).
    let (_, _, granular_cache) = run_phase(
        &det,
        &corpus.files,
        &process_config,
        threads,
        &empty,
        false,
        1,
    );

    // One statement appended to one file: the editor-keystroke workload.
    let n = corpus.files.len();
    let mut line_corpus = corpus.files.clone();
    dirty_stmt(&mut line_corpus[0], 0);

    // Several statements spread across the corpus: the rebase workload.
    let dirty_stmt_count = 8.min(n.max(1));
    let mut stmts_corpus = corpus.files.clone();
    for k in 0..dirty_stmt_count {
        let idx = (1 + k * n.saturating_sub(1) / dirty_stmt_count).min(n - 1);
        dirty_stmt(&mut stmts_corpus[idx], k + 1);
    }

    let (full_secs, full_line) = time_full(&det, &line_corpus, &process_config, threads);
    let (_, full_stmts) = time_full(&det, &stmts_corpus, &process_config, threads);

    let (dirty_line, line_scan, _) = run_phase(
        &det,
        &line_corpus,
        &process_config,
        threads,
        &region_cache,
        true,
        reps,
    );
    let (dirty_stmts, stmts_scan, _) = run_phase(
        &det,
        &stmts_corpus,
        &process_config,
        threads,
        &region_cache,
        true,
        reps,
    );
    let (granular_line, granular_scan, _) = run_phase(
        &det,
        &line_corpus,
        &process_config,
        threads,
        &granular_cache,
        false,
        reps,
    );

    let identical = key(&cold_scan) == key(&full_base)
        && key(&warm_scan) == key(&full_base)
        && key(&line_scan) == key(&full_line)
        && key(&stmts_scan) == key(&full_stmts)
        && key(&granular_scan) == key(&full_line);

    let full_rescan = PhaseTiming {
        secs: full_secs,
        reused: 0,
        fresh: n,
        stmt_hits: 0,
        stmt_misses: 0,
        violations: full_line.violations.len(),
    };
    IncrementalBench {
        lang: lang.to_string(),
        files: n,
        stmts,
        threads,
        base_patterns,
        patterns: det.pattern_count(),
        dirty_stmt_count,
        cold,
        warm,
        dirty_line,
        dirty_stmts,
        granular_line,
        full_rescan,
        warm_speedup: cold.secs / warm.secs.max(1e-9),
        dirty_speedup: full_rescan.secs / dirty_line.secs.max(1e-9),
        region_speedup: granular_line.secs / dirty_line.secs.max(1e-9),
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_covers_all_phases_and_stays_identical() {
        let bench = measure_incremental(Lang::Python, Scale::Small, 7, 1);
        assert!(bench.identical, "incremental diverged from full scan");
        assert_eq!(bench.cold.fresh, bench.files);
        // A cold scan matches fresh statements; repeated idioms may still
        // splice within the scan (identical path sets dedup to one region).
        assert!(bench.cold.stmt_misses > 0);
        assert_eq!(bench.warm.fresh, 0);
        assert_eq!(bench.warm.reused, bench.files);
        // One file touched; its unchanged statements splice, the appended
        // probe statement re-matches.
        assert_eq!(bench.dirty_line.fresh, 1);
        assert!(bench.dirty_line.stmt_hits > 0, "no statements spliced");
        assert!(bench.dirty_line.stmt_misses >= 1);
        assert!(bench.dirty_stmts.fresh >= 1);
        assert!(bench.dirty_stmts.stmt_hits > 0);
        // The baseline runs file-granular: no region traffic at all.
        assert_eq!(bench.granular_line.fresh, 1);
        assert_eq!(bench.granular_line.stmt_hits, 0);
        assert_eq!(bench.granular_line.stmt_misses, 0);
        assert!(bench.patterns > bench.base_patterns);
        assert!(bench.warm_speedup > 0.0);
        assert!(bench.dirty_speedup > 0.0);
        assert!(bench.region_speedup > 0.0);
    }
}
