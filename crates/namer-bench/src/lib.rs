//! Shared experiment harness for regenerating the paper's tables & figures.
//!
//! Every binary in `src/bin/` reproduces one table or figure of
//! *“Learning to Find Naming Issues with Big Code and Small Supervision”*
//! (see `DESIGN.md` for the experiment index). This library holds the
//! common machinery: corpus setup, report inspection against the oracle,
//! sampling, and table rendering.

pub mod incremental;
pub mod registry;
pub mod shard;
pub mod throughput;

use namer_core::{Namer, NamerBuilder, NamerConfig, Report, Violation};
use namer_corpus::{Corpus, CorpusConfig, Generator, IssueCategory, Oracle, Severity};
use namer_patterns::MiningConfig;
use namer_syntax::Lang;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Corpus scale selector (`--small` / `--large` on any experiment binary).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// ~100 files; seconds.
    Small,
    /// ~600 files; the default experiment scale.
    Medium,
    /// ~2000 files; for benchmark sweeps.
    Large,
}

impl Scale {
    /// Reads the scale from process arguments (`--small` / `--large`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--small") {
            Scale::Small
        } else if args.iter().any(|a| a == "--large") {
            Scale::Large
        } else {
            Scale::Medium
        }
    }

    /// The corpus configuration at this scale.
    pub fn corpus_config(self, lang: Lang) -> CorpusConfig {
        match self {
            Scale::Small => CorpusConfig::small(lang),
            Scale::Medium => CorpusConfig::medium(lang),
            Scale::Large => CorpusConfig::large(lang),
        }
    }
}

/// Generated corpus plus its ground truth, ready for experiments.
pub struct Setup {
    /// The synthetic Big Code corpus.
    pub corpus: Corpus,
    /// The inspection oracle.
    pub oracle: Oracle,
    /// Commit history as (before, after) text pairs.
    pub commits: Vec<(String, String)>,
}

/// Generates the experiment corpus for a language.
pub fn setup(lang: Lang, scale: Scale, seed: u64) -> Setup {
    let corpus = Generator::new(scale.corpus_config(lang)).generate(seed);
    let oracle = corpus.oracle();
    let commits = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    Setup {
        corpus,
        oracle,
        commits,
    }
}

/// The Namer configuration used across experiments, scaled to the corpus.
pub fn namer_config(scale: Scale) -> NamerConfig {
    let min_support = match scale {
        Scale::Small => 15,
        Scale::Medium => 40,
        Scale::Large => 80,
    };
    NamerConfig {
        mining: MiningConfig {
            min_path_count: match scale {
                Scale::Small => 4,
                _ => 10,
            },
            min_support,
            ..MiningConfig::default()
        },
        labeled_per_class: match scale {
            Scale::Small => 15,
            _ => 30,
        },
        ..NamerConfig::default()
    }
}

/// Oracle-backed labeler for classifier training.
pub fn labeler<'a>(oracle: &'a Oracle) -> impl Fn(&Violation) -> bool + 'a {
    move |v: &Violation| label_of(oracle, v).is_some()
}

/// Oracle category of a violation, `None` = false positive.
pub fn label_of(oracle: &Oracle, v: &Violation) -> Option<IssueCategory> {
    oracle.label(
        &v.repo,
        &v.path,
        v.line,
        v.original.as_str(),
        v.suggested.as_str(),
    )
}

/// The inspection outcome of a set of reports (one table row).
#[derive(Clone, Copy, Debug, Default)]
pub struct Inspection {
    /// Total reports inspected.
    pub reports: usize,
    /// Reports that are semantic defects.
    pub semantic: usize,
    /// Reports that are code-quality issues.
    pub quality: usize,
    /// False positives.
    pub false_positives: usize,
}

impl Inspection {
    /// (semantic + quality) / reports.
    pub fn precision(&self) -> f64 {
        if self.reports == 0 {
            0.0
        } else {
            (self.semantic + self.quality) as f64 / self.reports as f64
        }
    }
}

/// Inspects reports against the oracle (the stand-in for the paper's manual
/// inspection).
pub fn inspect(reports: &[&Report], oracle: &Oracle) -> Inspection {
    let mut out = Inspection {
        reports: reports.len(),
        ..Inspection::default()
    };
    for r in reports {
        match label_of(oracle, &r.violation) {
            Some(cat) => match cat.severity() {
                Severity::SemanticDefect => out.semantic += 1,
                Severity::CodeQuality => out.quality += 1,
            },
            None => out.false_positives += 1,
        }
    }
    out
}

/// Randomly samples up to `n` violations (the paper's "randomly selected 300
/// violations"), excluding any violation used to train the classifier.
pub fn sample_violations<'a>(
    violations: &'a [Violation],
    training: &[Violation],
    n: usize,
    seed: u64,
) -> Vec<&'a Violation> {
    let is_training = |v: &Violation| {
        training.iter().any(|t| {
            t.repo == v.repo
                && t.path == v.path
                && t.line == v.line
                && t.pattern_idx == v.pattern_idx
        })
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut eligible: Vec<&Violation> = violations.iter().filter(|v| !is_training(v)).collect();
    eligible.shuffle(&mut rng);
    eligible.truncate(n);
    eligible
}

/// Classifies sampled violations with a trained system, producing reports.
pub fn classify_sample(namer: &Namer, sample: &[&Violation]) -> Vec<Report> {
    sample
        .iter()
        .filter(|v| namer.classify(v))
        .map(|v| Report {
            violation: (*v).clone(),
            decision: 0.0,
        })
        .collect()
}

/// Renders an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Percentage formatting.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspection_precision() {
        let i = Inspection {
            reports: 10,
            semantic: 2,
            quality: 5,
            false_positives: 3,
        };
        assert!((i.precision() - 0.7).abs() < 1e-12);
        assert_eq!(Inspection::default().precision(), 0.0);
    }

    #[test]
    fn scale_configs_grow() {
        let s = Scale::Small.corpus_config(Lang::Python);
        let l = Scale::Large.corpus_config(Lang::Python);
        assert!(l.repos > s.repos);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.7), "70%");
    }
}

/// One ablation row of Tables 2 / 5.
pub struct AblationRow {
    /// Row label ("Namer", "w/o C", …).
    pub name: &'static str,
    /// Inspection outcome.
    pub inspection: Inspection,
}

/// Runs the Table 2 / Table 5 ablation: Namer, w/o C, w/o A, w/o C & A.
///
/// Violations are sampled (`sample_n`, the paper uses 300) excluding the
/// classifier's training set, and inspected against the oracle.
pub fn ablation_table(lang: Lang, scale: Scale, seed: u64, sample_n: usize) -> Vec<AblationRow> {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(lang, scale, seed);
    let mut rows = Vec::new();
    for use_analysis in [true, false] {
        let mut config = namer_config(scale);
        config.process.use_analysis = use_analysis;
        let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
        let processed = namer_core::process(&corpus.files, &config.process);
        let session = NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("trained source builds");
        let scan = session.run_processed(&processed).scan;
        let namer = session.namer();
        let sample = sample_violations(&scan.violations, &namer.training_set, sample_n, seed ^ 0xab);
        let with_c = classify_sample(namer, &sample);
        let refs: Vec<&Report> = with_c.iter().collect();
        let without_c: Vec<Report> = sample
            .iter()
            .map(|v| Report {
                violation: (*v).clone(),
                decision: 0.0,
            })
            .collect();
        let refs_wo: Vec<&Report> = without_c.iter().collect();
        match use_analysis {
            true => {
                rows.push(AblationRow {
                    name: "Namer",
                    inspection: inspect(&refs, &oracle),
                });
                rows.push(AblationRow {
                    name: "w/o C",
                    inspection: inspect(&refs_wo, &oracle),
                });
            }
            false => {
                rows.push(AblationRow {
                    name: "w/o A",
                    inspection: inspect(&refs, &oracle),
                });
                rows.push(AblationRow {
                    name: "w/o C & A",
                    inspection: inspect(&refs_wo, &oracle),
                });
            }
        }
    }
    // Paper row order: Namer, w/o C, w/o A, w/o C & A.
    rows
}

/// Prints an ablation table in the paper's format.
pub fn print_ablation(title: &str, rows: &[AblationRow]) {
    print_table(
        title,
        &[
            "Baseline",
            "Report",
            "Semantic defect",
            "Code quality issue",
            "False positive",
            "Precision",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_owned(),
                    r.inspection.reports.to_string(),
                    r.inspection.semantic.to_string(),
                    r.inspection.quality.to_string(),
                    r.inspection.false_positives.to_string(),
                    pct(r.inspection.precision()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
