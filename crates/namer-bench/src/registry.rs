//! Model-registry behaviour under a memory budget, behind the
//! `bench_registry` binary (`BENCH_registry.json`).
//!
//! Serving many models from one process is the multi-corpus deployment the
//! paper's §5 pipeline implies (one model per language/organisation). This
//! harness writes a directory of distinct binary models, opens a
//! [`ModelRegistry`](namer_core::ModelRegistry) whose budget holds only a
//! fraction of them, replays a deterministic skewed request stream, and
//! reports hit/miss/eviction rates plus request throughput — the numbers
//! that tell you whether a budget is sized sanely for a workload.

use namer_core::{ModelRegistry, SavedModel};
use namer_ml::ModelKind;
use namer_patterns::ConfusingPairs;
use namer_syntax::{Lang, Sym};
use serde::Serialize;
use std::time::Instant;

/// The benchmark report serialised to `BENCH_registry.json`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RegistryBench {
    /// Models in the catalog.
    pub models: usize,
    /// Resident-byte budget the registry ran under.
    pub budget_bytes: usize,
    /// Summed encoded size of every model file.
    pub catalog_bytes: usize,
    /// Requests replayed.
    pub requests: usize,
    /// Requests served from a resident model.
    pub hits: u64,
    /// Requests that loaded from disk.
    pub misses: u64,
    /// Evictions performed to stay under budget.
    pub evictions: u64,
    /// `hits / requests`.
    pub hit_rate: f64,
    /// `evictions / requests`.
    pub evict_rate: f64,
    /// Models resident when the stream ended.
    pub resident_models: usize,
    /// Resident bytes when the stream ended.
    pub resident_bytes: usize,
    /// Wall-clock for the whole request stream, seconds.
    pub secs: f64,
    /// Requests per second.
    pub requests_per_sec: f64,
}

/// A small model whose pair table varies with `salt`, so every catalog
/// entry has distinct content (and therefore a distinct digest).
fn salted_model(salt: usize) -> SavedModel {
    let mut pairs = ConfusingPairs::new();
    for i in 0..8 {
        pairs.insert(
            Sym::intern(&format!("mistaken_{salt}_{i}")),
            Sym::intern(&format!("correct_{salt}_{i}")),
        );
    }
    SavedModel {
        version: namer_core::persist::FORMAT_VERSION,
        lang: Lang::Python,
        use_analysis: true,
        patterns: Vec::new(),
        dataset: Vec::new(),
        pairs,
        classifier: None,
        model_kind: ModelKind::SvmLinear,
    }
}

/// Writes `models` distinct binary models, opens a registry whose budget
/// holds roughly `budget_fraction` of the catalog, and replays `requests`
/// deterministic skewed lookups (a hot third of the catalog takes most of
/// the traffic, the tail cycles — the usual many-tenants shape).
///
/// # Panics
///
/// Panics when `models` is zero or the temp directory cannot be written.
pub fn measure_registry(models: usize, budget_fraction: f64, requests: usize) -> RegistryBench {
    assert!(models > 0, "need at least one model");
    let dir = std::env::temp_dir().join(format!("namer-bench-registry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut catalog_bytes = 0usize;
    for i in 0..models {
        let path = dir.join(format!("model-{i:03}.bin"));
        salted_model(i).save(&path).expect("write model");
        catalog_bytes += std::fs::metadata(&path).expect("stat").len() as usize;
    }
    let budget_bytes = ((catalog_bytes as f64 * budget_fraction) as usize).max(1);
    let registry = ModelRegistry::open(&dir, budget_bytes).expect("open registry");

    // Deterministic skew without an RNG: even ticks hammer the hot third,
    // odd ticks walk the whole catalog round-robin.
    let hot = (models / 3).max(1);
    let t = Instant::now();
    for tick in 0..requests {
        let idx = if tick % 2 == 0 {
            (tick / 2) % hot
        } else {
            (tick * 7 + 3) % models
        };
        let name = format!("model-{idx:03}");
        registry.get(&name).expect("cataloged model loads");
    }
    let secs = t.elapsed().as_secs_f64();
    let stats = registry.stats();
    std::fs::remove_dir_all(&dir).ok();

    RegistryBench {
        models,
        budget_bytes,
        catalog_bytes,
        requests,
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
        hit_rate: stats.hits as f64 / (requests as f64).max(1.0),
        evict_rate: stats.evictions as f64 / (requests as f64).max(1.0),
        resident_models: stats.resident_models,
        resident_bytes: stats.resident_bytes,
        secs,
        requests_per_sec: requests as f64 / secs.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_budget_evicts_and_still_serves() {
        let bench = measure_registry(6, 0.4, 60);
        assert_eq!(bench.models, 6);
        assert_eq!(bench.requests, 60);
        assert_eq!(bench.hits + bench.misses, 60);
        assert!(bench.evictions > 0, "a 40% budget must evict");
        assert!(bench.hits > 0, "the hot set must hit");
        assert!(bench.resident_models >= 1);
        assert!(bench.resident_bytes <= bench.budget_bytes, "stays under budget");
    }

    #[test]
    fn full_budget_never_evicts() {
        let bench = measure_registry(4, 1.0, 40);
        assert_eq!(bench.evictions, 0);
        assert_eq!(bench.misses, 4, "each model loads exactly once");
        assert_eq!(bench.hits, 36);
    }
}
