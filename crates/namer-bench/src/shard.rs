//! Pattern-axis sharding benchmark behind the `bench_shard` binary
//! (`BENCH_shard.json`): scan wall-clock versus shard count at one file
//! thread, so the curve isolates the pattern axis (DESIGN.md §9).
//!
//! Mined pattern sets on the synthetic corpus are small, so the benchmark
//! inflates the set with never-matching clone variants: each clone keeps its
//! base pattern's deduction (so the candidate walk visits it exactly as
//! often) and appends one extra condition whose prefix the statement has but
//! whose end no statement carries — `quick_match` walks every real key
//! first, then rejects on the last one. That reproduces the shape of a
//! big-code-scale set (the paper mines hundreds of thousands of patterns)
//! where per-statement match cost, not file count, dominates.
//!
//! Every sharded scan is compared bit for bit against the unsharded
//! reference — the benchmark doubles as an end-to-end check of the
//! byte-identical guarantee, and the binary exits non-zero when it fails.

use crate::{namer_config, setup, Scale, Setup};
use namer_core::{process_parallel, Detector, DetectorSpec, ScanRequest, ScanResult};
use namer_observe::{MetricsSnapshot, Phase, PipelineMetrics};
use namer_patterns::{resolve_threads, MiningConfig, ShardPlan};
use namer_syntax::namepath::NamePath;
use namer_syntax::{Lang, Sym};
use serde::Serialize;

/// One point on the shard-count scaling curve.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ShardPoint {
    /// Pattern shards used.
    pub shards: usize,
    /// Best-of-`reps` scan wall-clock, seconds.
    pub secs: f64,
    /// `unsharded_secs / secs`.
    pub speedup: f64,
}

/// The benchmark report serialised to `BENCH_shard.json`.
#[derive(Clone, Debug, Serialize)]
pub struct ShardBench {
    /// Corpus language.
    pub lang: String,
    /// Files in the corpus.
    pub files: usize,
    /// Statements in the corpus.
    pub stmts: usize,
    /// Patterns actually mined from the corpus.
    pub base_patterns: usize,
    /// Pattern-set size after inflation (what every scan runs against).
    pub patterns: usize,
    /// File-axis worker threads (always 1 — the curve isolates shards).
    pub file_threads: usize,
    /// Timing repetitions per point (best is kept).
    pub reps: usize,
    /// Unsharded reference scan, seconds.
    pub unsharded_secs: f64,
    /// The scaling curve.
    pub points: Vec<ShardPoint>,
    /// Speedup at 4 shards (the acceptance number), 0 when 4 was not run.
    pub speedup_at_4: f64,
    /// Per-shard pattern weight at 4 shards (balance diagnostics).
    pub loads: Vec<u64>,
    /// Measured per-shard busy nanoseconds at 4 shards, from the pipeline's
    /// own collector (empty when 4 was not run or the plan fell back to the
    /// unsharded scan; scheduling-dependent, unlike `loads`).
    pub busy_at_4: Vec<u64>,
    /// Max/mean busy ratio across shards at 4 shards (`1.0` = perfectly
    /// balanced, `0.0` when no shard data was recorded).
    pub imbalance_at_4: f64,
    /// Every sharded scan matched the unsharded reference bit for bit.
    pub identical: bool,
}

/// Everything observable about a scan, bitwise.
fn key(scan: &ScanResult) -> Vec<(String, Vec<u64>)> {
    scan.violations
        .iter()
        .map(|v| {
            (
                v.to_string(),
                v.features.iter().map(|f| f.to_bits()).collect(),
            )
        })
        .collect()
}

/// Inflates a mined detector with `factor` never-matching clone variants of
/// every pattern. Clones are appended after the base set, so base pattern
/// indices — and therefore all scan output — are unchanged. Shared with
/// `bench_incremental`, which needs the same match-cost-dominated regime to
/// measure statement splicing (DESIGN.md §14).
pub fn inflate(det: &Detector, factor: usize) -> Detector {
    let base = &det.patterns.patterns;
    let mut patterns = base.clone();
    let mut dataset = det.dataset_counts_all().to_vec();
    for v in 0..factor {
        let never = Sym::intern(&format!("__bench_never_{v}"));
        for (j, p) in base.iter().enumerate() {
            let mut clone = p.clone();
            // Appended last: the matcher pays for every real condition key
            // before this one rejects the candidate.
            clone
                .condition
                .push(NamePath::concrete(clone.deduction[0].prefix.clone(), never));
            patterns.push(clone);
            dataset.push(det.dataset_counts(j));
        }
    }
    DetectorSpec::new(patterns, det.pairs.clone(), dataset).build()
}

/// Generates one corpus, mines and inflates a detector, and times the scan
/// at one file thread across `shard_counts`, against the unsharded
/// reference.
pub fn measure_shard(
    lang: Lang,
    scale: Scale,
    seed: u64,
    inflation: usize,
    shard_counts: &[usize],
    reps: usize,
) -> ShardBench {
    let Setup {
        corpus, commits, ..
    } = setup(lang, scale, seed);
    let config = namer_config(scale);
    // Preprocessing and mining are not what this benchmark measures: run
    // them on all cores.
    let threads = resolve_threads(0);
    let processed = process_parallel(&corpus.files, &config.process, threads);
    let mining = MiningConfig {
        threads,
        ..config.mining.clone()
    };
    let base = Detector::mine(&processed, &commits, lang, &mining);
    let base_patterns = base.pattern_count();
    let det = inflate(&base, inflation);

    let reps = reps.max(1);
    // Timed through the pipeline's own collector: seconds are the scan +
    // assembly phase walls of the best rep, and the best rep's snapshot
    // carries the per-shard busy split.
    let time = |plan: &ShardPlan| -> (f64, ScanResult, MetricsSnapshot) {
        let mut best = f64::INFINITY;
        let mut best_snap = None;
        let mut scan = None;
        for _ in 0..reps {
            let metrics = PipelineMetrics::new();
            let s = det.scan(
                ScanRequest::full(&processed)
                    .plan(*plan)
                    .observer(metrics.observer()),
            );
            let snap = metrics.snapshot();
            let secs = snap.phase_secs(Phase::Scan) + snap.phase_secs(Phase::Assemble);
            if secs < best {
                best = secs;
                best_snap = Some(snap);
            }
            scan = Some(s);
        }
        (
            best,
            scan.expect("at least one rep"),
            best_snap.expect("at least one rep"),
        )
    };

    let (unsharded_secs, reference, _) = time(&ShardPlan::unsharded());
    let reference_key = key(&reference);

    let mut identical = true;
    let mut points = Vec::new();
    let mut busy_at_4 = Vec::new();
    let mut imbalance_at_4 = 0.0;
    for &shards in shard_counts {
        let plan = ShardPlan {
            shards,
            min_patterns: 0,
        };
        let (secs, scan, snap) = time(&plan);
        identical &= key(&scan) == reference_key;
        if shards == 4 {
            busy_at_4 = snap.shard_busy_nanos;
            imbalance_at_4 = snap.shard_imbalance;
        }
        points.push(ShardPoint {
            shards,
            secs,
            speedup: unsharded_secs / secs.max(1e-9),
        });
    }
    let speedup_at_4 = points
        .iter()
        .find(|p| p.shards == 4)
        .map(|p| p.speedup)
        .unwrap_or(0.0);
    let loads = det
        .patterns
        .shard(&ShardPlan {
            shards: 4,
            min_patterns: 0,
        })
        .loads()
        .to_vec();

    ShardBench {
        lang: lang.to_string(),
        files: corpus.files.len(),
        stmts: processed.stmt_count(),
        base_patterns,
        patterns: det.pattern_count(),
        file_threads: 1,
        reps,
        unsharded_secs,
        points,
        speedup_at_4,
        loads,
        busy_at_4,
        imbalance_at_4,
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflated_sharded_scans_stay_identical() {
        let bench = measure_shard(Lang::Python, Scale::Small, 7, 3, &[2, 4], 1);
        assert!(bench.identical, "sharded scan diverged from unsharded");
        assert_eq!(bench.patterns, bench.base_patterns * 4);
        assert_eq!(bench.points.len(), 2);
        assert!(bench.unsharded_secs > 0.0);
        // Shard count clamps to the number of prefix groups.
        assert!((1..=4).contains(&bench.loads.len()));
        assert!(bench.points.iter().all(|p| p.secs > 0.0));
        assert!(bench.speedup_at_4 > 0.0);
        // Busy split comes from the collector; it only exists when the
        // 4-shard plan actually sharded (more than one prefix group).
        if bench.loads.len() > 1 {
            assert_eq!(bench.busy_at_4.len(), bench.loads.len());
            assert!(bench.imbalance_at_4 >= 1.0);
        }
    }

    #[test]
    fn inflation_never_changes_scan_results() {
        let Setup {
            corpus, commits, ..
        } = setup(Lang::Python, Scale::Small, 9);
        let config = namer_config(Scale::Small);
        let processed = process_parallel(&corpus.files, &config.process, 2);
        let base = Detector::mine(&processed, &commits, Lang::Python, &config.mining);
        let inflated = inflate(&base, 4);
        assert_eq!(
            key(&base.scan(ScanRequest::full(&processed))),
            key(&inflated.scan(ScanRequest::full(&processed))),
            "never-matching clones leaked into results"
        );
    }
}
