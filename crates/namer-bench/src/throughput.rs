//! End-to-end pipeline throughput measurement behind the `bench_pipeline`
//! binary (`BENCH_pipeline.json`): wall-clock and statements/second for the
//! process → mine → scan stages at each requested thread count.
//!
//! Unlike the criterion micro-benchmarks under `benches/`, this measures the
//! whole pipeline once per thread count on one shared corpus, which is how
//! the paper reports §5.1 runtimes (total hours on a 32-core machine). Stage
//! timings come from the pipeline's own [`PipelineMetrics`] collector — the
//! same per-phase wall clocks `--metrics-out` reports — rather than private
//! stopwatches, so the benchmark and the CLI can never drift apart on what
//! a "stage" covers. The [`measure_overhead`] check times the scan with and
//! without a live collector to police DESIGN.md §10's ≤ 2 % budget.

use crate::{labeler, namer_config, setup, Scale, Setup};
use namer_core::{process_parallel_observed, Detector, Namer, SavedModel, ScanRequest};
use namer_observe::{Observer, Phase, PipelineMetrics};
use namer_patterns::{resolve_threads, MiningConfig, ShardPlan};
use namer_syntax::Lang;
use serde::Serialize;
use std::time::Instant;

/// Wall-clock and throughput of one pipeline stage.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StageTiming {
    /// Elapsed seconds.
    pub secs: f64,
    /// Corpus statements divided by elapsed seconds.
    pub stmts_per_sec: f64,
}

impl StageTiming {
    fn new(secs: f64, stmts: usize) -> StageTiming {
        StageTiming {
            secs,
            // Clamp so a sub-resolution stage can't produce a non-finite
            // rate (serde_json writes those as null).
            stmts_per_sec: stmts as f64 / secs.max(1e-9),
        }
    }
}

/// One full pipeline run at a fixed thread count.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PipelineRun {
    /// Worker threads used (already resolved; never 0).
    pub threads: usize,
    /// Preprocessing: parse → analyse → name paths.
    pub process: StageTiming,
    /// Pattern mining (FP-growth + pruneUncommon).
    pub mine: StageTiming,
    /// Corpus scan (violations + features + assembly).
    pub scan: StageTiming,
    /// Patterns mined — must be identical across runs.
    pub patterns: usize,
    /// Violations found — must be identical across runs.
    pub violations: usize,
}

/// Live-collector cost of the observability layer: the same scan timed with
/// an inert [`Observer`] (the no-sink default every uninstrumented caller
/// gets) and with a [`PipelineMetrics`] collector attached. The arms are
/// interleaved rep by rep so thermal and cache drift hit both equally.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct OverheadCheck {
    /// Timing repetitions per arm (best is kept).
    pub reps: usize,
    /// Best scan wall-clock with the inert observer, seconds.
    pub unobserved_secs: f64,
    /// Best scan wall-clock with a live collector, seconds.
    pub observed_secs: f64,
    /// `(observed − unobserved) / unobserved × 100`; small negative values
    /// are timer noise. DESIGN.md §10 budgets ≤ 2 %.
    pub overhead_pct: f64,
}

/// Model (de)serialisation timings: legacy JSON versus the binary
/// container of DESIGN.md §12, measured on the same trained model.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ModelLoadBench {
    /// Encoded size of the JSON model, bytes.
    pub json_bytes: usize,
    /// Encoded size of the binary model, bytes.
    pub binary_bytes: usize,
    /// First read+decode of the JSON file after writing it, seconds.
    pub cold_json_secs: f64,
    /// First read+decode of the binary file after writing it, seconds.
    pub cold_binary_secs: f64,
    /// Best page-warm read+decode of the JSON file, seconds.
    pub warm_json_secs: f64,
    /// Best page-warm read+decode of the binary file, seconds.
    pub warm_binary_secs: f64,
    /// `warm_json_secs / warm_binary_secs` — the ISSUE's ≥ 5× target.
    pub warm_speedup: f64,
    /// Peak resident set (`VmHWM`) after the loads, bytes; `None` when the
    /// platform has no `/proc/self/status`.
    pub peak_rss_bytes: Option<u64>,
    /// Timing repetitions per format (first is the cold arm).
    pub reps: usize,
}

/// Peak resident set size of this process (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Trains one model at `scale`, writes it in both formats, and times
/// read+decode per format, `reps` times each (rep 0 is the cold arm —
/// freshly written file, decoder caches empty; later reps are page-warm).
/// Decoded models are checked equal across formats so the speedup can
/// never come from decoding less.
pub fn measure_model_load(lang: Lang, scale: Scale, seed: u64, reps: usize) -> ModelLoadBench {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(lang, scale, seed);
    let config = namer_config(scale);
    let namer = Namer::train(&corpus.files, &commits, labeler(&oracle), &config);
    let model = SavedModel::from_namer(&namer);

    let dir = std::env::temp_dir().join(format!("namer-bench-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("model.json");
    let bin_path = dir.join("model.bin");
    let json = model.to_json().expect("model serialises");
    std::fs::write(&json_path, &json).expect("write json model");
    model.save(&bin_path).expect("write binary model");
    let binary_bytes = std::fs::metadata(&bin_path).expect("stat").len() as usize;

    let reps = reps.max(2);
    let time_loads = |path: &std::path::Path| -> Vec<f64> {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let bytes = std::fs::read(path).expect("read model");
                let loaded = SavedModel::from_bytes(&bytes).expect("decode model");
                let secs = t.elapsed().as_secs_f64();
                assert_eq!(
                    loaded.patterns.len(),
                    model.patterns.len(),
                    "load changed the model"
                );
                secs
            })
            .collect()
    };
    let json_times = time_loads(&json_path);
    let bin_times = time_loads(&bin_path);
    std::fs::remove_dir_all(&dir).ok();

    let best_warm = |times: &[f64]| {
        times[1..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    };
    let warm_json_secs = best_warm(&json_times);
    let warm_binary_secs = best_warm(&bin_times);
    ModelLoadBench {
        json_bytes: json.len(),
        binary_bytes,
        cold_json_secs: json_times[0],
        cold_binary_secs: bin_times[0],
        warm_json_secs,
        warm_binary_secs,
        warm_speedup: warm_json_secs / warm_binary_secs.max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
        reps,
    }
}

/// The benchmark report serialised to `BENCH_pipeline.json`.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineBench {
    /// Corpus language.
    pub lang: String,
    /// Files in the corpus (after parse failures).
    pub files: usize,
    /// Statements in the corpus.
    pub stmts: usize,
    /// One entry per requested thread count, in request order.
    pub runs: Vec<PipelineRun>,
    /// Collector-overhead check; `None` when the sweep skipped it.
    pub overhead: Option<OverheadCheck>,
    /// JSON-vs-binary model load timings; `None` when the sweep skipped it.
    pub model_load: Option<ModelLoadBench>,
}

/// Generates one corpus and times process/mine/scan at each thread count
/// (`0` entries resolve to all available cores). Stage seconds are the
/// collector's per-phase wall clocks (scan = scan + assembly). Pattern and
/// violation counts are recorded so callers can assert thread-count
/// invariance.
pub fn measure(lang: Lang, scale: Scale, seed: u64, thread_counts: &[usize]) -> PipelineBench {
    let Setup {
        corpus, commits, ..
    } = setup(lang, scale, seed);
    let config = namer_config(scale);

    let mut out = PipelineBench {
        lang: lang.to_string(),
        files: 0,
        stmts: 0,
        runs: Vec::new(),
        overhead: None,
        model_load: None,
    };
    for &requested in thread_counts {
        let threads = resolve_threads(requested);
        let metrics = PipelineMetrics::new();
        let obs = metrics.observer();

        let processed = process_parallel_observed(&corpus.files, &config.process, threads, obs);
        let stmts = processed.stmt_count();
        out.files = processed.files.len();
        out.stmts = stmts;

        let mining = MiningConfig {
            threads,
            ..config.mining.clone()
        };
        let detector = Detector::mine_observed(&processed, &commits, lang, &mining, obs);

        let scan = detector.scan(ScanRequest::full(&processed).threads(threads).observer(obs));

        let snap = metrics.snapshot();
        out.runs.push(PipelineRun {
            threads,
            process: StageTiming::new(snap.phase_secs(Phase::Process), stmts),
            mine: StageTiming::new(snap.phase_secs(Phase::Mine), stmts),
            scan: StageTiming::new(
                snap.phase_secs(Phase::Scan) + snap.phase_secs(Phase::Assemble),
                stmts,
            ),
            patterns: detector.pattern_count(),
            violations: scan.violations.len(),
        });
    }
    out
}

/// Times the corpus scan with an inert observer versus a live
/// [`PipelineMetrics`] collector, interleaved best-of-`reps` per arm. One
/// file thread, unsharded, so the single-worker loop — where per-statement
/// instrumentation cost is least diluted — is what gets measured.
pub fn measure_overhead(lang: Lang, scale: Scale, seed: u64, reps: usize) -> OverheadCheck {
    let Setup {
        corpus, commits, ..
    } = setup(lang, scale, seed);
    let config = namer_config(scale);
    let threads = resolve_threads(0);
    let processed =
        process_parallel_observed(&corpus.files, &config.process, threads, Observer::none());
    let mining = MiningConfig {
        threads,
        ..config.mining.clone()
    };
    let det = Detector::mine(&processed, &commits, lang, &mining);

    let reps = reps.max(1);
    let plan = ShardPlan::unsharded();
    let mut unobserved = f64::INFINITY;
    let mut observed = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let base = det.scan(ScanRequest::full(&processed).plan(plan));
        unobserved = unobserved.min(t.elapsed().as_secs_f64());

        let metrics = PipelineMetrics::new();
        let t = Instant::now();
        let live = det.scan(
            ScanRequest::full(&processed)
                .plan(plan)
                .observer(metrics.observer()),
        );
        observed = observed.min(t.elapsed().as_secs_f64());
        assert_eq!(
            base.violations.len(),
            live.violations.len(),
            "observation changed scan results"
        );
    }
    OverheadCheck {
        reps,
        unobserved_secs: unobserved,
        observed_secs: observed,
        overhead_pct: (observed - unobserved) / unobserved.max(1e-9) * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_times_every_stage() {
        let bench = measure(Lang::Python, Scale::Small, 7, &[1, 2]);
        assert_eq!(bench.runs.len(), 2);
        assert!(bench.stmts > 0);
        assert!(bench.overhead.is_none());
        for run in &bench.runs {
            assert!(run.threads >= 1);
            assert!(run.process.stmts_per_sec > 0.0);
            assert!(run.mine.stmts_per_sec > 0.0);
            assert!(run.scan.stmts_per_sec > 0.0);
        }
        // Thread-count invariance of the results themselves.
        assert_eq!(bench.runs[0].patterns, bench.runs[1].patterns);
        assert_eq!(bench.runs[0].violations, bench.runs[1].violations);
    }

    #[test]
    fn model_load_times_both_formats() {
        let bench = measure_model_load(Lang::Python, Scale::Small, 7, 2);
        assert_eq!(bench.reps, 2);
        assert!(bench.json_bytes > 0 && bench.binary_bytes > 0);
        assert!(bench.cold_json_secs > 0.0 && bench.cold_binary_secs > 0.0);
        assert!(bench.warm_json_secs > 0.0 && bench.warm_binary_secs > 0.0);
        assert!(bench.warm_speedup.is_finite());
    }

    #[test]
    fn overhead_check_times_both_arms() {
        let check = measure_overhead(Lang::Python, Scale::Small, 7, 1);
        assert_eq!(check.reps, 1);
        assert!(check.unobserved_secs > 0.0);
        assert!(check.observed_secs > 0.0);
        assert!(check.overhead_pct.is_finite());
    }
}
