//! End-to-end pipeline throughput measurement behind the `bench_pipeline`
//! binary (`BENCH_pipeline.json`): wall-clock and statements/second for the
//! process → mine → scan stages at each requested thread count.
//!
//! Unlike the criterion micro-benchmarks under `benches/`, this measures the
//! whole pipeline once per thread count on one shared corpus, which is how
//! the paper reports §5.1 runtimes (total hours on a 32-core machine).

use crate::{namer_config, setup, Scale, Setup};
use namer_core::{process_parallel, Detector};
use namer_patterns::{resolve_threads, MiningConfig};
use namer_syntax::Lang;
use serde::Serialize;
use std::time::Instant;

/// Wall-clock and throughput of one pipeline stage.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StageTiming {
    /// Elapsed seconds.
    pub secs: f64,
    /// Corpus statements divided by elapsed seconds.
    pub stmts_per_sec: f64,
}

impl StageTiming {
    fn new(secs: f64, stmts: usize) -> StageTiming {
        StageTiming {
            secs,
            // Clamp so a sub-resolution stage can't produce a non-finite
            // rate (serde_json writes those as null).
            stmts_per_sec: stmts as f64 / secs.max(1e-9),
        }
    }
}

/// One full pipeline run at a fixed thread count.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PipelineRun {
    /// Worker threads used (already resolved; never 0).
    pub threads: usize,
    /// Preprocessing: parse → analyse → name paths.
    pub process: StageTiming,
    /// Pattern mining (FP-growth + pruneUncommon).
    pub mine: StageTiming,
    /// Corpus scan (violations + features).
    pub scan: StageTiming,
    /// Patterns mined — must be identical across runs.
    pub patterns: usize,
    /// Violations found — must be identical across runs.
    pub violations: usize,
}

/// The benchmark report serialised to `BENCH_pipeline.json`.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineBench {
    /// Corpus language.
    pub lang: String,
    /// Files in the corpus (after parse failures).
    pub files: usize,
    /// Statements in the corpus.
    pub stmts: usize,
    /// One entry per requested thread count, in request order.
    pub runs: Vec<PipelineRun>,
}

/// Generates one corpus and times process/mine/scan at each thread count
/// (`0` entries resolve to all available cores). Pattern and violation
/// counts are recorded so callers can assert thread-count invariance.
pub fn measure(lang: Lang, scale: Scale, seed: u64, thread_counts: &[usize]) -> PipelineBench {
    let Setup {
        corpus, commits, ..
    } = setup(lang, scale, seed);
    let config = namer_config(scale);

    let mut out = PipelineBench {
        lang: lang.to_string(),
        files: 0,
        stmts: 0,
        runs: Vec::new(),
    };
    for &requested in thread_counts {
        let threads = resolve_threads(requested);

        let t = Instant::now();
        let processed = process_parallel(&corpus.files, &config.process, threads);
        let process_secs = t.elapsed().as_secs_f64();
        let stmts = processed.stmt_count();
        out.files = processed.files.len();
        out.stmts = stmts;

        let mining = MiningConfig {
            threads,
            ..config.mining.clone()
        };
        let t = Instant::now();
        let detector = Detector::mine(&processed, &commits, lang, &mining);
        let mine_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let scan = detector.violations_with(&processed, threads);
        let scan_secs = t.elapsed().as_secs_f64();

        out.runs.push(PipelineRun {
            threads,
            process: StageTiming::new(process_secs, stmts),
            mine: StageTiming::new(mine_secs, stmts),
            scan: StageTiming::new(scan_secs, stmts),
            patterns: detector.pattern_count(),
            violations: scan.violations.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_times_every_stage() {
        let bench = measure(Lang::Python, Scale::Small, 7, &[1, 2]);
        assert_eq!(bench.runs.len(), 2);
        assert!(bench.stmts > 0);
        for run in &bench.runs {
            assert!(run.threads >= 1);
            assert!(run.process.stmts_per_sec > 0.0);
            assert!(run.mine.stmts_per_sec > 0.0);
            assert!(run.scan.stmts_per_sec > 0.0);
        }
        // Thread-count invariance of the results themselves.
        assert_eq!(bench.runs[0].patterns, bench.runs[1].patterns);
        assert_eq!(bench.runs[0].violations, bench.runs[1].violations);
    }
}
