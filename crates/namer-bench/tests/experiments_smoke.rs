//! Smoke tests for the experiment harness at small scale: every table's
//! machinery runs and reproduces its qualitative shape quickly.

use namer_bench::{ablation_table, labeler, namer_config, setup, Scale, Setup};
use namer_core::Namer;
use namer_syntax::Lang;

#[test]
fn ablation_table_shape_python() {
    let rows = ablation_table(Lang::Python, Scale::Small, 42, 300);
    assert_eq!(rows.len(), 4);
    let by_name = |n: &str| {
        rows.iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| panic!("row {n}"))
            .inspection
    };
    let namer = by_name("Namer");
    let wo_c = by_name("w/o C");
    let wo_both = by_name("w/o C & A");
    // The paper's core ordering claims.
    assert!(
        namer.precision() >= wo_c.precision(),
        "classifier must not hurt precision: {} vs {}",
        namer.precision(),
        wo_c.precision()
    );
    assert!(namer.reports <= wo_c.reports, "classifier filters reports");
    assert!(
        wo_c.reports >= wo_both.reports || wo_c.precision() >= wo_both.precision(),
        "full analyses dominate the no-analysis double-ablation"
    );
    // The system finds real issues at all.
    assert!(namer.semantic + namer.quality > 0);
}

#[test]
fn ablation_table_shape_java() {
    // Small Java corpora leave too few violations once the training set is
    // excluded; medium scale is still a ~7 s smoke test.
    let rows = ablation_table(Lang::Java, Scale::Medium, 43, 300);
    let namer = &rows[0].inspection;
    let wo_c = &rows[1].inspection;
    assert!(namer.precision() >= wo_c.precision());
    assert!(namer.semantic + namer.quality > 0, "{namer:?}");
    assert!(namer.reports <= wo_c.reports);
}

#[test]
fn trained_system_exposes_table9_weights() {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(Lang::Python, Scale::Small, 44);
    let namer = Namer::train(
        &corpus.files,
        &commits,
        labeler(&oracle),
        &namer_config(Scale::Small),
    );
    let weights = namer.feature_weights().expect("classifier trained");
    assert_eq!(weights.len(), namer_core::FEATURE_COUNT);
    // Table 9's qualitative claim: several features carry non-negligible
    // weight (the classifier is not a single-feature thresholder).
    let nontrivial = weights.iter().filter(|w| w.abs() > 0.05).count();
    assert!(nontrivial >= 5, "only {nontrivial} informative features");
}

#[test]
fn bench_pipeline_quick_emits_json() {
    let out = std::env::temp_dir().join(format!("bench_pipeline_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_bench_pipeline"))
        .args(["--quick", "--threads", "1,2", "--out"])
        .arg(&out)
        .status()
        .expect("bench_pipeline runs");
    assert!(status.success(), "bench_pipeline exited with {status}");
    let text = std::fs::read_to_string(&out).expect("JSON written");
    let _ = std::fs::remove_file(&out);
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let runs = json["runs"].as_array().expect("runs array");
    assert_eq!(runs.len(), 2);
    for run in runs {
        for stage in ["process", "mine", "scan"] {
            let rate = run[stage]["stmts_per_sec"].as_f64().expect("finite rate");
            assert!(rate > 0.0, "{stage} rate {rate}");
        }
    }
    // The sweep only changes wall-clock, never results.
    assert_eq!(runs[0]["patterns"], runs[1]["patterns"]);
    assert_eq!(runs[0]["violations"], runs[1]["violations"]);
}

#[test]
fn bench_incremental_quick_emits_json() {
    let out = std::env::temp_dir().join(format!("bench_incremental_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_bench_incremental"))
        .args(["--quick", "--threads", "2", "--out"])
        .arg(&out)
        .status()
        .expect("bench_incremental runs");
    assert!(status.success(), "bench_incremental exited with {status}");
    let text = std::fs::read_to_string(&out).expect("JSON written");
    let _ = std::fs::remove_file(&out);
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    // The equivalence guarantee held for every phase.
    assert_eq!(json["identical"], serde_json::Value::Bool(true));
    // Warm scan reused everything; the dirty phases re-did only the
    // touched file(s), splicing their unchanged statements from regions.
    assert_eq!(json["warm"]["fresh"].as_u64(), Some(0));
    assert_eq!(json["dirty_line"]["fresh"].as_u64(), Some(1));
    assert!(json["dirty_line"]["stmt_hits"].as_u64().unwrap() > 0);
    assert!(json["dirty_line"]["stmt_misses"].as_u64().unwrap() >= 1);
    // The baseline is file-granular: no region traffic at all.
    assert_eq!(json["granular_line"]["stmt_hits"].as_u64(), Some(0));
    for phase in [
        "cold",
        "warm",
        "dirty_line",
        "dirty_stmts",
        "granular_line",
        "full_rescan",
    ] {
        assert!(json[phase]["secs"].as_f64().unwrap() >= 0.0, "{phase}");
    }
    assert!(json["warm_speedup"].as_f64().unwrap() > 0.0);
    assert!(json["dirty_speedup"].as_f64().unwrap() > 0.0);
    assert!(json["region_speedup"].as_f64().unwrap() > 0.0);
}

#[test]
fn bench_shard_quick_emits_json() {
    let out = std::env::temp_dir().join(format!("bench_shard_{}.json", std::process::id()));
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_bench_shard"))
        .args(["--quick", "--shards", "2,4", "--out"])
        .arg(&out)
        .status()
        .expect("bench_shard runs");
    assert!(status.success(), "bench_shard exited with {status}");
    let text = std::fs::read_to_string(&out).expect("JSON written");
    let _ = std::fs::remove_file(&out);
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    // Every sharded scan matched the unsharded reference bit for bit.
    assert_eq!(json["identical"], serde_json::Value::Bool(true));
    // The curve isolates the pattern axis at one file thread.
    assert_eq!(json["file_threads"].as_u64(), Some(1));
    assert!(json["patterns"].as_u64().unwrap() > json["base_patterns"].as_u64().unwrap());
    let points = json["points"].as_array().expect("points array");
    assert_eq!(points.len(), 2);
    for p in points {
        assert!(p["secs"].as_f64().unwrap() > 0.0);
        assert!(p["speedup"].as_f64().unwrap() > 0.0);
    }
    assert!(json["speedup_at_4"].as_f64().unwrap() > 0.0);
}

#[test]
fn cv_metrics_match_section_5_2_protocol() {
    let Setup {
        corpus,
        oracle,
        commits,
    } = setup(Lang::Python, Scale::Small, 45);
    let namer = Namer::train(
        &corpus.files,
        &commits,
        labeler(&oracle),
        &namer_config(Scale::Small),
    );
    let m = namer.cv_metrics;
    // §5.2 reports ~81% across the board; our noiseless labels land higher,
    // but any trained classifier must beat coin flipping comfortably.
    assert!(m.accuracy > 0.6, "{m:?}");
    assert!(m.f1 > 0.6, "{m:?}");
}
