//! The versioned, digest-guarded binary container behind [`SavedModel`]
//! and [`ScanCache`] files (DESIGN.md §12).
//!
//! [`SavedModel`]: crate::persist::SavedModel
//! [`ScanCache`]: crate::persist::ScanCache
//!
//! A container is a header, a section table, and the section payloads,
//! all little-endian:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"NAMERBIN"
//!      8     4  schema version (u32, currently 1)
//!     12     4  file kind (u32: 1 = model, 2 = scan cache)
//!     16     8  content digest (FNV-1a 64 over every byte from offset 24)
//!     24     4  section count (u32)
//!     28     4  reserved (0)
//!     32   24n  section table: (id u32, reserved u32, offset u64, len u64)
//!      …        section payloads, in table order, at their stated offsets
//! ```
//!
//! Section payloads are flat fixed-width arrays (`namer_patterns::flat`
//! plus the model/cache-specific blocks in [`crate::persist`]), so a
//! reader touches only the pages of the sections it visits — the file is
//! laid out for mmap even though loading currently goes through
//! [`Vfs::read`](crate::vfs::Vfs::read). The digest covers the section
//! table and every payload byte; a single flipped bit anywhere past the
//! header surfaces as [`BinError::DigestMismatch`] rather than as wrong
//! data, and truncation surfaces as [`BinError::Malformed`]. Readers that
//! must never fail (the scan cache) map every [`BinError`] to a cold
//! start.

use namer_syntax::digest::Fnv64;
use std::fmt;

/// File magic: the first eight bytes of every binary model or cache file.
pub const MAGIC: [u8; 8] = *b"NAMERBIN";

/// Container schema version. Bumped when the header or section-table shape
/// changes; section payload evolution is versioned by the per-kind META
/// sections instead.
pub const SCHEMA_VERSION: u32 = 1;

/// File kind tag for saved models.
pub const KIND_MODEL: u32 = 1;

/// File kind tag for scan caches.
pub const KIND_CACHE: u32 = 2;

/// Size of the fixed header.
pub const HEADER_BYTES: usize = 32;

/// Size of one section-table entry.
pub const SECTION_ENTRY_BYTES: usize = 24;

/// Errors from parsing a binary container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The bytes do not start with the container magic — most likely a
    /// legacy JSON file or something else entirely.
    NotBinary,
    /// The container schema version is not supported.
    UnsupportedVersion(u32),
    /// The file kind does not match what the caller expected.
    WrongKind {
        /// The kind the caller asked [`BinFile::parse_kind`] to require.
        expected: u32,
        /// The kind recorded in the header.
        found: u32,
    },
    /// The header digest does not match the file contents: bit rot or a
    /// torn write that survived the atomic-rename discipline.
    DigestMismatch,
    /// Structurally invalid: truncated, overlapping or out-of-range
    /// sections, or a malformed payload.
    Malformed(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::NotBinary => write!(f, "not a Namer binary file"),
            BinError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary schema version {v}")
            }
            BinError::WrongKind { expected, found } => {
                write!(f, "wrong binary file kind: expected {expected}, found {found}")
            }
            BinError::DigestMismatch => write!(f, "binary file digest mismatch"),
            BinError::Malformed(m) => write!(f, "malformed binary file: {m}"),
        }
    }
}

impl std::error::Error for BinError {}

/// `true` when `bytes` begins with the container magic. Used to sniff
/// binary vs. legacy-JSON files before choosing a decoder.
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

fn digest_of(tail: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(tail);
    h.finish()
}

/// Assembles a container: collect sections, then [`BinWriter::finish`]
/// lays them out and stamps the header digest.
pub struct BinWriter {
    kind: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl BinWriter {
    /// A writer for a file of the given kind ([`KIND_MODEL`] /
    /// [`KIND_CACHE`]).
    pub fn new(kind: u32) -> BinWriter {
        BinWriter { kind, sections: Vec::new() }
    }

    /// Appends a section. Ids must be unique per file; order is preserved
    /// and becomes the payload order on disk.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) -> &mut BinWriter {
        debug_assert!(
            self.sections.iter().all(|&(existing, _)| existing != id),
            "duplicate section id {id}"
        );
        self.sections.push((id, payload));
        self
    }

    /// Serialises the container.
    pub fn finish(self) -> Vec<u8> {
        let table_len = self.sections.len() * SECTION_ENTRY_BYTES;
        let mut out = Vec::with_capacity(
            HEADER_BYTES + table_len + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // digest, patched below
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved

        let mut offset = (HEADER_BYTES + table_len) as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // reserved
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }

        let digest = digest_of(&out[24..]);
        out[16..24].copy_from_slice(&digest.to_le_bytes());
        out
    }
}

/// A parsed container: the header fields plus a validated section table
/// over the borrowed file bytes. Section payloads are only sliced, never
/// copied or decoded, until a caller asks for them.
pub struct BinFile<'a> {
    kind: u32,
    bytes: &'a [u8],
    /// `(id, offset, len)` triples, validated to lie inside `bytes`.
    table: Vec<(u32, usize, usize)>,
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"))
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

impl<'a> BinFile<'a> {
    /// Parses and validates a container: magic, schema version, digest,
    /// and section-table bounds.
    ///
    /// # Errors
    ///
    /// [`BinError::NotBinary`] when the magic is absent (callers fall back
    /// to the JSON decoder), and the other [`BinError`] variants for a
    /// file that is binary but unusable.
    pub fn parse(bytes: &'a [u8]) -> Result<BinFile<'a>, BinError> {
        if !looks_binary(bytes) {
            return Err(BinError::NotBinary);
        }
        if bytes.len() < HEADER_BYTES {
            return Err(BinError::Malformed(format!(
                "file of {} bytes is shorter than the {HEADER_BYTES}-byte header",
                bytes.len()
            )));
        }
        let version = u32_at(bytes, 8);
        if version != SCHEMA_VERSION {
            return Err(BinError::UnsupportedVersion(version));
        }
        let kind = u32_at(bytes, 12);
        let stored = u64_at(bytes, 16);
        if digest_of(&bytes[24..]) != stored {
            return Err(BinError::DigestMismatch);
        }
        let count = u32_at(bytes, 24) as usize;
        let table_end = HEADER_BYTES
            .checked_add(count * SECTION_ENTRY_BYTES)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| BinError::Malformed(format!("section table of {count} entries past end")))?;
        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
            let id = u32_at(bytes, at);
            let offset = u64_at(bytes, at + 8);
            let len = u64_at(bytes, at + 16);
            let offset = usize::try_from(offset)
                .map_err(|_| BinError::Malformed(format!("section {id} offset overflows")))?;
            let len = usize::try_from(len)
                .map_err(|_| BinError::Malformed(format!("section {id} length overflows")))?;
            let end = offset
                .checked_add(len)
                .filter(|&end| end <= bytes.len())
                .ok_or_else(|| {
                    BinError::Malformed(format!("section {id} ({offset}+{len}) past end of file"))
                })?;
            if offset < table_end {
                return Err(BinError::Malformed(format!(
                    "section {id} overlaps the header or section table"
                )));
            }
            if table.iter().any(|&(existing, _, _)| existing == id) {
                return Err(BinError::Malformed(format!("duplicate section id {id}")));
            }
            let _ = end;
            table.push((id, offset, len));
        }
        Ok(BinFile { kind, bytes, table })
    }

    /// Parses and additionally requires the header kind to be `kind`.
    ///
    /// # Errors
    ///
    /// Everything [`BinFile::parse`] returns, plus [`BinError::WrongKind`].
    pub fn parse_kind(bytes: &'a [u8], kind: u32) -> Result<BinFile<'a>, BinError> {
        let file = BinFile::parse(bytes)?;
        if file.kind != kind {
            return Err(BinError::WrongKind { expected: kind, found: file.kind });
        }
        Ok(file)
    }

    /// The header kind tag.
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// The header content digest (also the file's registry address).
    pub fn digest(&self) -> u64 {
        u64_at(self.bytes, 16)
    }

    /// The payload of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.table
            .iter()
            .find(|&&(sid, _, _)| sid == id)
            .map(|&(_, offset, len)| &self.bytes[offset..offset + len])
    }

    /// The payload of section `id`, or a [`BinError::Malformed`] naming it.
    ///
    /// # Errors
    ///
    /// [`BinError::Malformed`] when the section is absent.
    pub fn require(&self, id: u32) -> Result<&'a [u8], BinError> {
        self.section(id)
            .ok_or_else(|| BinError::Malformed(format!("missing required section {id}")))
    }
}

/// Reads the content digest out of a binary file's header without
/// validating the payload — the cheap path for registry addressing.
/// `None` when the bytes are not a supported binary container header.
pub fn header_digest(bytes: &[u8]) -> Option<u64> {
    if !looks_binary(bytes) || bytes.len() < HEADER_BYTES || u32_at(bytes, 8) != SCHEMA_VERSION {
        return None;
    }
    Some(u64_at(bytes, 16))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = BinWriter::new(KIND_MODEL);
        w.section(1, vec![1, 2, 3, 4]);
        w.section(2, Vec::new());
        w.section(7, b"payload".to_vec());
        w.finish()
    }

    #[test]
    fn binfmt_round_trips_sections() {
        let bytes = sample();
        let file = BinFile::parse(&bytes).unwrap();
        assert_eq!(file.kind(), KIND_MODEL);
        assert_eq!(file.section(1), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(file.section(2), Some(&[][..]));
        assert_eq!(file.section(7), Some(&b"payload"[..]));
        assert_eq!(file.section(99), None);
        assert!(file.require(7).is_ok());
        assert!(file.require(99).is_err());
    }

    #[test]
    fn binfmt_sniffs_json_as_not_binary() {
        assert!(!looks_binary(b"{\"version\":1}"));
        assert!(matches!(
            BinFile::parse(b"{\"version\":1,\"entries\":{}}"),
            Err(BinError::NotBinary)
        ));
        assert!(matches!(BinFile::parse(b""), Err(BinError::NotBinary)));
        assert!(matches!(BinFile::parse(b"NAMERB"), Err(BinError::NotBinary)));
    }

    #[test]
    fn binfmt_rejects_unsupported_version_and_wrong_kind() {
        let mut bytes = sample();
        bytes[8] = 9;
        assert!(matches!(
            BinFile::parse(&bytes),
            Err(BinError::UnsupportedVersion(9))
        ));
        let bytes = sample();
        assert!(matches!(
            BinFile::parse_kind(&bytes, KIND_CACHE),
            Err(BinError::WrongKind { expected: KIND_CACHE, found: KIND_MODEL })
        ));
        assert!(BinFile::parse_kind(&bytes, KIND_MODEL).is_ok());
    }

    #[test]
    fn binfmt_detects_every_single_bit_flip_past_the_header_digest() {
        let good = sample();
        // Flip one bit in every byte after the digest field; each flip must
        // be rejected (digest mismatch, or a structural error for table
        // bytes), never silently accepted.
        for i in 24..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            assert!(BinFile::parse(&bad).is_err(), "flip at byte {i} accepted");
        }
        // Flips inside the digest itself are also caught.
        for i in 16..24 {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(matches!(BinFile::parse(&bad), Err(BinError::DigestMismatch)));
        }
    }

    #[test]
    fn binfmt_rejects_every_truncation() {
        let good = sample();
        for cut in 8..good.len() {
            assert!(BinFile::parse(&good[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn binfmt_header_digest_is_cheap_and_stable() {
        let bytes = sample();
        let file = BinFile::parse(&bytes).unwrap();
        assert_eq!(header_digest(&bytes), Some(file.digest()));
        assert_eq!(header_digest(b"{\"json\":true}"), None);
        // Same sections → same digest; different payload → different digest.
        assert_eq!(header_digest(&sample()), header_digest(&bytes));
        let mut w = BinWriter::new(KIND_MODEL);
        w.section(1, vec![9, 9, 9, 9]);
        assert_ne!(header_digest(&w.finish()), header_digest(&bytes));
    }

    #[test]
    fn binfmt_rejects_duplicate_sections_at_parse_time() {
        // Hand-build a file with two sections of the same id (the writer
        // debug-asserts against this, so forge it).
        let mut w = BinWriter::new(KIND_CACHE);
        w.section(1, vec![0xAA]);
        w.section(2, vec![0xBB]);
        let mut bytes = w.finish();
        // Rewrite section 2's table id to 1 and restamp the digest.
        let entry = HEADER_BYTES + SECTION_ENTRY_BYTES;
        bytes[entry..entry + 4].copy_from_slice(&1u32.to_le_bytes());
        let digest = digest_of(&bytes[24..]);
        bytes[16..24].copy_from_slice(&digest.to_le_bytes());
        assert!(matches!(BinFile::parse(&bytes), Err(BinError::Malformed(_))));
    }
}
