//! The unsupervised half of Namer: mine patterns from Big Code and flag
//! pattern violations with their Table 1 features.

use crate::features::{self, FeatureInputs, LevelCounts, FEATURE_COUNT};
use crate::process::{ProcessedCorpus, ProcessedFile};
use namer_patterns::{
    mine_patterns, resolve_threads, ConfusingPairs, MatchScratch, MiningConfig, PatternSet,
    PatternType, Relation,
};
use namer_syntax::{parse_file, Lang, SourceFile, Sym};
use std::collections::{HashMap, HashSet};

/// A flagged pattern violation with its feature vector.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Repository of the statement.
    pub repo: String,
    /// File path of the statement.
    pub path: String,
    /// 1-based line of the statement.
    pub line: u32,
    /// The offending subtoken as written.
    pub original: Sym,
    /// The subtoken the violated pattern deduces.
    pub suggested: Sym,
    /// Index of the violated pattern in [`Detector::patterns`].
    pub pattern_idx: usize,
    /// Pattern type of the violated pattern.
    pub pattern_ty: PatternType,
    /// Rendered statement (for display).
    pub rendered: String,
    /// Table 1 features ϕ(s, p).
    pub features: [f64; FEATURE_COUNT],
    /// `true` when patterns of *both* types flagged this statement with the
    /// same suggestion (the §5.2 "detected by both patterns" statistic).
    pub detected_by_both: bool,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] suggest replacing `{}` with `{}` in {}",
            self.repo, self.path, self.line, self.pattern_ty, self.original, self.suggested,
            self.rendered
        )
    }
}

/// The mined detector: patterns, pairs, and dataset-level statistics.
#[derive(Debug)]
pub struct Detector {
    /// All mined patterns (consistency first, then confusing-word).
    pub patterns: PatternSet,
    /// Mined confusing word pairs.
    pub pairs: ConfusingPairs,
    dataset: Vec<LevelCounts>,
}

impl Detector {
    /// Mines confusing word pairs from `commits` (before/after text pairs)
    /// and name patterns of both types from the preprocessed corpus.
    pub fn mine(
        corpus: &ProcessedCorpus,
        commits: &[(String, String)],
        lang: Lang,
        config: &MiningConfig,
    ) -> Detector {
        let mut pairs = ConfusingPairs::new();
        for (before, after) in commits {
            let b = parse_file(&SourceFile::new("c", "b", before.clone(), lang));
            let a = parse_file(&SourceFile::new("c", "a", after.clone(), lang));
            if let (Ok(b), Ok(a)) = (b, a) {
                pairs.mine_commit(&b, &a);
            }
        }
        let stmts: Vec<_> = corpus
            .iter_stmts()
            .map(|(_, s)| s.paths.clone())
            .collect();
        let mut patterns = mine_patterns(&stmts, PatternType::Consistency, None, config);
        patterns.extend(mine_patterns(
            &stmts,
            PatternType::ConfusingWord,
            Some(&pairs),
            config,
        ));
        let dataset = patterns
            .iter()
            .map(|p| LevelCounts {
                matches: p.matches,
                satisfactions: p.satisfactions,
                violations: p.matches - p.satisfactions,
            })
            .collect();
        Detector {
            patterns: PatternSet::new(patterns),
            pairs,
            dataset,
        }
    }

    /// Number of mined patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Dataset-level counts of pattern `idx` (from `pruneUncommon`).
    pub fn dataset_counts(&self, idx: usize) -> LevelCounts {
        self.dataset[idx]
    }

    /// Dataset-level counts for every pattern (for persistence).
    pub fn dataset_counts_all(&self) -> &[LevelCounts] {
        &self.dataset
    }

    /// Reassembles a detector from persisted parts.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` does not have one entry per pattern.
    pub fn from_parts(
        patterns: Vec<namer_patterns::NamePattern>,
        pairs: ConfusingPairs,
        dataset: Vec<LevelCounts>,
    ) -> Detector {
        assert_eq!(patterns.len(), dataset.len(), "one count set per pattern");
        Detector {
            patterns: PatternSet::new(patterns),
            pairs,
            dataset,
        }
    }

    /// Scans a preprocessed corpus and returns every violation with its
    /// Table 1 features, plus per-file coverage statistics (§5.2's
    /// "violated at least one pattern" numbers).
    ///
    /// Serial; [`Detector::violations_with`] is the parallel entry point.
    pub fn violations(&self, corpus: &ProcessedCorpus) -> ScanResult {
        self.violations_with(corpus, 1)
    }

    /// Like [`Detector::violations`], sharding the corpus files across
    /// `threads` worker threads (`0` = all available cores). Violations are
    /// re-joined in input order and per-repo counts are merged by addition,
    /// so the result is identical to the serial scan at any thread count.
    pub fn violations_with(&self, corpus: &ProcessedCorpus, threads: usize) -> ScanResult {
        // Pass 1: relations per statement, accumulated at file/repo level.
        let threads = resolve_threads(threads).min(corpus.files.len().max(1));
        let scan = if threads <= 1 {
            self.scan_chunk(&corpus.files, 0)
        } else {
            let chunk_size = corpus.files.len().div_ceil(threads);
            let parts: Vec<ChunkScan<'_>> = crossbeam::scope(|scope| {
                let handles: Vec<_> = corpus
                    .files
                    .chunks(chunk_size)
                    .enumerate()
                    .map(|(k, chunk)| {
                        scope.spawn(move |_| self.scan_chunk(chunk, k * chunk_size))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scan worker panicked"))
                    .collect()
            })
            .expect("scan workers do not panic");
            ChunkScan::merge(parts)
        };
        let ChunkScan {
            raw,
            file_counts,
            file_digests,
            repo_counts,
            repo_digests,
            files_with_violation,
            repos_with_violation,
        } = scan;

        // Pass 2: feature vectors.
        let violations: Vec<Violation> = raw
            .into_iter()
            .map(|r| {
                let file = &corpus.files[r.file_idx];
                let pattern = &self.patterns.patterns[r.pattern_idx];
                let inputs = FeatureInputs {
                    pattern,
                    stmt_path_count: r.path_count,
                    identical_in_file: file_digests[r.file_idx]
                        .get(&r.digest)
                        .copied()
                        .unwrap_or(1),
                    identical_in_repo: repo_digests
                        .get(file.repo.as_str())
                        .and_then(|m| m.get(&r.digest))
                        .copied()
                        .unwrap_or(1),
                    file: file_counts[r.file_idx]
                        .get(&r.pattern_idx)
                        .copied()
                        .unwrap_or_default(),
                    repo: repo_counts
                        .get(file.repo.as_str())
                        .and_then(|m| m.get(&r.pattern_idx))
                        .copied()
                        .unwrap_or_default(),
                    dataset: self.dataset[r.pattern_idx],
                    original: r.original,
                    suggested: r.suggested,
                };
                Violation {
                    repo: file.repo.clone(),
                    path: file.path.clone(),
                    line: r.line,
                    original: r.original,
                    suggested: r.suggested,
                    pattern_idx: r.pattern_idx,
                    pattern_ty: pattern.ty,
                    rendered: r.rendered,
                    features: features::extract(&inputs, &self.pairs),
                    detected_by_both: false,
                }
            })
            .collect();

        let raw_count = violations.len();
        let violations = dedup_violations(violations, self);

        ScanResult {
            violations,
            raw_violation_count: raw_count,
            files_scanned: corpus.files.len(),
            files_with_violation,
            repos_with_violation: repos_with_violation.len(),
        }
    }

    /// Scans one contiguous shard of the corpus: relations per statement,
    /// accumulated at file and repo level. `base_idx` is the shard's offset
    /// into the full file list, so `Raw::file_idx` stays a global index.
    fn scan_chunk<'a>(&self, files: &'a [ProcessedFile], base_idx: usize) -> ChunkScan<'a> {
        let mut out = ChunkScan::default();
        let mut scratch = MatchScratch::for_set(&self.patterns);
        let mut hits: Vec<(usize, Relation)> = Vec::new();
        for (offset, file) in files.iter().enumerate() {
            let file_idx = base_idx + offset;
            let mut this_file: HashMap<usize, LevelCounts> = HashMap::new();
            let mut this_digests: HashMap<u64, u64> = HashMap::new();
            let repo_entry = out.repo_counts.entry(&file.repo).or_default();
            let repo_dig = out.repo_digests.entry(&file.repo).or_default();
            let mut violated_here = false;
            for stmt in &file.stmts {
                *this_digests.entry(stmt.digest).or_default() += 1;
                *repo_dig.entry(stmt.digest).or_default() += 1;
                self.patterns.check_into(&stmt.paths, &mut scratch, &mut hits);
                for (pidx, rel) in hits.drain(..) {
                    let satisfied = rel == Relation::Satisfied;
                    this_file.entry(pidx).or_default().record(satisfied);
                    repo_entry.entry(pidx).or_default().record(satisfied);
                    if let Relation::Violated(detail) = rel {
                        violated_here = true;
                        // Consistency violations are orientation-agnostic
                        // (either name could be the mistake); when the mined
                        // confusing pairs know the direction, use it.
                        let (original, suggested) =
                            if self.pairs.contains(detail.suggested, detail.original)
                                && !self.pairs.contains(detail.original, detail.suggested)
                            {
                                (detail.suggested, detail.original)
                            } else {
                                (detail.original, detail.suggested)
                            };
                        out.raw.push(Raw {
                            file_idx,
                            line: stmt.line,
                            rendered: stmt.rendered.clone(),
                            digest: stmt.digest,
                            path_count: stmt.paths.len(),
                            pattern_idx: pidx,
                            original,
                            suggested,
                        });
                    }
                }
            }
            if violated_here {
                out.files_with_violation += 1;
                out.repos_with_violation.insert(&file.repo);
            }
            out.file_counts.push(this_file);
            out.file_digests.push(this_digests);
        }
        out
    }
}

/// One pre-feature violation record of the scan's first pass.
struct Raw {
    file_idx: usize,
    line: u32,
    rendered: String,
    digest: u64,
    path_count: usize,
    pattern_idx: usize,
    original: Sym,
    suggested: Sym,
}

/// First-pass accumulator of one corpus shard; shards merge into the same
/// state a serial scan builds.
#[derive(Default)]
struct ChunkScan<'a> {
    raw: Vec<Raw>,
    file_counts: Vec<HashMap<usize, LevelCounts>>,
    file_digests: Vec<HashMap<u64, u64>>,
    repo_counts: HashMap<&'a str, HashMap<usize, LevelCounts>>,
    repo_digests: HashMap<&'a str, HashMap<u64, u64>>,
    files_with_violation: usize,
    repos_with_violation: HashSet<&'a str>,
}

impl<'a> ChunkScan<'a> {
    /// Folds shards (in input order) into one accumulator: per-file vectors
    /// concatenate, per-repo maps merge by addition, coverage sets union.
    fn merge(parts: Vec<ChunkScan<'a>>) -> ChunkScan<'a> {
        let mut merged = ChunkScan::default();
        for mut part in parts {
            merged.raw.append(&mut part.raw);
            merged.file_counts.append(&mut part.file_counts);
            merged.file_digests.append(&mut part.file_digests);
            for (repo, counts) in part.repo_counts {
                let slot = merged.repo_counts.entry(repo).or_default();
                for (pidx, c) in counts {
                    slot.entry(pidx).or_default().add(c);
                }
            }
            for (repo, digests) in part.repo_digests {
                let slot = merged.repo_digests.entry(repo).or_default();
                for (digest, n) in digests {
                    *slot.entry(digest).or_default() += n;
                }
            }
            merged.files_with_violation += part.files_with_violation;
            merged.repos_with_violation.extend(part.repos_with_violation);
        }
        merged
    }
}

/// Collapses violations to one *report candidate* per
/// `(location, original, suggested)`, keeping the violation whose pattern
/// has the most dataset evidence. Statements flagged by both pattern types
/// are marked (`detected_by_both`).
fn dedup_violations(violations: Vec<Violation>, det: &Detector) -> Vec<Violation> {
    let mut best: HashMap<(String, String, u32, Sym, Sym), Violation> = HashMap::new();
    let mut types: HashMap<(String, String, u32, Sym, Sym), (bool, bool)> = HashMap::new();
    for v in violations {
        let key = (
            v.repo.clone(),
            v.path.clone(),
            v.line,
            v.original,
            v.suggested,
        );
        let t = types.entry(key.clone()).or_default();
        match v.pattern_ty {
            crate::detector::PatternTypeAlias::Consistency => t.0 = true,
            crate::detector::PatternTypeAlias::ConfusingWord => t.1 = true,
        }
        let evidence = |x: &Violation| det.dataset[x.pattern_idx].matches;
        match best.get(&key) {
            Some(cur) if evidence(cur) >= evidence(&v) => {}
            _ => {
                best.insert(key, v);
            }
        }
    }
    let mut out: Vec<Violation> = best
        .into_iter()
        .map(|(key, mut v)| {
            let (c, w) = types[&key];
            v.detected_by_both = c && w;
            v
        })
        .collect();
    out.sort_by(|a, b| {
        (&a.repo, &a.path, a.line, a.original, a.suggested)
            .cmp(&(&b.repo, &b.path, b.line, b.original, b.suggested))
    });
    out
}

/// Local alias so the dedup match reads naturally.
use namer_patterns::PatternType as PatternTypeAlias;

/// Output of [`Detector::violations`].
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// Report candidates: one violation per (location, suggestion), most
    /// evidenced pattern first.
    pub violations: Vec<Violation>,
    /// Violation count before per-location deduplication.
    pub raw_violation_count: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Files with at least one violation (§5.2 coverage).
    pub files_with_violation: usize,
    /// Repositories with at least one violation.
    pub repos_with_violation: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{process, ProcessConfig};

    fn tiny_corpus() -> (Vec<SourceFile>, Vec<(String, String)>) {
        let mut files = Vec::new();
        for i in 0..30 {
            files.push(SourceFile::new(
                format!("repo{}", i % 5),
                format!("f{i}.py"),
                "class T(TestCase):\n    def test_a(self):\n        self.assertEqual(value.count, 4)\n",
                Lang::Python,
            ));
        }
        files.push(SourceFile::new(
            "repo0",
            "bad.py",
            "class T(TestCase):\n    def test_b(self):\n        self.assertTrue(value.count, 4)\n",
            Lang::Python,
        ));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        (files, commits)
    }

    fn small_mining() -> MiningConfig {
        MiningConfig {
            min_path_count: 2,
            min_support: 5,
            ..MiningConfig::default()
        }
    }

    #[test]
    fn detects_injected_wrong_api() {
        let (files, commits) = tiny_corpus();
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        assert!(det.pattern_count() > 0);
        let scan = det.violations(&corpus);
        let hit = scan
            .violations
            .iter()
            .find(|v| v.path == "bad.py")
            .expect("the buggy file is flagged");
        assert_eq!(hit.original.as_str(), "True");
        assert_eq!(hit.suggested.as_str(), "Equal");
        assert_eq!(hit.line, 3);
    }

    #[test]
    fn features_reflect_local_context() {
        let (files, commits) = tiny_corpus();
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let scan = det.violations(&corpus);
        let v = scan.violations.iter().find(|v| v.path == "bad.py").unwrap();
        // One-off statement: exactly one identical copy in its file.
        assert_eq!(v.features[1], 1.0);
        // The mined pattern is a confusing-word, function-name pattern.
        assert_eq!(v.features[12], 1.0);
        // Dataset satisfaction rate is high (30 good vs 1 bad).
        assert!(v.features[5] > 0.8, "{}", v.features[5]);
        // Mined pair feature fires.
        assert_eq!(v.features[16], 1.0);
    }

    #[test]
    fn scan_reports_coverage() {
        let (files, commits) = tiny_corpus();
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let scan = det.violations(&corpus);
        assert_eq!(scan.files_scanned, 31);
        assert!(scan.files_with_violation >= 1);
        assert!(scan.repos_with_violation >= 1);
    }

    #[test]
    fn satisfied_corpus_yields_no_violations() {
        let files: Vec<SourceFile> = (0..20)
            .map(|i| {
                SourceFile::new(
                    "r",
                    format!("f{i}.py"),
                    "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n",
                    Lang::Python,
                )
            })
            .collect();
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let scan = det.violations(&corpus);
        assert!(scan.violations.is_empty());
    }
}
