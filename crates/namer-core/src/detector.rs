//! The unsupervised half of Namer: mine patterns from Big Code and flag
//! pattern violations with their Table 1 features.
//!
//! Scanning is split into a per-file stage ([`FileScanState`], purely
//! content-derived and therefore cacheable) and a corpus-level assembly
//! stage that rebuilds repo aggregates and feature vectors. Every scan —
//! full or incremental, file-granular or statement-region — goes through
//! the one [`Detector::scan`] entry point and funnels into the same
//! assembly, which is what guarantees byte-identical output between all
//! of them (DESIGN.md §8, §14). Within a fresh file, per-statement match
//! outcomes are cached as [`StmtRegion`]s keyed by a span digest of the
//! statement's name paths, so an edit re-matches only the dirty window.

use crate::features::{self, FeatureInputs, LevelCounts, FEATURE_COUNT};
use crate::persist::{CacheEntry, ScanCache};
use crate::process::{process_each_observed, ProcessConfig, ProcessedCorpus, ProcessedFile};
use namer_observe::{Counter, Observer, Phase};
use namer_patterns::{
    mine_patterns_observed, resolve_threads, ConfusingPairs, MatchScratch, MiningConfig,
    NamePattern, PathSet, PatternSet, PatternShards, PatternType, Relation, ShardHit, ShardPlan,
};
use namer_syntax::{parse_file, ContentDigest, Fnv64, Lang, SourceFile, Sym};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// A flagged pattern violation with its feature vector.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Repository of the statement.
    pub repo: String,
    /// File path of the statement.
    pub path: String,
    /// 1-based line of the statement.
    pub line: u32,
    /// The offending subtoken as written.
    pub original: Sym,
    /// The subtoken the violated pattern deduces.
    pub suggested: Sym,
    /// Index of the violated pattern in [`Detector::patterns`].
    pub pattern_idx: usize,
    /// Pattern type of the violated pattern.
    pub pattern_ty: PatternType,
    /// Rendered statement (for display).
    pub rendered: String,
    /// Table 1 features ϕ(s, p).
    pub features: [f64; FEATURE_COUNT],
    /// `true` when patterns of *both* types flagged this statement with the
    /// same suggestion (the §5.2 "detected by both patterns" statistic).
    pub detected_by_both: bool,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] suggest replacing `{}` with `{}` in {}",
            self.repo, self.path, self.line, self.pattern_ty, self.original, self.suggested,
            self.rendered
        )
    }
}

/// One pre-feature violation record from the per-file scan pass.
///
/// Everything here is derived from the file's content alone (the statement's
/// line, digest, and the matched pattern), so it persists in the scan cache.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawHit {
    /// 1-based line of the violating statement.
    pub line: u32,
    /// Rendered statement (for display).
    pub rendered: String,
    /// Structural digest of the statement.
    pub digest: u64,
    /// Name-path count of the statement.
    pub path_count: usize,
    /// Index of the violated pattern.
    pub pattern_idx: usize,
    /// The offending subtoken as written.
    pub original: Sym,
    /// The subtoken the pattern deduces.
    pub suggested: Sym,
}

/// Per-file scan state: everything pass 1 learns about one file.
///
/// Deliberately contains no repository or path identity — two files with the
/// same bytes produce the same state — which is what lets the scan cache key
/// on content digest alone. Sorted `Vec`s rather than maps keep the
/// serialized form deterministic and lookups branch-predictable.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FileScanState {
    /// Match/satisfaction counts per pattern index, sorted by index.
    pub pattern_counts: Vec<(usize, LevelCounts)>,
    /// Occurrence count per statement digest, sorted by digest.
    pub digest_counts: Vec<(u64, u64)>,
    /// Pre-feature violations in statement order.
    pub raw: Vec<RawHit>,
    /// Span-digest key of each statement in source order (hex), linking
    /// the file to its cached [`StmtRegion`]s so region pruning can
    /// mark-and-sweep. Empty for states produced without region tracking
    /// (full scans, file-granular incremental mode, v1 caches).
    #[serde(default)]
    pub spans: Vec<String>,
}

/// Cached match outcomes of one statement region, keyed by the span digest
/// of the statement's extracted name paths (DESIGN.md §14).
///
/// Stores only path-derived data — pattern outcomes in the matcher's
/// emission order — never positional stamps like line numbers or rendered
/// text, which are re-taken from the *current* statement at splice time.
/// That is what makes a region safe to share across files, edits, and line
/// shifts: matching is a pure function of the paths under a fixed detector
/// fingerprint.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StmtRegion {
    /// Per-pattern outcomes in emission order.
    pub outcomes: Vec<RegionOutcome>,
}

/// One pattern's outcome on one statement region.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionOutcome {
    /// Index of the matched pattern.
    pub pattern_idx: usize,
    /// Whether the deduction held.
    pub satisfied: bool,
    /// Post-orientation `(original, suggested)` names, present only for
    /// violations.
    pub names: Option<(Sym, Sym)>,
}

/// Content-addressed key of one statement's extracted name paths: two
/// independently seeded 64-bit FNV streams over every path's rendering.
///
/// Pattern matching and orientation are pure functions of these paths
/// under a fixed detector, which is what makes the key sound. A digest of
/// the statement's *source span* would not be: name paths depend on
/// file-scoped analysis, so the same source text can extract different
/// paths after an edit elsewhere in the file (DESIGN.md §14).
fn span_digest(paths: &PathSet) -> ContentDigest {
    let mut lo = Fnv64::new();
    let mut hi = Fnv64::with_seed(0x9e37_79b9_7f4a_7c15);
    lo.write_u64(paths.paths.len() as u64);
    hi.write_u64(paths.paths.len() as u64);
    for p in &paths.paths {
        let s = p.to_string();
        lo.write_str(&s);
        hi.write_str(&s);
    }
    ContentDigest((u128::from(hi.finish()) << 64) | u128::from(lo.finish()))
}

/// The persisted parts of a [`Detector`] — mined patterns, confusing
/// pairs, and per-pattern dataset statistics — with [`DetectorSpec::build`]
/// as the single way to rebuild a detector from storage. Paired with
/// [`Detector::fingerprint`], cache-key derivation has exactly one code
/// path.
#[derive(Debug)]
pub struct DetectorSpec {
    /// All mined patterns (consistency first, then confusing-word).
    pub patterns: Vec<NamePattern>,
    /// Mined confusing word pairs.
    pub pairs: ConfusingPairs,
    /// Dataset-level counts per pattern (from `pruneUncommon`), index-
    /// aligned with `patterns`.
    pub dataset: Vec<LevelCounts>,
}

impl DetectorSpec {
    /// Bundles already-mined parts (typically deserialized from a
    /// [`SavedModel`](crate::persist::SavedModel)).
    pub fn new(
        patterns: Vec<NamePattern>,
        pairs: ConfusingPairs,
        dataset: Vec<LevelCounts>,
    ) -> DetectorSpec {
        DetectorSpec {
            patterns,
            pairs,
            dataset,
        }
    }

    /// Builds the runtime detector (re-indexing the pattern set).
    pub fn build(self) -> Detector {
        Detector {
            patterns: PatternSet::new(self.patterns),
            pairs: self.pairs,
            dataset: self.dataset,
        }
    }
}

/// The mined detector: patterns, pairs, and dataset-level statistics.
#[derive(Debug)]
pub struct Detector {
    /// All mined patterns (consistency first, then confusing-word).
    pub patterns: PatternSet,
    /// Mined confusing word pairs.
    pub pairs: ConfusingPairs,
    dataset: Vec<LevelCounts>,
}

impl Detector {
    /// Mines confusing word pairs from `commits` (before/after text pairs)
    /// and name patterns of both types from the preprocessed corpus.
    pub fn mine(
        corpus: &ProcessedCorpus,
        commits: &[(String, String)],
        lang: Lang,
        config: &MiningConfig,
    ) -> Detector {
        Detector::mine_observed(corpus, commits, lang, config, Observer::none())
    }

    /// [`Detector::mine`] with observability: the whole pass reports as
    /// [`Phase::Mine`], commit diffing as [`Phase::MinePairs`], and candidate
    /// generation / pruning land in their own phases via
    /// [`mine_patterns_observed`]. Mined pair and pattern counts feed the
    /// [`Counter::PairsMined`] / [`Counter::PatternsMined`] counters.
    pub fn mine_observed(
        corpus: &ProcessedCorpus,
        commits: &[(String, String)],
        lang: Lang,
        config: &MiningConfig,
        obs: Observer<'_>,
    ) -> Detector {
        let _span = obs.phase(Phase::Mine);
        let mut pairs = ConfusingPairs::new();
        {
            let _pairs_span = obs.phase(Phase::MinePairs);
            for (before, after) in commits {
                let b = parse_file(&SourceFile::new("c", "b", before.clone(), lang));
                let a = parse_file(&SourceFile::new("c", "a", after.clone(), lang));
                if let (Ok(b), Ok(a)) = (b, a) {
                    pairs.mine_commit(&b, &a);
                }
            }
        }
        obs.add(Counter::PairsMined, pairs.iter().count() as u64);
        let stmts: Vec<_> = corpus
            .iter_stmts()
            .map(|(_, s)| s.paths.clone())
            .collect();
        let mut patterns =
            mine_patterns_observed(&stmts, PatternType::Consistency, None, config, obs);
        patterns.extend(mine_patterns_observed(
            &stmts,
            PatternType::ConfusingWord,
            Some(&pairs),
            config,
            obs,
        ));
        obs.add(Counter::PatternsMined, patterns.len() as u64);
        let dataset = patterns
            .iter()
            .map(|p| LevelCounts {
                matches: p.matches,
                satisfactions: p.satisfactions,
                violations: p.matches - p.satisfactions,
            })
            .collect();
        Detector {
            patterns: PatternSet::new(patterns),
            pairs,
            dataset,
        }
    }

    /// Number of mined patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Dataset-level counts of pattern `idx` (from `pruneUncommon`).
    pub fn dataset_counts(&self, idx: usize) -> LevelCounts {
        self.dataset[idx]
    }

    /// Dataset-level counts for every pattern (for persistence).
    pub fn dataset_counts_all(&self) -> &[LevelCounts] {
        &self.dataset
    }

    /// A stable fingerprint of everything that determines scan output —
    /// patterns (structure and mined counts), dataset statistics, confusing
    /// pairs, the preprocessing configuration, and the [`ShardPlan`].
    /// Cached scan state (file entries and statement regions alike) is only
    /// valid under the exact fingerprint it was produced with; this is the
    /// single cache-key code path.
    ///
    /// The shard plan cannot change results (DESIGN.md §9), but folding it
    /// in anyway keys cached state by the full scan configuration; a plan
    /// change costs one cold scan rather than risking a subtle mismatch.
    ///
    /// Built from string renderings with [`Fnv64`] rather than `std::hash`,
    /// because interned symbol ids are process-local and `std` hashes are
    /// not stable across processes.
    pub fn fingerprint(&self, process: &ProcessConfig, plan: &ShardPlan) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.patterns.len() as u64);
        for p in &self.patterns.patterns {
            h.write_u8(match p.ty {
                PatternType::Consistency => 0,
                PatternType::ConfusingWord => 1,
            });
            h.write_u64(p.condition.len() as u64);
            for path in &p.condition {
                h.write_str(&path.to_string());
            }
            h.write_u64(p.deduction.len() as u64);
            for path in &p.deduction {
                h.write_str(&path.to_string());
            }
            h.write_u64(p.support);
            h.write_u64(p.matches);
            h.write_u64(p.satisfactions);
        }
        for c in &self.dataset {
            h.write_u64(c.matches);
            h.write_u64(c.satisfactions);
            h.write_u64(c.violations);
        }
        let mut pairs: Vec<(&str, &str, u64)> = self
            .pairs
            .iter()
            .map(|(&(a, b), &n)| (a.as_str(), b.as_str(), n))
            .collect();
        pairs.sort_unstable();
        h.write_u64(pairs.len() as u64);
        for (a, b, n) in pairs {
            h.write_str(a);
            h.write_str(b);
            h.write_u64(n);
        }
        h.write_u8(u8::from(process.use_analysis));
        h.write_u64(process.max_paths as u64);
        h.write_u64(process.analysis.pointsto.k as u64);
        h.write_u64(process.analysis.pointsto.max_avg_contexts as u64);
        h.write_u64(plan.shards as u64);
        h.write_u64(plan.min_patterns as u64);
        h.finish()
    }

    /// Runs the scan described by `req` — the one scan entry point.
    ///
    /// * [`ScanRequest::full`] scans an already-preprocessed corpus and
    ///   returns every violation with its Table 1 features, plus per-file
    ///   coverage statistics (§5.2's "violated at least one pattern"
    ///   numbers).
    /// * [`ScanRequest::incremental`] scans raw files against a
    ///   [`ScanCache`]: per-file state is reused for every file whose
    ///   content digest is cached, fresh files are processed and scanned —
    ///   by default splicing per-statement match outcomes from cached
    ///   [`StmtRegion`]s so only the dirty window re-matches (DESIGN.md
    ///   §14) — and fresh state is inserted back into the cache. The
    ///   caller pairs the cache with [`Detector::fingerprint`] so stale
    ///   caches degrade to a cold scan.
    ///
    /// The per-file pass reports as [`Phase::Scan`] (with per-shard busy
    /// time), the cache partition as [`Phase::CacheLookup`], and assembly
    /// as [`Phase::Assemble`] with the scan counters (DESIGN.md §10).
    ///
    /// Output is byte-identical at any file-threads × pattern-shards ×
    /// cache-warmth × dirty-window combination: per-file states are
    /// canonical regardless of how they were computed, and assembly —
    /// where every scan counter is derived — always re-derives from the
    /// full state set (DESIGN.md §8–§10, §14).
    pub fn scan(&self, req: ScanRequest<'_>) -> ScanResult {
        let ScanRequest {
            threads,
            plan,
            obs,
            input,
        } = req;
        let opts = ScanOpts { threads, plan, obs };
        match input {
            ScanInput::Full(corpus) => self.scan_full(corpus, &opts),
            ScanInput::Incremental {
                files,
                process,
                cache,
                stmt_regions,
            } => self.scan_incremental(files, process, cache, stmt_regions, &opts),
        }
    }

    /// Full-corpus scan: the per-file pass plus assembly.
    fn scan_full(&self, corpus: &ProcessedCorpus, opts: &ScanOpts<'_>) -> ScanResult {
        let states =
            self.scan_files_sharded_observed(&corpus.files, opts.threads, &opts.plan, opts.obs);
        let metas: Vec<(&str, &str)> = corpus
            .files
            .iter()
            .map(|f| (f.repo.as_str(), f.path.as_str()))
            .collect();
        let state_refs: Vec<&FileScanState> = states.iter().collect();
        self.assemble_scan_observed(&metas, &state_refs, opts.obs)
    }

    /// Incremental scan against a warm [`ScanCache`]: reuses cached
    /// per-file state for every file whose content digest is already in
    /// `cache`, freshly processes and scans the rest, and inserts the fresh
    /// state — including parse failures, so unparsable files are never
    /// re-parsed — back into `cache`. With `stmt_regions` on, the
    /// fresh-file scan additionally splices per-statement match outcomes
    /// from cached [`StmtRegion`]s (DESIGN.md §14). The cache partition
    /// reports as [`Phase::CacheLookup`] with hit/miss counters; assembly
    /// always re-derives the scan counters from the full per-file state set
    /// (cached and fresh alike), so counter totals match a cold scan.
    fn scan_incremental(
        &self,
        files: &[SourceFile],
        process: &ProcessConfig,
        cache: &mut ScanCache,
        stmt_regions: bool,
        opts: &ScanOpts<'_>,
    ) -> ScanResult {
        let threads = opts.threads;
        let obs = opts.obs;
        let lookup_span = obs.phase(Phase::CacheLookup);
        let digests: Vec<ContentDigest> = files.iter().map(|f| f.content_digest()).collect();
        let mut reused = 0usize;
        let mut fresh = 0usize;
        let mut scheduled: HashSet<ContentDigest> = HashSet::new();
        let mut fresh_refs: Vec<&SourceFile> = Vec::new();
        let mut fresh_digests: Vec<ContentDigest> = Vec::new();
        for (file, &digest) in files.iter().zip(&digests) {
            if cache.contains(digest) {
                reused += 1;
            } else {
                fresh += 1;
                if scheduled.insert(digest) {
                    fresh_refs.push(file);
                    fresh_digests.push(digest);
                }
            }
        }
        drop(lookup_span);
        obs.add(Counter::CacheHits, reused as u64);
        obs.add(Counter::CacheMisses, fresh as u64);

        let mut parsed: Vec<ProcessedFile> = Vec::new();
        let mut parsed_digests: Vec<ContentDigest> = Vec::new();
        let mut failed_digests: Vec<ContentDigest> = Vec::new();
        for (result, digest) in process_each_observed(&fresh_refs, process, threads, obs)
            .into_iter()
            .zip(fresh_digests)
        {
            match result {
                Some(f) => {
                    parsed.push(f);
                    parsed_digests.push(digest);
                }
                None => failed_digests.push(digest),
            }
        }
        let states = if stmt_regions {
            let (states, fresh_regions, hits, misses) =
                self.scan_files_regions_observed(&parsed, cache.regions(), threads, obs);
            obs.add(Counter::StmtCacheHits, hits);
            obs.add(Counter::StmtCacheMisses, misses);
            for (key, region) in fresh_regions {
                cache.insert_region(key, region);
            }
            states
        } else {
            self.scan_files_sharded_observed(&parsed, threads, &opts.plan, obs)
        };
        for (digest, state) in parsed_digests.into_iter().zip(states) {
            cache.insert(digest, CacheEntry::Parsed(state));
        }
        for digest in failed_digests {
            cache.insert(digest, CacheEntry::ParseFailure);
        }

        // Assemble in input order from the now fully populated cache, so
        // ordering (and therefore dedup tie-breaking) matches a full scan.
        let mut metas: Vec<(&str, &str)> = Vec::new();
        let mut state_refs: Vec<&FileScanState> = Vec::new();
        let mut parse_failures = 0usize;
        for (file, &digest) in files.iter().zip(&digests) {
            match cache.get(digest) {
                Some(CacheEntry::Parsed(state)) => {
                    metas.push((file.repo.as_str(), file.path.as_str()));
                    state_refs.push(state);
                }
                Some(CacheEntry::ParseFailure) => parse_failures += 1,
                None => unreachable!("every scheduled digest was inserted above"),
            }
        }
        obs.add(Counter::CacheParseFailures, parse_failures as u64);
        let mut scan = self.assemble_scan_observed(&metas, &state_refs, obs);
        scan.cache = Some(CacheStats {
            reused,
            fresh,
            parse_failures,
        });
        scan
    }

    /// Runs the per-file scan pass over `files` with region splicing:
    /// statements whose span digest (a digest of the statement's extracted
    /// name-path set — the exact input the match stage consumes) is in
    /// `regions` replay their cached match outcomes instead of re-matching;
    /// the rest are matched from scratch and their fresh regions returned
    /// for insertion into the cache. Returns
    /// `(states, fresh_regions, stmt_hits, stmt_misses)`.
    ///
    /// Only the file axis is parallelized here: region splicing makes the
    /// match stage cheap enough that pattern-axis sharding has nothing left
    /// to win, and per-file states are plan-invariant (DESIGN.md §9), so
    /// this produces byte-identical states to the sharded path.
    fn scan_files_regions_observed(
        &self,
        files: &[ProcessedFile],
        regions: &BTreeMap<String, StmtRegion>,
        threads: usize,
        obs: Observer<'_>,
    ) -> RegionChunkOut {
        let _span = obs.phase(Phase::Scan);
        if files.is_empty() {
            return (Vec::new(), Vec::new(), 0, 0);
        }
        let threads = resolve_threads(threads).min(files.len());
        if threads <= 1 {
            return self.scan_chunk_regions(files, regions, obs);
        }
        let chunk_size = files.len().div_ceil(threads);
        let outs: Vec<RegionChunkOut> = crossbeam::scope(|scope| {
            let handles: Vec<_> = files
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move |_| self.scan_chunk_regions(chunk, regions, obs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("region scan worker panicked"))
                .collect()
        })
        .expect("region scan workers do not panic");
        let mut states = Vec::with_capacity(files.len());
        let mut fresh = Vec::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (s, f, h, m) in outs {
            states.extend(s);
            fresh.extend(f);
            hits += h;
            misses += m;
        }
        (states, fresh, hits, misses)
    }

    /// One worker's share of the region scan: scans `files` serially with a
    /// worker-local scratch and a worker-local map of regions freshly
    /// computed within the chunk (so duplicate statements inside the chunk
    /// still hit).
    fn scan_chunk_regions(
        &self,
        files: &[ProcessedFile],
        regions: &BTreeMap<String, StmtRegion>,
        obs: Observer<'_>,
    ) -> RegionChunkOut {
        let start = obs.is_active().then(Instant::now);
        let mut scratch = MatchScratch::for_set(&self.patterns);
        let mut hits: Vec<(usize, Relation)> = Vec::new();
        let mut local: HashMap<String, StmtRegion> = HashMap::new();
        let mut fresh: Vec<(String, StmtRegion)> = Vec::new();
        let mut tallies = (0u64, 0u64);
        let states = files
            .iter()
            .map(|file| {
                self.scan_file_regions(
                    file,
                    regions,
                    &mut local,
                    &mut fresh,
                    &mut scratch,
                    &mut hits,
                    &mut tallies,
                )
            })
            .collect();
        if let Some(start) = start {
            obs.busy(Phase::Scan, start.elapsed().as_nanos() as u64);
        }
        (states, fresh, tallies.0, tallies.1)
    }

    /// Region-splicing variant of [`Detector::scan_file`]: per statement,
    /// either replays the cached [`StmtRegion`] keyed by the statement's
    /// span digest or re-matches and records a fresh region. Line numbers,
    /// rendered text, and content digests are always re-taken from the
    /// *current* statement — only path-derived match outcomes are cached —
    /// so spliced output is byte-identical to a from-scratch scan.
    #[allow(clippy::too_many_arguments)]
    fn scan_file_regions(
        &self,
        file: &ProcessedFile,
        regions: &BTreeMap<String, StmtRegion>,
        local: &mut HashMap<String, StmtRegion>,
        fresh: &mut Vec<(String, StmtRegion)>,
        scratch: &mut MatchScratch,
        hits: &mut Vec<(usize, Relation)>,
        tallies: &mut (u64, u64),
    ) -> FileScanState {
        let mut counts: HashMap<usize, LevelCounts> = HashMap::new();
        let mut digests: HashMap<u64, u64> = HashMap::new();
        let mut raw: Vec<RawHit> = Vec::new();
        let mut spans: Vec<String> = Vec::new();
        for stmt in &file.stmts {
            *digests.entry(stmt.digest).or_default() += 1;
            let key = span_digest(&stmt.paths).to_hex();
            if !regions.contains_key(&key) && !local.contains_key(&key) {
                tallies.1 += 1;
                self.patterns.check_into(&stmt.paths, scratch, hits);
                let mut outcomes = Vec::with_capacity(hits.len());
                for (pattern_idx, rel) in hits.drain(..) {
                    let satisfied = rel == Relation::Satisfied;
                    let names = match rel {
                        Relation::Violated(detail) => {
                            Some(self.orient(detail.original, detail.suggested))
                        }
                        _ => None,
                    };
                    outcomes.push(RegionOutcome {
                        pattern_idx,
                        satisfied,
                        names,
                    });
                }
                let region = StmtRegion { outcomes };
                fresh.push((key.clone(), region.clone()));
                local.insert(key.clone(), region);
            } else {
                tallies.0 += 1;
            }
            let region = regions
                .get(&key)
                .or_else(|| local.get(&key))
                .expect("region computed or cached above");
            for o in &region.outcomes {
                counts.entry(o.pattern_idx).or_default().record(o.satisfied);
                if let Some((original, suggested)) = o.names {
                    raw.push(RawHit {
                        line: stmt.line,
                        rendered: stmt.rendered.clone(),
                        digest: stmt.digest,
                        path_count: stmt.paths.len(),
                        pattern_idx: o.pattern_idx,
                        original,
                        suggested,
                    });
                }
            }
            spans.push(key);
        }
        let mut pattern_counts: Vec<(usize, LevelCounts)> = counts.into_iter().collect();
        pattern_counts.sort_unstable_by_key(|e| e.0);
        let mut digest_counts: Vec<(u64, u64)> = digests.into_iter().collect();
        digest_counts.sort_unstable_by_key(|e| e.0);
        FileScanState {
            pattern_counts,
            digest_counts,
            raw,
            spans,
        }
    }

    /// The per-file scan pass, sharded across `threads` file-chunk workers
    /// (`0` = all cores) with results re-joined in input order; the pattern
    /// set is additionally split into prefix-disjoint shards (`plan`) so
    /// each file chunk is matched by one worker per pattern shard, with
    /// per-shard partials merged back into canonical order (DESIGN.md §9).
    /// The returned states are byte-identical at any threads × shards
    /// combination. The pass
    /// reports as [`Phase::Scan`] wall time, every worker contributes
    /// [`Phase::Scan`] busy time, and sharded workers additionally report
    /// per-shard busy time (the load-imbalance input of DESIGN.md §10).
    fn scan_files_sharded_observed(
        &self,
        files: &[ProcessedFile],
        threads: usize,
        plan: &ShardPlan,
        obs: Observer<'_>,
    ) -> Vec<FileScanState> {
        let _span = obs.phase(Phase::Scan);
        if files.is_empty() {
            return Vec::new();
        }
        let shards = match plan.effective(self.patterns.len()) {
            0 | 1 => None,
            _ => Some(self.patterns.shard(plan)),
        };
        let shards = match shards {
            Some(sh) if sh.shard_count() > 1 => sh,
            _ => return self.scan_files_unsharded(files, threads, obs),
        };
        let threads = resolve_threads(threads).min(files.len());
        let chunk_size = files.len().div_ceil(threads.max(1)).max(1);
        let k = shards.shard_count();
        crossbeam::scope(|scope| {
            let shards = &shards;
            // One worker per (file chunk × pattern shard): with few files
            // and many patterns the shard axis supplies the parallelism,
            // with many files the chunk axis does, and the merge is the
            // same either way.
            let handles: Vec<Vec<_>> = files
                .chunks(chunk_size)
                .map(|chunk| {
                    (0..k)
                        .map(|shard| {
                            scope.spawn(move |_| {
                                let start = obs.is_active().then(Instant::now);
                                let mut scratch = MatchScratch::for_set(&self.patterns);
                                let mut hits: Vec<ShardHit> = Vec::new();
                                let part = chunk
                                    .iter()
                                    .map(|f| {
                                        self.scan_file_shard(f, shards, shard, &mut scratch, &mut hits)
                                    })
                                    .collect::<Vec<_>>();
                                if let Some(start) = start {
                                    let nanos = start.elapsed().as_nanos() as u64;
                                    obs.busy(Phase::Scan, nanos);
                                    obs.shard_busy(shard, nanos);
                                }
                                part
                            })
                        })
                        .collect()
                })
                .collect();
            let mut out: Vec<FileScanState> = Vec::with_capacity(files.len());
            for chunk_handles in handles {
                let per_shard: Vec<Vec<ShardFilePartial>> = chunk_handles
                    .into_iter()
                    .map(|h| h.join().expect("shard scan worker panicked"))
                    .collect();
                let files_in_chunk = per_shard[0].len();
                let mut columns: Vec<_> = per_shard.into_iter().map(Vec::into_iter).collect();
                for _ in 0..files_in_chunk {
                    let parts: Vec<ShardFilePartial> = columns
                        .iter_mut()
                        .map(|it| it.next().expect("equal files per shard column"))
                        .collect();
                    out.push(merge_file_partials(parts));
                }
            }
            out
        })
        .expect("scan workers do not panic")
    }

    /// The pre-sharding scan loop: file-chunk workers only. Workers report
    /// [`Phase::Scan`] busy time; shard busy slots stay untouched (there is
    /// exactly one pattern shard).
    fn scan_files_unsharded(
        &self,
        files: &[ProcessedFile],
        threads: usize,
        obs: Observer<'_>,
    ) -> Vec<FileScanState> {
        let threads = resolve_threads(threads).min(files.len().max(1));
        if threads <= 1 {
            let start = obs.is_active().then(Instant::now);
            let mut scratch = MatchScratch::for_set(&self.patterns);
            let mut hits: Vec<(usize, Relation)> = Vec::new();
            let out = files
                .iter()
                .map(|f| self.scan_file(f, &mut scratch, &mut hits))
                .collect();
            if let Some(start) = start {
                obs.busy(Phase::Scan, start.elapsed().as_nanos() as u64);
            }
            out
        } else {
            let chunk_size = files.len().div_ceil(threads);
            crossbeam::scope(|scope| {
                let handles: Vec<_> = files
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            let start = obs.is_active().then(Instant::now);
                            let mut scratch = MatchScratch::for_set(&self.patterns);
                            let mut hits: Vec<(usize, Relation)> = Vec::new();
                            let part = chunk
                                .iter()
                                .map(|f| self.scan_file(f, &mut scratch, &mut hits))
                                .collect::<Vec<_>>();
                            if let Some(start) = start {
                                obs.busy(Phase::Scan, start.elapsed().as_nanos() as u64);
                            }
                            part
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("scan worker panicked"))
                    .collect()
            })
            .expect("scan workers do not panic")
        }
    }

    /// Orients a violation's (original, suggested) pair. Consistency
    /// violations are orientation-agnostic (either name could be the
    /// mistake); when the mined confusing pairs know the direction, use it.
    fn orient(&self, original: Sym, suggested: Sym) -> (Sym, Sym) {
        if self.pairs.contains(suggested, original) && !self.pairs.contains(original, suggested) {
            (suggested, original)
        } else {
            (original, suggested)
        }
    }

    /// Scans one file: relations per statement, accumulated into the file's
    /// own [`FileScanState`].
    fn scan_file(
        &self,
        file: &ProcessedFile,
        scratch: &mut MatchScratch,
        hits: &mut Vec<(usize, Relation)>,
    ) -> FileScanState {
        let mut counts: HashMap<usize, LevelCounts> = HashMap::new();
        let mut digests: HashMap<u64, u64> = HashMap::new();
        let mut raw: Vec<RawHit> = Vec::new();
        for stmt in &file.stmts {
            *digests.entry(stmt.digest).or_default() += 1;
            self.patterns.check_into(&stmt.paths, scratch, hits);
            for (pidx, rel) in hits.drain(..) {
                let satisfied = rel == Relation::Satisfied;
                counts.entry(pidx).or_default().record(satisfied);
                if let Relation::Violated(detail) = rel {
                    let (original, suggested) = self.orient(detail.original, detail.suggested);
                    raw.push(RawHit {
                        line: stmt.line,
                        rendered: stmt.rendered.clone(),
                        digest: stmt.digest,
                        path_count: stmt.paths.len(),
                        pattern_idx: pidx,
                        original,
                        suggested,
                    });
                }
            }
        }
        let mut pattern_counts: Vec<(usize, LevelCounts)> = counts.into_iter().collect();
        pattern_counts.sort_unstable_by_key(|e| e.0);
        let mut digest_counts: Vec<(u64, u64)> = digests.into_iter().collect();
        digest_counts.sort_unstable_by_key(|e| e.0);
        FileScanState {
            pattern_counts,
            digest_counts,
            raw,
            spans: Vec::new(),
        }
    }

    /// Scans one file against one pattern shard, producing a partial state
    /// whose raw hits carry their merge key (statement index + prefix
    /// position). Digest counts are pattern-independent and are computed by
    /// shard 0 only.
    fn scan_file_shard(
        &self,
        file: &ProcessedFile,
        shards: &PatternShards,
        shard: usize,
        scratch: &mut MatchScratch,
        hits: &mut Vec<ShardHit>,
    ) -> ShardFilePartial {
        let mut counts: HashMap<usize, LevelCounts> = HashMap::new();
        let mut digests: HashMap<u64, u64> = HashMap::new();
        let mut raw: Vec<TaggedRawHit> = Vec::new();
        for (stmt_i, stmt) in file.stmts.iter().enumerate() {
            if shard == 0 {
                *digests.entry(stmt.digest).or_default() += 1;
            }
            self.patterns
                .check_shard_into(shards, shard, &stmt.paths, scratch, hits);
            for h in hits.drain(..) {
                let satisfied = h.relation == Relation::Satisfied;
                counts.entry(h.pattern_idx).or_default().record(satisfied);
                if let Relation::Violated(detail) = h.relation {
                    let (original, suggested) = self.orient(detail.original, detail.suggested);
                    raw.push(TaggedRawHit {
                        stmt: stmt_i as u32,
                        pos: h.pos,
                        hit: RawHit {
                            line: stmt.line,
                            rendered: stmt.rendered.clone(),
                            digest: stmt.digest,
                            path_count: stmt.paths.len(),
                            pattern_idx: h.pattern_idx,
                            original,
                            suggested,
                        },
                    });
                }
            }
        }
        let mut pattern_counts: Vec<(usize, LevelCounts)> = counts.into_iter().collect();
        pattern_counts.sort_unstable_by_key(|e| e.0);
        let mut digest_counts: Vec<(u64, u64)> = digests.into_iter().collect();
        digest_counts.sort_unstable_by_key(|e| e.0);
        ShardFilePartial {
            pattern_counts,
            digest_counts,
            raw,
        }
    }

    /// Assembles per-file scan states into a [`ScanResult`]: merges repo
    /// aggregates (commutative addition, so any mix of cached and fresh
    /// states works), computes Table 1 features, and deduplicates report
    /// candidates. `metas[i]` is the `(repo, path)` identity of `states[i]`;
    /// files must be given in corpus order, which fixes dedup tie-breaking.
    ///
    /// Assembly is where
    /// every scan counter is derived, deliberately: the per-file states are
    /// byte-identical at any (threads × shards) combination and across the
    /// cached/fresh split (DESIGN.md §8–§9), so counting here — rather than
    /// inside the workers — is what makes the counter totals deterministic
    /// (DESIGN.md §10).
    ///
    /// # Panics
    ///
    /// Panics if `metas` and `states` have different lengths.
    fn assemble_scan_observed(
        &self,
        metas: &[(&str, &str)],
        states: &[&FileScanState],
        obs: Observer<'_>,
    ) -> ScanResult {
        assert_eq!(metas.len(), states.len(), "one meta per state");
        let _span = obs.phase(Phase::Assemble);
        if obs.is_active() {
            let mut stmts = 0u64;
            let mut matches = 0u64;
            let mut sats = 0u64;
            for state in states {
                stmts += state.digest_counts.iter().map(|&(_, n)| n).sum::<u64>();
                for &(_, c) in &state.pattern_counts {
                    matches += c.matches;
                    sats += c.satisfactions;
                }
            }
            obs.add(Counter::FilesScanned, metas.len() as u64);
            obs.add(Counter::StatementsScanned, stmts);
            obs.add(Counter::PatternMatches, matches);
            obs.add(Counter::PatternSatisfactions, sats);
        }
        let mut repo_counts: HashMap<&str, HashMap<usize, LevelCounts>> = HashMap::new();
        let mut repo_digests: HashMap<&str, HashMap<u64, u64>> = HashMap::new();
        let mut files_with_violation = 0usize;
        let mut repos_with_violation: HashSet<&str> = HashSet::new();
        for (&(repo, _), state) in metas.iter().zip(states) {
            let slot = repo_counts.entry(repo).or_default();
            for &(pidx, c) in &state.pattern_counts {
                slot.entry(pidx).or_default().add(c);
            }
            let dig = repo_digests.entry(repo).or_default();
            for &(digest, n) in &state.digest_counts {
                *dig.entry(digest).or_default() += n;
            }
            if !state.raw.is_empty() {
                files_with_violation += 1;
                repos_with_violation.insert(repo);
            }
        }

        let mut violations: Vec<Violation> = Vec::new();
        for (&(repo, path), state) in metas.iter().zip(states) {
            for r in &state.raw {
                let pattern = &self.patterns.patterns[r.pattern_idx];
                let inputs = FeatureInputs {
                    pattern,
                    stmt_path_count: r.path_count,
                    identical_in_file: lookup_u64(&state.digest_counts, r.digest).unwrap_or(1),
                    identical_in_repo: repo_digests
                        .get(repo)
                        .and_then(|m| m.get(&r.digest))
                        .copied()
                        .unwrap_or(1),
                    file: lookup_counts(&state.pattern_counts, r.pattern_idx)
                        .unwrap_or_default(),
                    repo: repo_counts
                        .get(repo)
                        .and_then(|m| m.get(&r.pattern_idx))
                        .copied()
                        .unwrap_or_default(),
                    dataset: self.dataset[r.pattern_idx],
                    original: r.original,
                    suggested: r.suggested,
                };
                violations.push(Violation {
                    repo: repo.to_owned(),
                    path: path.to_owned(),
                    line: r.line,
                    original: r.original,
                    suggested: r.suggested,
                    pattern_idx: r.pattern_idx,
                    pattern_ty: pattern.ty,
                    rendered: r.rendered.clone(),
                    features: features::extract(&inputs, &self.pairs),
                    detected_by_both: false,
                });
            }
        }

        let raw_count = violations.len();
        let violations = dedup_violations(violations, self);
        obs.add(Counter::ViolationsRaw, raw_count as u64);
        obs.add(Counter::ViolationsDeduped, violations.len() as u64);

        ScanResult {
            violations,
            raw_violation_count: raw_count,
            files_scanned: metas.len(),
            files_with_violation,
            repos_with_violation: repos_with_violation.len(),
            cache: None,
        }
    }
}

/// A [`RawHit`] tagged with its merge key: the statement index within the
/// file and the matched-prefix position within the statement.
struct TaggedRawHit {
    stmt: u32,
    pos: u32,
    hit: RawHit,
}

/// One pattern shard's view of one file, produced by `scan_file_shard`.
struct ShardFilePartial {
    /// Counts for this shard's patterns only (shards partition the set, so
    /// the per-shard vectors are index-disjoint).
    pattern_counts: Vec<(usize, LevelCounts)>,
    /// Statement-digest counts; populated by shard 0 only (they do not
    /// depend on patterns).
    digest_counts: Vec<(u64, u64)>,
    /// Violations found by this shard, tagged for merging.
    raw: Vec<TaggedRawHit>,
}

/// Merges the per-shard partial states of one file into the exact
/// [`FileScanState`] an unsharded scan produces.
///
/// The unsharded scan emits each statement's hits by walking the
/// statement's path prefixes in order and, per prefix, its candidate
/// patterns in ascending index order. A pattern hits at most once per
/// statement and belongs to exactly one shard, so sorting the union of all
/// shards' tagged hits by `(statement, prefix position, pattern index)` —
/// a key that is unique per hit — reproduces the serial order exactly.
/// Pattern counts are index-disjoint across shards and digest counts come
/// from shard 0 alone, so both merge by concatenation.
fn merge_file_partials(parts: Vec<ShardFilePartial>) -> FileScanState {
    let mut pattern_counts: Vec<(usize, LevelCounts)> = Vec::new();
    let mut digest_counts: Vec<(u64, u64)> = Vec::new();
    let mut tagged: Vec<TaggedRawHit> = Vec::new();
    for (shard, part) in parts.into_iter().enumerate() {
        pattern_counts.extend(part.pattern_counts);
        if shard == 0 {
            digest_counts = part.digest_counts;
        }
        tagged.extend(part.raw);
    }
    pattern_counts.sort_unstable_by_key(|e| e.0);
    tagged.sort_unstable_by(|a, b| {
        (a.stmt, a.pos, a.hit.pattern_idx).cmp(&(b.stmt, b.pos, b.hit.pattern_idx))
    });
    FileScanState {
        pattern_counts,
        digest_counts,
        raw: tagged.into_iter().map(|t| t.hit).collect(),
        spans: Vec::new(),
    }
}

/// Binary-search lookup in a sorted `(key, count)` vector.
fn lookup_u64(v: &[(u64, u64)], key: u64) -> Option<u64> {
    v.binary_search_by_key(&key, |e| e.0).ok().map(|i| v[i].1)
}

/// Binary-search lookup in a sorted `(pattern_idx, counts)` vector.
fn lookup_counts(v: &[(usize, LevelCounts)], key: usize) -> Option<LevelCounts> {
    v.binary_search_by_key(&key, |e| e.0).ok().map(|i| v[i].1)
}

/// Collapses violations to one *report candidate* per
/// `(location, original, suggested)`, keeping the violation whose pattern
/// has the most dataset evidence. Statements flagged by both pattern types
/// are marked (`detected_by_both`).
fn dedup_violations(violations: Vec<Violation>, det: &Detector) -> Vec<Violation> {
    let mut best: HashMap<(String, String, u32, Sym, Sym), Violation> = HashMap::new();
    let mut types: HashMap<(String, String, u32, Sym, Sym), (bool, bool)> = HashMap::new();
    for v in violations {
        let key = (
            v.repo.clone(),
            v.path.clone(),
            v.line,
            v.original,
            v.suggested,
        );
        let t = types.entry(key.clone()).or_default();
        match v.pattern_ty {
            crate::detector::PatternTypeAlias::Consistency => t.0 = true,
            crate::detector::PatternTypeAlias::ConfusingWord => t.1 = true,
        }
        let evidence = |x: &Violation| det.dataset[x.pattern_idx].matches;
        match best.get(&key) {
            Some(cur) if evidence(cur) >= evidence(&v) => {}
            _ => {
                best.insert(key, v);
            }
        }
    }
    let mut out: Vec<Violation> = best
        .into_iter()
        .map(|(key, mut v)| {
            let (c, w) = types[&key];
            v.detected_by_both = c && w;
            v
        })
        .collect();
    out.sort_by(|a, b| {
        (&a.repo, &a.path, a.line, a.original, a.suggested)
            .cmp(&(&b.repo, &b.path, b.line, b.original, b.suggested))
    });
    out
}

/// Local alias so the dedup match reads naturally.
use namer_patterns::PatternType as PatternTypeAlias;

/// Output of [`Detector::scan`].
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// Report candidates: one violation per (location, suggestion), most
    /// evidenced pattern first.
    pub violations: Vec<Violation>,
    /// Violation count before per-location deduplication.
    pub raw_violation_count: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Files with at least one violation (§5.2 coverage).
    pub files_with_violation: usize,
    /// Repositories with at least one violation.
    pub repos_with_violation: usize,
    /// Cache accounting for incremental scans; `None` for full scans.
    pub cache: Option<CacheStats>,
}

/// Per-file cache accounting from an incremental [`Detector::scan`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Input files served from pre-existing cache entries.
    pub reused: usize,
    /// Input files that required a fresh parse + scan.
    pub fresh: usize,
    /// Input files recorded (now or previously) as unparsable.
    pub parse_failures: usize,
}

/// What to scan: an already-processed corpus, or raw files against a
/// [`ScanCache`]. See [`ScanRequest`].
pub enum ScanInput<'a> {
    /// Full scan of a preprocessed corpus.
    Full(&'a ProcessedCorpus),
    /// Incremental scan of raw files against a warm cache.
    Incremental {
        /// The files to scan, in corpus order.
        files: &'a [SourceFile],
        /// Processing configuration for fresh files (must match the
        /// fingerprint the cache was loaded with).
        process: &'a ProcessConfig,
        /// The cache to reuse and update in place.
        cache: &'a mut ScanCache,
        /// Splice per-statement match outcomes from cached
        /// [`StmtRegion`]s (DESIGN.md §14). Off = file-granular
        /// incremental scanning, the pre-region behaviour.
        stmt_regions: bool,
    },
}

/// Options-struct argument of [`Detector::scan`] — the one scan entry
/// point. Build with [`ScanRequest::full`] or [`ScanRequest::incremental`],
/// then chain [`ScanRequest::threads`] / [`ScanRequest::plan`] /
/// [`ScanRequest::observer`] / [`ScanRequest::file_granular`] as needed.
///
/// Defaults: one thread, unsharded plan, no observer, statement-region
/// splicing on for incremental scans.
pub struct ScanRequest<'a> {
    threads: usize,
    plan: ShardPlan,
    obs: Observer<'a>,
    input: ScanInput<'a>,
}

impl<'a> ScanRequest<'a> {
    /// A full scan of an already-processed corpus.
    pub fn full(corpus: &'a ProcessedCorpus) -> Self {
        Self::new(ScanInput::Full(corpus))
    }

    /// An incremental scan of `files` against `cache` (statement-region
    /// splicing on by default; see [`ScanRequest::file_granular`]). The
    /// caller pairs `cache` with [`Detector::fingerprint`] over the same
    /// `process` config and shard plan so stale caches degrade to a cold
    /// scan, never a wrong one.
    pub fn incremental(
        files: &'a [SourceFile],
        process: &'a ProcessConfig,
        cache: &'a mut ScanCache,
    ) -> Self {
        Self::new(ScanInput::Incremental {
            files,
            process,
            cache,
            stmt_regions: true,
        })
    }

    /// A request with explicit input and default options.
    pub fn new(input: ScanInput<'a>) -> Self {
        ScanRequest {
            threads: 1,
            plan: ShardPlan::unsharded(),
            obs: Observer::none(),
            input,
        }
    }

    /// Fan the scan out over `threads` workers (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Split the pattern set into prefix-disjoint shards per DESIGN.md §9.
    pub fn plan(mut self, plan: ShardPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Report phases and counters to `obs` (DESIGN.md §10).
    pub fn observer(mut self, obs: Observer<'a>) -> Self {
        self.obs = obs;
        self
    }

    /// Disable statement-region splicing: incremental scans re-match whole
    /// fresh files, the pre-§14 behaviour. No effect on full scans.
    pub fn file_granular(mut self) -> Self {
        if let ScanInput::Incremental {
            ref mut stmt_regions,
            ..
        } = self.input
        {
            *stmt_regions = false;
        }
        self
    }
}

/// The option fields of a [`ScanRequest`], split off so the borrow of the
/// incremental input's `&mut ScanCache` can travel separately.
struct ScanOpts<'a> {
    threads: usize,
    plan: ShardPlan,
    obs: Observer<'a>,
}

/// One region-scan worker's output:
/// `(states, fresh_regions, stmt_hits, stmt_misses)`.
type RegionChunkOut = (Vec<FileScanState>, Vec<(String, StmtRegion)>, u64, u64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{process, ProcessConfig};

    fn tiny_corpus() -> (Vec<SourceFile>, Vec<(String, String)>) {
        let mut files = Vec::new();
        for i in 0..30 {
            files.push(SourceFile::new(
                format!("repo{}", i % 5),
                format!("f{i}.py"),
                "class T(TestCase):\n    def test_a(self):\n        self.assertEqual(value.count, 4)\n",
                Lang::Python,
            ));
        }
        files.push(SourceFile::new(
            "repo0",
            "bad.py",
            "class T(TestCase):\n    def test_b(self):\n        self.assertTrue(value.count, 4)\n",
            Lang::Python,
        ));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        (files, commits)
    }

    fn small_mining() -> MiningConfig {
        MiningConfig {
            min_path_count: 2,
            min_support: 5,
            ..MiningConfig::default()
        }
    }

    fn scan_key(scan: &ScanResult) -> Vec<(String, [u64; FEATURE_COUNT], bool)> {
        scan.violations
            .iter()
            .map(|v| {
                (
                    v.to_string(),
                    v.features.map(f64::to_bits),
                    v.detected_by_both,
                )
            })
            .collect()
    }

    #[test]
    fn detects_injected_wrong_api() {
        let (files, commits) = tiny_corpus();
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        assert!(det.pattern_count() > 0);
        let scan = det.scan(ScanRequest::full(&corpus));
        let hit = scan
            .violations
            .iter()
            .find(|v| v.path == "bad.py")
            .expect("the buggy file is flagged");
        assert_eq!(hit.original.as_str(), "True");
        assert_eq!(hit.suggested.as_str(), "Equal");
        assert_eq!(hit.line, 3);
    }

    #[test]
    fn features_reflect_local_context() {
        let (files, commits) = tiny_corpus();
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let scan = det.scan(ScanRequest::full(&corpus));
        let v = scan.violations.iter().find(|v| v.path == "bad.py").unwrap();
        // One-off statement: exactly one identical copy in its file.
        assert_eq!(v.features[1], 1.0);
        // The mined pattern is a confusing-word, function-name pattern.
        assert_eq!(v.features[12], 1.0);
        // Dataset satisfaction rate is high (30 good vs 1 bad).
        assert!(v.features[5] > 0.8, "{}", v.features[5]);
        // Mined pair feature fires.
        assert_eq!(v.features[16], 1.0);
    }

    #[test]
    fn scan_reports_coverage() {
        let (files, commits) = tiny_corpus();
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let scan = det.scan(ScanRequest::full(&corpus));
        assert_eq!(scan.files_scanned, 31);
        assert!(scan.files_with_violation >= 1);
        assert!(scan.repos_with_violation >= 1);
    }

    #[test]
    fn satisfied_corpus_yields_no_violations() {
        let files: Vec<SourceFile> = (0..20)
            .map(|i| {
                SourceFile::new(
                    "r",
                    format!("f{i}.py"),
                    "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n",
                    Lang::Python,
                )
            })
            .collect();
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let scan = det.scan(ScanRequest::full(&corpus));
        assert!(scan.violations.is_empty());
    }

    #[test]
    fn incremental_cold_scan_matches_full_scan() {
        let (files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let full = det.scan(ScanRequest::full(&corpus));
        let mut cache = ScanCache::empty(det.fingerprint(&config, &ShardPlan::unsharded()));
        let inc = det.scan(ScanRequest::incremental(&files, &config, &mut cache));
        let stats = inc.cache.expect("incremental scans report cache stats");
        assert_eq!(stats.reused, 0);
        assert_eq!(stats.fresh, files.len());
        assert_eq!(scan_key(&full), scan_key(&inc));
        assert_eq!(full.raw_violation_count, inc.raw_violation_count);
        assert_eq!(full.files_scanned, inc.files_scanned);
        assert_eq!(full.files_with_violation, inc.files_with_violation);
        assert_eq!(full.repos_with_violation, inc.repos_with_violation);
    }

    #[test]
    fn incremental_warm_scan_reuses_everything() {
        let (files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let full = det.scan(ScanRequest::full(&corpus));
        let mut cache = ScanCache::empty(det.fingerprint(&config, &ShardPlan::unsharded()));
        det.scan(ScanRequest::incremental(&files, &config, &mut cache));
        let warm = det.scan(ScanRequest::incremental(&files, &config, &mut cache));
        let stats = warm.cache.unwrap();
        assert_eq!(stats.fresh, 0);
        assert_eq!(stats.reused, files.len());
        assert_eq!(scan_key(&full), scan_key(&warm));
    }

    #[test]
    fn incremental_records_parse_failures_once() {
        let (mut files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        files.push(SourceFile::new("repo0", "broken.py", "def broken(:\n", Lang::Python));
        let mut cache = ScanCache::empty(det.fingerprint(&config, &ShardPlan::unsharded()));
        let cold = det.scan(ScanRequest::incremental(&files, &config, &mut cache));
        assert_eq!(cold.cache.unwrap().parse_failures, 1);
        let warm = det.scan(ScanRequest::incremental(&files, &config, &mut cache));
        assert_eq!(warm.cache.unwrap().parse_failures, 1);
        assert_eq!(warm.cache.unwrap().fresh, 0);
        assert_eq!(cold.files_scanned, warm.files_scanned);
    }

    #[test]
    fn sharded_scan_is_byte_identical_to_unsharded() {
        let (files, commits) = tiny_corpus();
        let corpus = process(&files, &ProcessConfig::default());
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let reference = det.scan(ScanRequest::full(&corpus));
        for threads in [1usize, 2, 8] {
            for shards in [1usize, 2, 4] {
                let plan = ShardPlan {
                    shards,
                    min_patterns: 0,
                };
                let scan = det.scan(ScanRequest::full(&corpus).threads(threads).plan(plan));
                assert_eq!(
                    scan_key(&reference),
                    scan_key(&scan),
                    "sharded scan diverges at {threads} threads x {shards} shards"
                );
                assert_eq!(reference.raw_violation_count, scan.raw_violation_count);
                assert_eq!(reference.files_with_violation, scan.files_with_violation);
            }
        }
    }

    #[test]
    fn sharded_incremental_scan_matches_full_scan() {
        let (files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let full = det.scan(ScanRequest::full(&corpus));
        let plan = ShardPlan {
            shards: 4,
            min_patterns: 0,
        };
        let mut cache = ScanCache::empty(det.fingerprint(&config, &plan));
        let cold = det.scan(
            ScanRequest::incremental(&files, &config, &mut cache)
                .threads(2)
                .plan(plan),
        );
        assert_eq!(scan_key(&full), scan_key(&cold));
        let warm = det.scan(
            ScanRequest::incremental(&files, &config, &mut cache)
                .threads(2)
                .plan(plan),
        );
        assert_eq!(warm.cache.unwrap().fresh, 0);
        assert_eq!(scan_key(&full), scan_key(&warm));
    }

    #[test]
    fn fingerprint_tracks_shard_plan() {
        let (files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let base = det.fingerprint(&config, &ShardPlan::unsharded());
        assert_ne!(
            base,
            det.fingerprint(&config, &ShardPlan::with_shards(4)),
            "shard plan is part of the cache key"
        );
    }

    #[test]
    fn fingerprint_tracks_pattern_set_and_config() {
        let (files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let plan = ShardPlan::unsharded();
        let base = det.fingerprint(&config, &plan);
        assert_eq!(base, det.fingerprint(&config, &plan), "fingerprint is stable");
        let truncated = DetectorSpec::new(
            det.patterns.patterns[..det.pattern_count() - 1].to_vec(),
            det.pairs.clone(),
            det.dataset[..det.pattern_count() - 1].to_vec(),
        )
        .build();
        assert_ne!(base, truncated.fingerprint(&config, &plan));
        let no_analysis = ProcessConfig {
            use_analysis: false,
            ..ProcessConfig::default()
        };
        assert_ne!(base, det.fingerprint(&no_analysis, &plan));
    }

    #[test]
    fn region_splice_matches_file_granular_and_full() {
        let (mut files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let fp = det.fingerprint(&config, &ShardPlan::unsharded());
        let mut warm_region = ScanCache::empty(fp);
        let mut warm_file = ScanCache::empty(fp);
        det.scan(ScanRequest::incremental(&files, &config, &mut warm_region));
        det.scan(ScanRequest::incremental(&files, &config, &mut warm_file).file_granular());
        assert!(
            !warm_region.regions().is_empty(),
            "region scan populates statement regions"
        );
        assert!(
            warm_file.regions().is_empty(),
            "file-granular scan does not populate regions"
        );
        // Edit one file: append a second buggy statement. The edited file
        // re-scans; everything it shares with the cached regions splices.
        files[5] = SourceFile::new(
            "repo0",
            "f5.py",
            "class T(TestCase):\n    def test_a(self):\n        self.assertEqual(value.count, 4)\n        self.assertTrue(value.count, 5)\n",
            Lang::Python,
        );
        let full = det.scan(ScanRequest::full(&process(&files, &config)));
        let spliced = det.scan(ScanRequest::incremental(&files, &config, &mut warm_region));
        let granular = det.scan(ScanRequest::incremental(&files, &config, &mut warm_file).file_granular());
        assert_eq!(scan_key(&full), scan_key(&spliced));
        assert_eq!(scan_key(&full), scan_key(&granular));
        assert_eq!(spliced.cache.unwrap().fresh, 1);
    }

    #[test]
    fn region_splice_counts_hits_and_misses() {
        let (mut files, commits) = tiny_corpus();
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(&corpus, &commits, Lang::Python, &small_mining());
        let mut cache = ScanCache::empty(det.fingerprint(&config, &ShardPlan::unsharded()));
        let metrics = namer_observe::PipelineMetrics::new();
        det.scan(
            ScanRequest::incremental(&files, &config, &mut cache)
                .observer(Observer::new(&metrics)),
        );
        let cold = metrics.snapshot();
        assert_eq!(cold.counter(Counter::StmtCacheHits), 0);
        assert!(cold.counter(Counter::StmtCacheMisses) > 0);
        files[3] = SourceFile::new(
            "repo3",
            "f3.py",
            "class T(TestCase):\n    def test_a(self):\n        self.assertEqual(value.count, 9)\n",
            Lang::Python,
        );
        let metrics = namer_observe::PipelineMetrics::new();
        det.scan(
            ScanRequest::incremental(&files, &config, &mut cache)
                .observer(Observer::new(&metrics)),
        );
        let warm = metrics.snapshot();
        assert!(
            warm.counter(Counter::StmtCacheHits) > 0,
            "unchanged statements in the edited file splice from regions"
        );
    }
}
