//! The unified error type of the builder/session API (DESIGN.md §9).
//!
//! Hand-rolled `Display`/`Error` impls in the `thiserror` style — the crate
//! has no error-derive dependency and does not need one for four variants.

use crate::persist::PersistError;
use std::path::PathBuf;

/// Everything that can go wrong building or running a
/// [`DetectSession`](crate::session::DetectSession), or in the CLI front
/// end wrapped around it.
#[derive(Debug)]
pub enum NamerError {
    /// An I/O operation on `path` failed.
    Io {
        /// The file or directory being read or written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A saved model or cache file exists but cannot be used.
    Model(PersistError),
    /// The builder was asked for an impossible configuration.
    InvalidConfig(String),
    /// A command-line usage error (bad flag, missing argument).
    Usage(String),
}

impl std::fmt::Display for NamerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NamerError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            NamerError::Model(e) => write!(f, "loading model: {e}"),
            NamerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NamerError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for NamerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NamerError::Io { source, .. } => Some(source),
            NamerError::Model(e) => Some(e),
            NamerError::InvalidConfig(_) | NamerError::Usage(_) => None,
        }
    }
}

impl From<PersistError> for NamerError {
    fn from(e: PersistError) -> NamerError {
        NamerError::Model(e)
    }
}

impl NamerError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> NamerError {
        NamerError::Io {
            path: path.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_includes_path_and_cause() {
        let e = NamerError::io(
            "/tmp/model.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let msg = e.to_string();
        assert!(msg.contains("/tmp/model.json"), "{msg}");
        assert!(msg.contains("gone"), "{msg}");
        assert!(e.source().is_some());
    }

    #[test]
    fn persist_errors_convert() {
        let e: NamerError = PersistError::UnsupportedVersion(99).into();
        assert!(matches!(e, NamerError::Model(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn usage_and_config_have_no_source() {
        assert!(NamerError::Usage("bad flag".into()).source().is_none());
        assert!(NamerError::InvalidConfig("no patterns".into())
            .source()
            .is_none());
    }
}
