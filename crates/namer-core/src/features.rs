//! The 17 violation features of Table 1.

use namer_patterns::{ConfusingPairs, NamePattern};
use namer_syntax::Sym;
use serde::{Deserialize, Serialize};

/// Number of features (Table 1).
pub const FEATURE_COUNT: usize = 17;

/// Human-readable feature names, indexed as in Table 1 (0-based here).
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "number of name paths of s",
    "identical statements (file)",
    "identical statements (repo)",
    "satisfaction rate of p (file)",
    "satisfaction rate of p (repo)",
    "satisfaction rate of p (dataset)",
    "violations of p (file)",
    "violations of p (repo)",
    "violations of p (dataset)",
    "satisfactions of p (file)",
    "satisfactions of p (repo)",
    "satisfactions of p (dataset)",
    "p targets a function name",
    "condition size of p",
    "match ratio between p and s",
    "edit distance original/suggested",
    "original/suggested is a confusing pair",
];

/// Match/satisfaction/violation counts of one pattern at one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelCounts {
    /// Number of statements matching the pattern.
    pub matches: u64,
    /// Number of satisfying statements.
    pub satisfactions: u64,
    /// Number of violating statements.
    pub violations: u64,
}

impl LevelCounts {
    /// satisfactions / matches, `0` when unmatched.
    pub fn satisfaction_rate(&self) -> f64 {
        if self.matches == 0 {
            0.0
        } else {
            self.satisfactions as f64 / self.matches as f64
        }
    }

    /// Accumulates one relation outcome.
    pub fn record(&mut self, satisfied: bool) {
        self.matches += 1;
        if satisfied {
            self.satisfactions += 1;
        } else {
            self.violations += 1;
        }
    }

    /// Accumulates another count set (merging per-shard counts of the
    /// parallel scan).
    pub fn add(&mut self, other: LevelCounts) {
        self.matches += other.matches;
        self.satisfactions += other.satisfactions;
        self.violations += other.violations;
    }
}

/// Everything feature extraction needs about one violation's context.
#[derive(Clone, Copy, Debug)]
pub struct FeatureInputs<'a> {
    /// The violated pattern.
    pub pattern: &'a NamePattern,
    /// Name-path count of the statement (feature 1).
    pub stmt_path_count: usize,
    /// Identical statements in the file (feature 2).
    pub identical_in_file: u64,
    /// Identical statements in the repository (feature 3).
    pub identical_in_repo: u64,
    /// Pattern counts at file level (features 4, 7, 10).
    pub file: LevelCounts,
    /// Pattern counts at repository level (features 5, 8, 11).
    pub repo: LevelCounts,
    /// Pattern counts over the mining dataset (features 6, 9, 12).
    pub dataset: LevelCounts,
    /// The offending subtoken.
    pub original: Sym,
    /// The suggested subtoken.
    pub suggested: Sym,
}

/// Computes the 17-dimensional feature vector ϕ(s, p) of Table 1.
pub fn extract(inputs: &FeatureInputs<'_>, pairs: &ConfusingPairs) -> [f64; FEATURE_COUNT] {
    let p = inputs.pattern;
    let cond_len = p.condition.len() as f64;
    let ded_len = p.deduction.len();
    let denom = inputs.stmt_path_count.saturating_sub(ded_len).max(1) as f64;
    [
        inputs.stmt_path_count as f64,
        inputs.identical_in_file as f64,
        inputs.identical_in_repo as f64,
        inputs.file.satisfaction_rate(),
        inputs.repo.satisfaction_rate(),
        inputs.dataset.satisfaction_rate(),
        inputs.file.violations as f64,
        inputs.repo.violations as f64,
        inputs.dataset.violations as f64,
        inputs.file.satisfactions as f64,
        inputs.repo.satisfactions as f64,
        inputs.dataset.satisfactions as f64,
        if targets_function_name(p) { 1.0 } else { 0.0 },
        cond_len,
        cond_len / denom,
        levenshtein(inputs.original.as_str(), inputs.suggested.as_str()) as f64,
        if pairs.contains(inputs.original, inputs.suggested)
            || pairs.contains(inputs.suggested, inputs.original)
        {
            1.0
        } else {
            0.0
        },
    ]
}

/// Feature 13: does the pattern's deduction point at a called function's
/// name (an `Attr` below a `Call`) rather than an object name?
pub fn targets_function_name(p: &NamePattern) -> bool {
    let Some(d) = p.deduction.first() else {
        return false;
    };
    let mut saw_call = false;
    for &(v, _) in &d.prefix {
        match v.as_str() {
            "Call" => saw_call = true,
            "Attr" if saw_call => return true,
            _ => {}
        }
    }
    false
}

/// Levenshtein edit distance (feature 16).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::namepath::NamePath;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("port", "por"), 1);
        assert_eq!(levenshtein("True", "Equal"), 4);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn level_counts_rates() {
        let mut c = LevelCounts::default();
        c.record(true);
        c.record(true);
        c.record(false);
        assert_eq!(c.matches, 3);
        assert_eq!(c.violations, 1);
        assert!((c.satisfaction_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(LevelCounts::default().satisfaction_rate(), 0.0);
    }

    fn pattern_with_prefix(vals: &[&str]) -> NamePattern {
        let prefix: Vec<(Sym, u32)> = vals.iter().map(|v| (Sym::intern(v), 0)).collect();
        NamePattern::confusing_word(vec![], NamePath::concrete(prefix, Sym::intern("Equal")))
    }

    #[test]
    fn function_name_target_detection() {
        let fn_pat = pattern_with_prefix(&["ExprStmt", "NumArgs(2)", "Call", "AttributeLoad", "Attr", "NumST(2)"]);
        assert!(targets_function_name(&fn_pat));
        let obj_pat = pattern_with_prefix(&["Assign", "NameStore", "NumST(1)"]);
        assert!(!targets_function_name(&obj_pat));
        // Attr without an enclosing call is an object attribute, not a
        // function name.
        let attr_pat = pattern_with_prefix(&["Assign", "AttributeStore", "Attr", "NumST(1)"]);
        assert!(!targets_function_name(&attr_pat));
    }

    #[test]
    fn extract_produces_17_sane_features() {
        let p = pattern_with_prefix(&["Call", "Attr", "NumST(2)"]);
        let pairs = ConfusingPairs::new();
        let inputs = FeatureInputs {
            pattern: &p,
            stmt_path_count: 5,
            identical_in_file: 1,
            identical_in_repo: 2,
            file: LevelCounts {
                matches: 4,
                satisfactions: 3,
                violations: 1,
            },
            repo: LevelCounts {
                matches: 8,
                satisfactions: 6,
                violations: 2,
            },
            dataset: LevelCounts {
                matches: 100,
                satisfactions: 95,
                violations: 5,
            },
            original: Sym::intern("True"),
            suggested: Sym::intern("Equal"),
        };
        let f = extract(&inputs, &pairs);
        assert_eq!(f.len(), FEATURE_COUNT);
        assert_eq!(f[0], 5.0);
        assert!((f[3] - 0.75).abs() < 1e-12);
        assert!((f[5] - 0.95).abs() < 1e-12);
        assert_eq!(f[8], 5.0);
        assert_eq!(f[12], 1.0); // function-name target
        assert_eq!(f[15], 4.0); // edit distance True→Equal
        assert_eq!(f[16], 0.0); // not a mined pair
    }

    #[test]
    fn confusing_pair_feature_fires_in_either_orientation() {
        let p = pattern_with_prefix(&["Call", "Attr", "NumST(2)"]);
        let mut pairs = ConfusingPairs::new();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let inputs = FeatureInputs {
            pattern: &p,
            stmt_path_count: 3,
            identical_in_file: 1,
            identical_in_repo: 1,
            file: LevelCounts::default(),
            repo: LevelCounts::default(),
            dataset: LevelCounts::default(),
            original: Sym::intern("Equal"),
            suggested: Sym::intern("True"),
        };
        assert_eq!(extract(&inputs, &pairs)[16], 1.0);
    }
}
