//! Fix rendering: turn a violation into the corrected source line.
//!
//! The paper's reports *suggest a fix*: "modify the statement so that the
//! originally violated pattern becomes satisfied" (§2). A violation names
//! the offending subtoken and its replacement; this module splices the
//! replacement back into the identifier on the reported line, preserving
//! the identifier's case convention (`assertTrue` + True→Equal =
//! `assertEqual`, `progDialog` + prog→progress = `progressDialog`).

use namer_syntax::subtoken;

/// Applies a subtoken rename to one identifier.
///
/// Returns `None` when the identifier does not contain `original` as a
/// subtoken. Case is adapted: if the replaced subtoken was capitalised and
/// the replacement is lowercase, the replacement is capitalised (and vice
/// versa), so camelCase identifiers stay camelCase.
pub fn rename_identifier(ident: &str, original: &str, suggested: &str) -> Option<String> {
    let parts = subtoken::split(ident);
    let idx = parts.iter().position(|p| p == original)?;
    // Whole-identifier replacement takes the suggestion verbatim (`N` → `np`);
    // only composite identifiers adapt the subtoken's case to the local
    // convention.
    if parts.len() == 1 && parts[0] == ident {
        return Some(suggested.to_owned());
    }
    let adapted = adapt_case(&parts[idx], suggested);
    // Rebuild by replacing the matched occurrence in the original spelling;
    // subtokens are literal substrings of the identifier, so the (idx+1)-th
    // occurrence boundary is found by scanning.
    let mut out = String::new();
    let mut rest = ident;
    let mut seen = 0usize;
    while let Some(pos) = rest.find(original) {
        let (head, tail) = rest.split_at(pos);
        out.push_str(head);
        if occurrence_is_subtoken(ident, out.len(), original) && {
            seen += 1;
            seen == count_before(&parts, idx, original) + 1
        } {
            out.push_str(&adapted);
            rest = &tail[original.len()..];
            out.push_str(rest);
            return Some(out);
        }
        out.push_str(&tail[..original.len()]);
        rest = &tail[original.len()..];
    }
    None
}

/// How many of `parts[..idx]` equal `original` (for repeated subtokens).
fn count_before(parts: &[String], idx: usize, original: &str) -> usize {
    parts[..idx].iter().filter(|p| *p == original).count()
}

/// Checks the candidate occurrence starts at a subtoken boundary.
fn occurrence_is_subtoken(ident: &str, at: usize, original: &str) -> bool {
    let bytes = ident.as_bytes();
    let before_ok = at == 0
        || bytes[at - 1] == b'_'
        || (bytes[at - 1].is_ascii_lowercase() && original.starts_with(|c: char| c.is_uppercase()))
        || (bytes[at - 1].is_ascii_digit() != bytes[at].is_ascii_digit());
    let end = at + original.len();
    let after_ok = end >= ident.len()
        || bytes[end] == b'_'
        || bytes[end].is_ascii_uppercase()
        || (bytes[end].is_ascii_digit() != bytes[end - 1].is_ascii_digit());
    before_ok && after_ok
}

/// Matches the capitalisation of `model` onto `word`.
fn adapt_case(model: &str, word: &str) -> String {
    let model_upper = model.chars().next().is_some_and(|c| c.is_uppercase());
    let word_upper = word.chars().next().is_some_and(|c| c.is_uppercase());
    if model_upper == word_upper {
        return word.to_owned();
    }
    let mut chars = word.chars();
    match chars.next() {
        Some(c) if model_upper => c.to_uppercase().collect::<String>() + chars.as_str(),
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Rewrites one source line, renaming the identifier that carries the
/// offending subtoken. Returns `None` when no identifier on the line
/// contains `original` as a subtoken.
pub fn fix_line(line: &str, original: &str, suggested: &str) -> Option<String> {
    // Scan identifier tokens left to right; fix the first applicable one.
    let mut out = String::new();
    let mut rest = line;
    while !rest.is_empty() {
        let start = rest.find(|c: char| c.is_alphanumeric() || c == '_');
        let Some(start) = start else {
            out.push_str(rest);
            break;
        };
        let (head, tail) = rest.split_at(start);
        out.push_str(head);
        let end = tail
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(tail.len());
        let (ident, after) = tail.split_at(end);
        if let Some(renamed) = rename_identifier(ident, original, suggested) {
            out.push_str(&renamed);
            out.push_str(after);
            return Some(out);
        }
        out.push_str(ident);
        rest = after;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_case_rename() {
        assert_eq!(
            rename_identifier("assertTrue", "True", "Equal").as_deref(),
            Some("assertEqual")
        );
        assert_eq!(
            rename_identifier("progDialog", "prog", "progress").as_deref(),
            Some("progressDialog")
        );
    }

    #[test]
    fn snake_case_rename() {
        assert_eq!(
            rename_identifier("num_or_process", "or", "of").as_deref(),
            Some("num_of_process")
        );
    }

    #[test]
    fn whole_identifier_rename() {
        assert_eq!(rename_identifier("por", "por", "port").as_deref(), Some("port"));
        assert_eq!(rename_identifier("N", "N", "np").as_deref(), Some("np"));
    }

    #[test]
    fn case_adaptation() {
        // Deduction subtokens keep the case they were mined with; the fix
        // adapts to the identifier's local convention.
        assert_eq!(
            rename_identifier("getStackTrace", "get", "print").as_deref(),
            Some("printStackTrace")
        );
        assert_eq!(
            rename_identifier("GetStackTrace", "Get", "print").as_deref(),
            Some("PrintStackTrace")
        );
    }

    #[test]
    fn missing_subtoken_is_none() {
        assert_eq!(rename_identifier("assertTrue", "Equal", "True"), None);
    }

    #[test]
    fn substring_that_is_not_a_subtoken_is_not_renamed() {
        // `port` inside `portfolio` is not the subtoken `port`.
        assert_eq!(rename_identifier("portfolio", "port", "socket"), None);
    }

    #[test]
    fn fix_line_rewrites_first_applicable_identifier() {
        assert_eq!(
            fix_line("        self.assertTrue(vec.size, 4)", "True", "Equal").as_deref(),
            Some("        self.assertEqual(vec.size, 4)")
        );
        assert_eq!(
            fix_line("for i in xrange(10):", "xrange", "range").as_deref(),
            Some("for i in range(10):")
        );
        assert_eq!(
            fix_line("        self.port = por", "por", "port").as_deref(),
            Some("        self.port = port")
        );
    }

    #[test]
    fn fix_line_without_match_is_none() {
        assert_eq!(fix_line("x = 1", "True", "Equal"), None);
    }

    #[test]
    fn repeated_subtokens_rename_the_subtoken_occurrence() {
        assert_eq!(
            rename_identifier("test_test_case", "case", "suite").as_deref(),
            Some("test_test_suite")
        );
    }
}
