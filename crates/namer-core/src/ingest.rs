//! Fault-tolerant corpus ingestion (DESIGN.md §11).
//!
//! Mining and scanning Big Code means reading corpora salted with hostile
//! inputs: unreadable files, non-UTF-8 sources, dangling and cyclic
//! symlinks. One bad file must never abort a million-file run — the paper's
//! pipeline (§5) and DeepBugs' 150k-file extraction both depend on
//! degrading gracefully. [`CorpusReader`] is that contract, made concrete:
//!
//! * every read goes through a [`Vfs`] with bounded [`RetryPolicy`] retries
//!   for transient errors;
//! * files that still fail — unreadable, non-UTF-8, dangling — are
//!   **quarantined**: skipped, recorded in the per-run [`Diagnostics`], and
//!   counted into [`Counter::QuarantinedFiles`], while every healthy file
//!   produces byte-identical results to a fault-free run;
//! * directory traversal tracks canonical paths, so cyclic symlinks are
//!   skipped with a diagnostic instead of hanging the scan forever.

use crate::error::NamerError;
use crate::vfs::{with_retry_counted, RetryPolicy, Vfs};
use namer_observe::{Counter, Observer};
use namer_syntax::{Lang, SourceFile};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

/// Why a file was quarantined instead of ingested.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The file could not be read (permission denied, vanished mid-scan,
    /// dangling symlink, …) after exhausting retries.
    Unreadable,
    /// The file's bytes are not valid UTF-8.
    NonUtf8,
    /// A symlinked directory resolved to an already-visited location;
    /// descending would revisit (or loop over) the same tree.
    SymlinkCycle,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Unreadable => write!(f, "unreadable"),
            QuarantineReason::NonUtf8 => write!(f, "not valid UTF-8"),
            QuarantineReason::SymlinkCycle => write!(f, "symlink cycle"),
        }
    }
}

/// One quarantined input.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantined {
    /// The offending path.
    pub path: PathBuf,
    /// Why it was skipped.
    pub reason: QuarantineReason,
    /// The underlying error text (empty for cycle skips).
    pub detail: String,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.reason)?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// The per-run robustness report: what was skipped and what was retried.
/// Produced by [`CorpusReader::finish`], seeded into a session via
/// `NamerBuilder::ingest_diagnostics`, and surfaced on
/// `DetectOutcome::diagnostics`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Inputs skipped with their reasons, sorted by path.
    pub quarantined: Vec<Quarantined>,
    /// Transient I/O errors recovered by retrying.
    pub io_retries: u64,
}

impl Diagnostics {
    /// `true` when nothing was skipped or retried.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.io_retries == 0
    }

    /// Folds another report into this one (re-sorting the quarantine
    /// list).
    pub fn merge(&mut self, other: Diagnostics) {
        self.quarantined.extend(other.quarantined);
        self.quarantined.sort_by(|a, b| a.path.cmp(&b.path));
        self.io_retries += other.io_retries;
    }

    /// Human-readable multi-line summary (empty string when clean) — the
    /// CLI prints this after the scan summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if !self.quarantined.is_empty() {
            out.push_str(&format!(
                "quarantined {} file(s):\n",
                self.quarantined.len()
            ));
            for q in &self.quarantined {
                out.push_str(&format!("  {q}\n"));
            }
        }
        if self.io_retries > 0 {
            out.push_str(&format!(
                "recovered {} transient I/O error(s) by retrying\n",
                self.io_retries
            ));
        }
        out
    }
}

/// Fault-tolerant reader for corpora, commit-pair directories, and single
/// source files — the ingestion side of the CLI's `train` and `scan`,
/// reusable (and fault-injectable) as a library.
pub struct CorpusReader<'a> {
    vfs: &'a dyn Vfs,
    retry: RetryPolicy,
    obs: Observer<'a>,
    diag: Diagnostics,
}

impl<'a> CorpusReader<'a> {
    /// A reader over `vfs` with the default [`RetryPolicy`] and no
    /// observer.
    pub fn new(vfs: &'a dyn Vfs) -> CorpusReader<'a> {
        CorpusReader {
            vfs,
            retry: RetryPolicy::default(),
            obs: Observer::default(),
            diag: Diagnostics::default(),
        }
    }

    /// Overrides the retry policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> CorpusReader<'a> {
        self.retry = retry;
        self
    }

    /// Streams [`Counter::QuarantinedFiles`] / [`Counter::IoRetries`] into
    /// `obs` as ingestion proceeds.
    pub fn observed(mut self, obs: Observer<'a>) -> CorpusReader<'a> {
        self.obs = obs;
        self
    }

    /// The diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diag
    }

    /// Consumes the reader, returning the final sorted [`Diagnostics`].
    pub fn finish(mut self) -> Diagnostics {
        self.diag.quarantined.sort_by(|a, b| a.path.cmp(&b.path));
        self.diag
    }

    fn retrying<T>(&mut self, op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let (result, retries) = with_retry_counted(self.retry, op);
        if retries > 0 {
            self.diag.io_retries += retries;
            self.obs.add(Counter::IoRetries, retries);
        }
        result
    }

    fn quarantine(&mut self, path: &Path, reason: QuarantineReason, detail: String) {
        self.diag.quarantined.push(Quarantined {
            path: path.to_path_buf(),
            reason,
            detail,
        });
        self.obs.add(Counter::QuarantinedFiles, 1);
    }

    /// Reads a file the run can live without: transient errors are
    /// retried; a file that still fails is quarantined and `None` is
    /// returned so the caller skips it.
    pub fn read_text(&mut self, path: &Path) -> Option<String> {
        let vfs = self.vfs;
        match self.retrying(|| vfs.read_to_string(path)) {
            Ok(text) => Some(text),
            Err(e) => {
                let reason = if e.kind() == io::ErrorKind::InvalidData {
                    QuarantineReason::NonUtf8
                } else {
                    QuarantineReason::Unreadable
                };
                self.quarantine(path, reason, e.to_string());
                None
            }
        }
    }

    /// Reads a file the run *cannot* live without (a model, a labels TSV):
    /// transient errors are retried, anything else is a hard
    /// [`NamerError::Io`].
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] when the file stays unreadable.
    pub fn read_required(&mut self, path: &Path) -> Result<String, NamerError> {
        let vfs = self.vfs;
        self.retrying(|| vfs.read_to_string(path))
            .map_err(|e| NamerError::io(path, e))
    }

    /// Recursively collects sources of `lang` under `root`; the first path
    /// component below `root` names the repository. Unreadable and
    /// non-UTF-8 files are quarantined, symlink cycles are skipped with a
    /// diagnostic, and the output is sorted by `(repo, path)` — identical
    /// to a fault-free collection of the healthy subset.
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] only when `root` itself cannot be listed; any
    /// deeper failure degrades to a quarantine entry.
    pub fn collect_sources(
        &mut self,
        root: &Path,
        lang: Lang,
    ) -> Result<Vec<SourceFile>, NamerError> {
        let vfs = self.vfs;
        let root_canon = self
            .retrying(|| vfs.canonicalize(root))
            .map_err(|e| NamerError::io(root, e))?;
        let mut visited: HashSet<PathBuf> = HashSet::from([root_canon]);
        let mut out = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let entries = match self.retrying(|| vfs.read_dir(&dir)) {
                Ok(entries) => entries,
                Err(e) if dir == root => return Err(NamerError::io(&dir, e)),
                Err(e) => {
                    self.quarantine(&dir, QuarantineReason::Unreadable, e.to_string());
                    continue;
                }
            };
            for entry in entries {
                if entry.is_dir {
                    match self.retrying(|| vfs.canonicalize(&entry.path)) {
                        Ok(canon) => {
                            if visited.insert(canon) {
                                stack.push(entry.path);
                            } else if entry.is_symlink {
                                self.quarantine(
                                    &entry.path,
                                    QuarantineReason::SymlinkCycle,
                                    String::new(),
                                );
                            }
                            // A revisited *non*-symlink directory cannot
                            // occur in a tree; nothing to report.
                        }
                        Err(e) => {
                            self.quarantine(&entry.path, QuarantineReason::Unreadable, e.to_string())
                        }
                    }
                } else if Lang::from_path(&entry.path) == Some(lang) {
                    let Some(text) = self.read_text(&entry.path) else {
                        continue;
                    };
                    let rel = entry.path.strip_prefix(root).unwrap_or(&entry.path);
                    let repo = rel
                        .components()
                        .next()
                        .map(|c| c.as_os_str().to_string_lossy().into_owned())
                        .unwrap_or_else(|| "repo".to_owned());
                    out.push(SourceFile::new(repo, rel.display().to_string(), text, lang));
                }
            }
        }
        out.sort_by(|a, b| (a.repo.clone(), a.path.clone()).cmp(&(b.repo.clone(), b.path.clone())));
        Ok(out)
    }

    /// Reads `<name>.before` / `<name>.after` pairs from `dir`, sorted.
    /// A pair with an unreadable member is quarantined and dropped whole.
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] when `dir` itself cannot be listed.
    pub fn collect_commits(&mut self, dir: &Path) -> Result<Vec<(String, String)>, NamerError> {
        let vfs = self.vfs;
        let entries = self
            .retrying(|| vfs.read_dir(dir))
            .map_err(|e| NamerError::io(dir, e))?;
        let mut befores: HashMap<String, String> = HashMap::new();
        let mut afters: HashMap<String, String> = HashMap::new();
        for entry in entries {
            let Some(name) = entry.path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(stem) = name.strip_suffix(".before") {
                if let Some(text) = self.read_text(&entry.path) {
                    befores.insert(stem.to_owned(), text);
                }
            } else if let Some(stem) = name.strip_suffix(".after") {
                if let Some(text) = self.read_text(&entry.path) {
                    afters.insert(stem.to_owned(), text);
                }
            }
        }
        let mut out = Vec::new();
        for (stem, before) in befores {
            if let Some(after) = afters.remove(&stem) {
                out.push((before, after));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{Fault, FaultSchedule, FaultVfs, RealFs};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "namer-ingest-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn write(dir: &Path, rel: &str, contents: &[u8]) {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, contents).unwrap();
    }

    #[test]
    fn collects_sorted_sources_with_repo_split() {
        let dir = scratch("sorted");
        write(&dir, "r2/b.py", b"x = 2\n");
        write(&dir, "r1/sub/a.py", b"x = 1\n");
        write(&dir, "r1/readme.txt", b"not source\n");
        let mut reader = CorpusReader::new(&RealFs);
        let files = reader.collect_sources(&dir, Lang::Python).unwrap();
        let ids: Vec<_> = files.iter().map(|f| (f.repo.as_str(), f.path.as_str())).collect();
        assert_eq!(ids, [("r1", "r1/sub/a.py"), ("r2", "r2/b.py")]);
        assert!(reader.finish().is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_utf8_and_unreadable_files_are_quarantined() {
        let dir = scratch("bad");
        write(&dir, "r/good.py", b"x = 1\n");
        write(&dir, "r/bad.py", b"\xc3\x28\xff\xfe");
        write(&dir, "r/locked.py", b"y = 2\n");
        let vfs = FaultVfs::real(
            FaultSchedule::new().on_path("locked.py", Fault::Err(io::ErrorKind::PermissionDenied)),
        );
        let mut reader = CorpusReader::new(&vfs);
        let files = reader.collect_sources(&dir, Lang::Python).unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].path, "r/good.py");
        let diag = reader.finish();
        assert_eq!(diag.quarantined.len(), 2);
        assert_eq!(diag.quarantined[0].reason, QuarantineReason::NonUtf8);
        assert_eq!(diag.quarantined[1].reason, QuarantineReason::Unreadable);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_read_errors_are_retried_not_quarantined() {
        let dir = scratch("flaky");
        write(&dir, "r/flaky.py", b"x = 1\n");
        let vfs = FaultVfs::real(
            FaultSchedule::new().on_path("flaky.py", Fault::Err(io::ErrorKind::Interrupted)),
        );
        let mut reader =
            CorpusReader::new(&vfs).retry_policy(crate::vfs::RetryPolicy::immediate(3));
        let files = reader.collect_sources(&dir, Lang::Python).unwrap();
        assert_eq!(files.len(), 1);
        let diag = reader.finish();
        assert!(diag.quarantined.is_empty());
        assert_eq!(diag.io_retries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn symlink_cycles_are_skipped_with_diagnostic() {
        let dir = scratch("cycle");
        write(&dir, "r/a.py", b"x = 1\n");
        std::os::unix::fs::symlink(&dir, dir.join("r/loop")).unwrap();
        let mut reader = CorpusReader::new(&RealFs);
        let files = reader.collect_sources(&dir, Lang::Python).unwrap();
        assert_eq!(files.len(), 1);
        let diag = reader.finish();
        assert_eq!(diag.quarantined.len(), 1);
        assert_eq!(diag.quarantined[0].reason, QuarantineReason::SymlinkCycle);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_root_is_a_hard_error() {
        let dir = scratch("gone").join("never-created");
        let mut reader = CorpusReader::new(&RealFs);
        assert!(matches!(
            reader.collect_sources(&dir, Lang::Python),
            Err(NamerError::Io { .. })
        ));
    }

    #[test]
    fn commit_pairs_with_unreadable_members_are_dropped_whole() {
        let dir = scratch("commits");
        write(&dir, "0.before", b"a = 1\n");
        write(&dir, "0.after", b"a = 2\n");
        write(&dir, "1.before", b"b = 1\n");
        write(&dir, "1.after", b"b = 2\n");
        let vfs = FaultVfs::real(
            FaultSchedule::new().on_path("1.after", Fault::Err(io::ErrorKind::PermissionDenied)),
        );
        let mut reader = CorpusReader::new(&vfs);
        let pairs = reader.collect_commits(&dir).unwrap();
        assert_eq!(pairs, vec![("a = 1\n".to_owned(), "a = 2\n".to_owned())]);
        assert_eq!(reader.finish().quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diagnostics_merge_and_render() {
        let mut a = Diagnostics {
            quarantined: vec![Quarantined {
                path: PathBuf::from("b.py"),
                reason: QuarantineReason::NonUtf8,
                detail: "stream did not contain valid UTF-8".to_owned(),
            }],
            io_retries: 1,
        };
        let b = Diagnostics {
            quarantined: vec![Quarantined {
                path: PathBuf::from("a.py"),
                reason: QuarantineReason::Unreadable,
                detail: String::new(),
            }],
            io_retries: 2,
        };
        a.merge(b);
        assert_eq!(a.io_retries, 3);
        assert_eq!(a.quarantined[0].path, PathBuf::from("a.py"));
        let text = a.render_human();
        assert!(text.contains("quarantined 2 file(s)"));
        assert!(text.contains("not valid UTF-8"));
        assert!(text.contains("3 transient I/O error(s)"));
        assert!(Diagnostics::default().render_human().is_empty());
    }
}
