//! The Namer pipeline: the paper's primary contribution, end to end.
//!
//! *“Learning to Find Naming Issues with Big Code and Small Supervision”*
//! (PLDI 2021) combines (i) unsupervised mining of interpretable name
//! patterns from Big Code with (ii) a binary defect classifier trained on a
//! small manually labeled set of violations (Figure 1). This crate wires the
//! substrates together:
//!
//! * [`process`](mod@process) — parse → §4.1 analyses → statements → AST+ → name paths;
//! * [`detector`] — pattern mining and violation detection with the
//!   17 features of Table 1 ([`features`]); one scan entry point,
//!   [`Detector::scan`], covers full, incremental (file-granular or
//!   statement-region spliced, DESIGN.md §14), and sharded scans, and
//!   parallelises along both the file axis and the pattern axis
//!   (prefix-disjoint shards, DESIGN.md §7 and §9) with byte-identical
//!   results at any combination;
//! * [`namer`] — the trained system: classifier fitting (SVM/LogReg/LDA with
//!   model selection), reports, and the "w/o C" / "w/o A" ablations of
//!   Tables 2 and 5;
//! * [`session`] — the detection entry point: [`NamerBuilder`] assembles a
//!   system from a trained [`Namer`], a [`SavedModel`], or raw mined parts,
//!   and [`DetectSession::run`] covers full, incremental (scan-cache-backed,
//!   DESIGN.md §8), and sharded scans behind one call;
//! * [`persist`] — model snapshots ([`SavedModel`]) and the digest-keyed
//!   [`ScanCache`] behind incremental runs, stored in the versioned binary
//!   container of [`binfmt`] (legacy JSON stays readable behind a format
//!   sniff, DESIGN.md §12);
//! * [`registry`] — the digest-addressed [`ModelRegistry`]: many models in
//!   one directory, loaded lazily and LRU-evicted under a memory budget;
//! * [`error`] — [`NamerError`], the unified error type of the builder,
//!   session, and CLI paths;
//! * [`vfs`] — the virtual-filesystem seam ([`Vfs`], [`RealFs`], the
//!   fault-injecting [`FaultVfs`]), crash-safe [`atomic_write`], and the
//!   bounded [`RetryPolicy`] (DESIGN.md §11);
//! * [`ingest`](mod@ingest) — fault-tolerant corpus ingestion:
//!   [`CorpusReader`] quarantines unreadable / non-UTF-8 inputs and
//!   symlink cycles into per-run [`Diagnostics`] instead of aborting.
//!
//! The pre-session `Namer::detect` / `detect_processed` /
//! `detect_incremental` / `from_parts` entry points have been removed, and
//! the `Detector` scan-method zoo (`violations*`, `scan_files*`) collapsed
//! into the single [`Detector::scan`]\([`ScanRequest`]\) call; the session
//! API is the one user-facing way in. Every stage is instrumented through the
//! `namer-observe` crate: attach a sink with `NamerBuilder::metrics` or read
//! [`DetectOutcome::metrics`] (DESIGN.md §10). See the `namer` facade crate
//! and the repository's `examples/` directory for runnable end-to-end usage;
//! this crate's unit tests exercise the pipeline on inline corpora.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod detector;
pub mod error;
pub mod features;
pub mod fix;
pub mod ingest;
pub mod namer;
pub mod persist;
pub mod process;
pub mod registry;
pub mod sarif;
pub mod session;
pub mod vfs;

pub use detector::{
    CacheStats, Detector, DetectorSpec, FileScanState, RawHit, RegionOutcome, ScanInput,
    ScanRequest, ScanResult, StmtRegion, Violation,
};
pub use error::NamerError;
pub use fix::{fix_line, rename_identifier};
pub use features::{LevelCounts, FEATURE_COUNT, FEATURE_NAMES};
pub use namer::{Namer, NamerConfig, Report};
pub use persist::{
    CacheEntry, CacheLoadStatus, PersistError, SavedModel, ScanCache, CACHE_FORMAT_VERSION,
};
pub use registry::{ModelRegistry, RegistryStats};
pub use sarif::to_sarif;
pub use process::{
    process, process_each, process_each_observed, process_parallel, process_parallel_observed,
    ProcessConfig, ProcessedCorpus,
};
pub use ingest::{CorpusReader, Diagnostics, Quarantined, QuarantineReason};
pub use session::{CacheOutcome, DetectOutcome, DetectSession, NamerBuilder};
pub use vfs::{
    atomic_write, Fault, FaultSchedule, FaultVfs, RealFs, RetryPolicy, Vfs, VfsEntry,
};
