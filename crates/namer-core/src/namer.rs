//! The end-to-end Namer system: unsupervised mining + the small-supervision
//! defect classifier (Figure 1 of the paper).

use crate::detector::{Detector, ScanRequest, ScanResult, Violation};
use crate::process::{process_parallel_observed, ProcessConfig};
use namer_ml::{repeated_split_validation, select_model, Matrix, Metrics, ModelKind, Pipeline, PipelineConfig};
use namer_observe::{Counter, Observer, Phase};
use namer_patterns::{resolve_threads, MiningConfig, ShardPlan};
use namer_syntax::{Lang, SourceFile};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// End-to-end configuration.
#[derive(Clone, Debug)]
pub struct NamerConfig {
    /// Preprocessing (parse, analyses, path extraction). Setting
    /// `process.use_analysis = false` gives the "w/o A" ablation.
    pub process: ProcessConfig,
    /// Pattern-mining knobs (§5.1).
    pub mining: MiningConfig,
    /// Classifier pipeline (standardise → PCA → linear model).
    pub classifier: PipelineConfig,
    /// Run the defect classifier. `false` gives the "w/o C" ablation.
    pub use_classifier: bool,
    /// Labeled violations per class (paper: 60 + 60 = 120 total).
    pub labeled_per_class: usize,
    /// Repeats for the 80/20 validation of §5.2 (paper: 30).
    pub cv_repeats: usize,
    /// Seed controlling sampling and training.
    pub seed: u64,
    /// Worker threads for preprocessing, mining, and scanning (`0` = all
    /// available cores, the paper's §5.1 setup). Results are byte-identical
    /// at any thread count; this knob only changes wall-clock time.
    pub threads: usize,
    /// Pattern-axis sharding for mining recounts and scans (DESIGN.md §9).
    /// Like `threads`, sharding never changes results — only wall-clock
    /// time — but the plan is part of the scan-cache fingerprint.
    pub shard_plan: ShardPlan,
}

impl Default for NamerConfig {
    fn default() -> NamerConfig {
        NamerConfig {
            process: ProcessConfig::default(),
            mining: MiningConfig {
                // Scaled to the synthetic corpus (the paper uses 100/500 on
                // millions of files).
                min_support: 30,
                min_path_count: 10,
                ..MiningConfig::default()
            },
            classifier: PipelineConfig::default(),
            use_classifier: true,
            labeled_per_class: 60,
            cv_repeats: 30,
            seed: 7,
            threads: 0,
            shard_plan: ShardPlan::unsharded(),
        }
    }
}

/// A naming-issue report (a violation the classifier let through).
#[derive(Clone, Debug)]
pub struct Report {
    /// The underlying violation.
    pub violation: Violation,
    /// The classifier's decision value (`+∞`-ish = confident issue). For the
    /// "w/o C" ablation this is `0`.
    pub decision: f64,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.violation)
    }
}

/// The trained Namer system.
pub struct Namer {
    /// The mined detector (patterns + pairs + dataset statistics).
    pub detector: Detector,
    classifier: Option<Pipeline>,
    /// Cross-validation metrics of the selected model (§5.2 / §5.3 numbers).
    pub cv_metrics: Metrics,
    /// The selected model kind.
    pub model_kind: ModelKind,
    /// Violations used for training (excluded from evaluation, as in §5.1).
    pub training_set: Vec<Violation>,
    config: NamerConfig,
    lang: Lang,
}

impl Namer {
    /// Trains Namer on `files`: mines patterns from the (unlabeled) corpus
    /// and commits, then asks `labeler` — the stand-in for the paper's
    /// manual annotator — for a small balanced labeled set of violations to
    /// train the defect classifier.
    pub fn train(
        files: &[SourceFile],
        commits: &[(String, String)],
        labeler: impl Fn(&Violation) -> bool,
        config: &NamerConfig,
    ) -> Namer {
        Namer::train_observed(files, commits, labeler, config, Observer::none())
    }

    /// [`Namer::train`] with observability: the whole pass reports as
    /// [`Phase::Train`], and processing / mining / scanning break down into
    /// their own phases and counters (DESIGN.md §10).
    pub fn train_observed(
        files: &[SourceFile],
        commits: &[(String, String)],
        labeler: impl Fn(&Violation) -> bool,
        config: &NamerConfig,
        obs: Observer<'_>,
    ) -> Namer {
        let _span = obs.phase(Phase::Train);
        let lang = files.first().map(|f| f.lang).unwrap_or(Lang::Python);
        let threads = resolve_threads(config.threads);
        let corpus = process_parallel_observed(files, &config.process, threads, obs);
        let mining = MiningConfig {
            threads,
            shard_plan: config.shard_plan,
            ..config.mining.clone()
        };
        let detector = Detector::mine_observed(&corpus, commits, lang, &mining, obs);
        let scan = detector.scan(
            ScanRequest::full(&corpus)
                .threads(threads)
                .plan(config.shard_plan)
                .observer(obs),
        );

        let (classifier, cv_metrics, model_kind, training_set) = if config.use_classifier {
            Self::fit_classifier(&scan.violations, &labeler, config)
        } else {
            (None, Metrics::default(), ModelKind::SvmLinear, Vec::new())
        };

        Namer {
            detector,
            classifier,
            cv_metrics,
            model_kind,
            training_set,
            config: config.clone(),
            lang,
        }
    }

    fn fit_classifier(
        violations: &[Violation],
        labeler: &impl Fn(&Violation) -> bool,
        config: &NamerConfig,
    ) -> (Option<Pipeline>, Metrics, ModelKind, Vec<Violation>) {
        // "Manually label" a balanced set of violations (paper: 60/60).
        let mut order: Vec<usize> = (0..violations.len()).collect();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        order.shuffle(&mut rng);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for &i in &order {
            let v = &violations[i];
            if labeler(v) {
                if pos.len() < config.labeled_per_class {
                    pos.push(i);
                }
            } else if neg.len() < config.labeled_per_class {
                neg.push(i);
            }
            if pos.len() >= config.labeled_per_class && neg.len() >= config.labeled_per_class {
                break;
            }
        }
        let mut sample: Vec<usize> = pos.iter().chain(&neg).copied().collect();
        sample.sort_unstable();
        if pos.is_empty() || neg.is_empty() {
            // Not enough signal to train a classifier; report everything.
            return (None, Metrics::default(), ModelKind::SvmLinear, Vec::new());
        }
        let x = Matrix::from_rows(
            &sample
                .iter()
                .map(|&i| violations[i].features.to_vec())
                .collect::<Vec<_>>(),
        );
        let y: Vec<bool> = sample.iter().map(|&i| labeler(&violations[i])).collect();
        let (kind, _) = select_model(&x, &y, &config.classifier, config.seed);
        let cv = repeated_split_validation(
            kind,
            &x,
            &y,
            config.cv_repeats,
            0.8,
            &config.classifier,
            config.seed,
        );
        let pipeline = Pipeline::train(kind, &x, &y, &config.classifier);
        let training_set = sample.iter().map(|&i| violations[i].clone()).collect();
        (Some(pipeline), cv, kind, training_set)
    }

    /// Classifies one violation: `true` = report as a naming issue.
    pub fn classify(&self, violation: &Violation) -> bool {
        match &self.classifier {
            Some(c) => c.predict(&violation.features),
            None => true,
        }
    }

    /// The fingerprint a [`crate::persist::ScanCache`] must carry to be
    /// valid for this system (covers the detector, the preprocessing
    /// configuration, and the shard plan).
    pub fn scan_fingerprint(&self) -> u64 {
        self.detector
            .fingerprint(&self.config.process, &self.config.shard_plan)
    }

    /// Filters a scan's violations through the classifier into reports.
    /// Reports as [`Phase::Classify`] and counts the surviving reports.
    pub(crate) fn reports_from(&self, scan: &ScanResult, obs: Observer<'_>) -> Vec<Report> {
        let _span = obs.phase(Phase::Classify);
        let reports: Vec<Report> = scan
            .violations
            .iter()
            .filter(|v| self.classify(v))
            .map(|v| Report {
                violation: v.clone(),
                decision: self
                    .classifier
                    .as_ref()
                    .map(|c| c.decision(&v.features))
                    .unwrap_or(0.0),
            })
            .collect();
        obs.add(Counter::ReportsEmitted, reports.len() as u64);
        reports
    }

    /// Whether the defect classifier is active.
    pub fn has_classifier(&self) -> bool {
        self.classifier.is_some()
    }

    /// The trained classifier pipeline, if any (for persistence).
    pub fn classifier(&self) -> Option<&Pipeline> {
        self.classifier.as_ref()
    }

    /// Internal constructor behind [`crate::session::NamerBuilder`] and the
    /// persistence layer: a runnable system from its parts, with empty
    /// training set and CV metrics.
    pub(crate) fn assemble(
        detector: Detector,
        classifier: Option<Pipeline>,
        model_kind: ModelKind,
        lang: Lang,
        config: NamerConfig,
    ) -> Namer {
        Namer {
            detector,
            classifier,
            cv_metrics: Metrics::default(),
            model_kind,
            training_set: Vec::new(),
            config,
            lang,
        }
    }

    /// Replaces the defect classifier (builder override path).
    pub(crate) fn set_classifier(&mut self, classifier: Option<Pipeline>, kind: ModelKind) {
        self.config.use_classifier = classifier.is_some();
        self.classifier = classifier;
        self.model_kind = kind;
    }

    /// Applies session-level overrides to the runtime configuration
    /// (builder path; training-time knobs are left untouched).
    pub(crate) fn override_runtime(&mut self, threads: Option<usize>, plan: Option<ShardPlan>) {
        if let Some(t) = threads {
            self.config.threads = t;
        }
        if let Some(p) = plan {
            self.config.shard_plan = p;
        }
    }

    /// Table 9: classifier weights per original feature (standardised
    /// space), `None` when running without the classifier.
    pub fn feature_weights(&self) -> Option<Vec<f64>> {
        self.classifier.as_ref().map(Pipeline::feature_weights)
    }

    /// The corpus language this system was trained for.
    pub fn lang(&self) -> Lang {
        self.lang
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &NamerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::process;

    /// A corpus where assertEqual dominates, one file misuses assertTrue
    /// (true issue), and one repo legitimately repeats a violating shape
    /// (false-positive pressure the classifier should learn to prune).
    fn corpus() -> (Vec<SourceFile>, Vec<(String, String)>) {
        let mut files = Vec::new();
        // The idiom must dominate: pruneUncommon keeps patterns only when
        // ≥ 80 % of matches are satisfied.
        for i in 0..100 {
            files.push(SourceFile::new(
                format!("repo{}", i % 8),
                format!("good{i}.py"),
                "class T(TestCase):\n    def test_a(self):\n        self.assertEqual(value.count, 4)\n",
                namer_syntax::Lang::Python,
            ));
        }
        // True issues: one-off misuses.
        for i in 0..5 {
            files.push(SourceFile::new(
                format!("repo{}", i % 8),
                format!("bad{i}.py"),
                "class T(TestCase):\n    def test_b(self):\n        self.assertTrue(value.count, 4)\n",
                namer_syntax::Lang::Python,
            ));
        }
        // Benign house style: the same "violating" statement repeated many
        // times within one repo (locally common ⇒ not an issue).
        for i in 0..5 {
            files.push(SourceFile::new(
                "benign-repo",
                format!("style{i}.py"),
                "class T(TestCase):\n    def test_c(self):\n        self.assertTrue(value.count, 4)\n\nclass U(TestCase):\n    def test_d(self):\n        self.assertTrue(value.count, 4)\n",
                namer_syntax::Lang::Python,
            ));
        }
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        (files, commits)
    }

    fn config() -> NamerConfig {
        NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 10,
                ..MiningConfig::default()
            },
            labeled_per_class: 5,
            cv_repeats: 5,
            ..NamerConfig::default()
        }
    }

    /// Labeler: misuse files are true issues, benign-repo repeats are not.
    fn labeler(v: &Violation) -> bool {
        v.path.starts_with("bad")
    }

    #[test]
    fn end_to_end_detects_and_classifies() {
        let (files, commits) = corpus();
        let namer = Namer::train(&files, &commits, labeler, &config());
        assert!(namer.has_classifier());
        let mut session = crate::session::NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("session builds");
        let reports = session.run(&files).expect("cacheless run cannot fail").reports;
        assert!(!reports.is_empty());
        // The true issues are reported…
        let true_hits = reports
            .iter()
            .filter(|r| r.violation.path.starts_with("bad"))
            .count();
        assert!(true_hits >= 3, "only {true_hits} true issues reported");
        // …and the benign house style is mostly pruned.
        let fp_hits: Vec<&str> = reports
            .iter()
            .filter(|r| r.violation.repo == "benign-repo")
            .map(|r| r.violation.path.as_str())
            .collect();
        assert!(fp_hits.len() <= 4, "{} benign reports survived", fp_hits.len());
    }

    #[test]
    fn without_classifier_everything_is_reported() {
        let (files, commits) = corpus();
        let cfg = NamerConfig {
            use_classifier: false,
            ..config()
        };
        let namer = Namer::train(&files, &commits, labeler, &cfg);
        assert!(!namer.has_classifier());
        let corpus_p = process(&files, &cfg.process);
        let session = crate::session::NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("session builds");
        let outcome = session.run_processed(&corpus_p);
        assert_eq!(outcome.reports.len(), outcome.scan.violations.len());
    }

    #[test]
    fn cv_metrics_are_populated() {
        let (files, commits) = corpus();
        let namer = Namer::train(&files, &commits, labeler, &config());
        assert!(namer.cv_metrics.accuracy > 0.5, "{:?}", namer.cv_metrics);
    }

    #[test]
    fn feature_weights_cover_all_features() {
        let (files, commits) = corpus();
        let namer = Namer::train(&files, &commits, labeler, &config());
        let w = namer.feature_weights().unwrap();
        assert_eq!(w.len(), crate::features::FEATURE_COUNT);
    }

    #[test]
    fn training_set_is_balancedish() {
        let (files, commits) = corpus();
        let namer = Namer::train(&files, &commits, labeler, &config());
        let pos = namer.training_set.iter().filter(|v| labeler(v)).count();
        let neg = namer.training_set.len() - pos;
        assert!(pos > 0 && neg > 0);
    }
}
