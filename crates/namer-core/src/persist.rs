//! Saving and loading trained Namer systems.
//!
//! Mining over a large corpus is the expensive step; a deployed detector
//! (what the paper envisions as an IDE plugin or CI bot, §5.4) loads a
//! pre-trained model and scans new code. [`SavedModel`] captures everything
//! inference needs: the mined patterns with their dataset statistics, the
//! confusing word pairs, and the classifier pipeline.

use crate::detector::Detector;
use crate::features::LevelCounts;
use crate::namer::{Namer, NamerConfig};
use namer_ml::{ModelKind, Pipeline};
use namer_patterns::{ConfusingPairs, NamePattern};
use namer_syntax::Lang;
use serde::{Deserialize, Serialize};

/// A serialisable snapshot of a trained [`Namer`].
#[derive(Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Language the system was trained for.
    pub lang: Lang,
    /// Whether the §4.1 analyses were enabled at training time (scanning
    /// must use the same setting or paths will not line up).
    pub use_analysis: bool,
    /// Mined name patterns.
    pub patterns: Vec<NamePattern>,
    /// Dataset-level counts per pattern (features 6/9/12).
    pub dataset: Vec<LevelCounts>,
    /// Mined confusing word pairs (feature 17 + mining provenance).
    pub pairs: ConfusingPairs,
    /// The defect classifier, absent for "w/o C" systems.
    pub classifier: Option<Pipeline>,
    /// Which linear model the classifier uses.
    pub model_kind: ModelKind,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from loading a saved model.
#[derive(Debug)]
pub enum PersistError {
    /// The JSON did not parse or did not match the schema.
    Malformed(String),
    /// The format version is not supported.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(e) => write!(f, "malformed model file: {e}"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl SavedModel {
    /// Snapshots a trained system.
    pub fn from_namer(namer: &Namer) -> SavedModel {
        SavedModel {
            version: FORMAT_VERSION,
            lang: namer.lang(),
            use_analysis: namer.config().process.use_analysis,
            patterns: namer.detector.patterns.patterns.clone(),
            dataset: namer.detector.dataset_counts_all().to_vec(),
            pairs: namer.detector.pairs.clone(),
            classifier: namer.classifier().cloned(),
            model_kind: namer.model_kind,
        }
    }

    /// Restores a runnable system. `config` supplies the runtime knobs
    /// (path limits, analysis parameters); its `use_analysis` flag is
    /// overridden by the persisted one so scanning matches training.
    pub fn into_namer(self, mut config: NamerConfig) -> Namer {
        config.process.use_analysis = self.use_analysis;
        config.use_classifier = self.classifier.is_some();
        let detector = Detector::from_parts(self.patterns, self.pairs, self.dataset);
        Namer::from_parts(detector, self.classifier, self.model_kind, self.lang, config)
    }

    /// Serialises to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serde serialisation fails, which cannot happen for
    /// this self-describing structure.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SavedModel serialises")
    }

    /// Parses a model file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed JSON or unknown versions.
    pub fn from_json(json: &str) -> Result<SavedModel, PersistError> {
        let model: SavedModel =
            serde_json::from_str(json).map_err(|e| PersistError::Malformed(e.to_string()))?;
        if model.version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(model.version));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_patterns::MiningConfig;
    use namer_syntax::SourceFile;

    fn trained() -> (Namer, Vec<SourceFile>) {
        let mut files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 5),
                    format!("f{i}.py"),
                    "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n",
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new(
            "r0",
            "bad.py",
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n",
            Lang::Python,
        ));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        let config = NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
            labeled_per_class: 3,
            cv_repeats: 2,
            ..NamerConfig::default()
        };
        let namer = Namer::train(
            &files,
            &commits,
            |v| v.original.as_str() == "True",
            &config,
        );
        (namer, files)
    }

    #[test]
    fn save_load_round_trip_preserves_reports() {
        let (namer, files) = trained();
        let before: Vec<String> = namer
            .detect(&files)
            .iter()
            .map(|r| r.to_string())
            .collect();
        let json = SavedModel::from_namer(&namer).to_json();
        let loaded = SavedModel::from_json(&json)
            .expect("round trip parses")
            .into_namer(NamerConfig::default());
        let after: Vec<String> = loaded
            .detect(&files)
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(before, after);
        assert_eq!(loaded.model_kind, namer.model_kind);
        assert_eq!(loaded.lang(), Lang::Python);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            SavedModel::from_json("{not json"),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (namer, _) = trained();
        let mut model = SavedModel::from_namer(&namer);
        model.version = 999;
        let json = model.to_json();
        assert!(matches!(
            SavedModel::from_json(&json),
            Err(PersistError::UnsupportedVersion(999))
        ));
    }

    #[test]
    fn classifier_presence_round_trips() {
        let (namer, _) = trained();
        let had = namer.has_classifier();
        let json = SavedModel::from_namer(&namer).to_json();
        let loaded = SavedModel::from_json(&json)
            .unwrap()
            .into_namer(NamerConfig::default());
        assert_eq!(loaded.has_classifier(), had);
    }
}
