//! Saving and loading trained Namer systems and scan caches.
//!
//! Mining over a large corpus is the expensive step; a deployed detector
//! (what the paper envisions as an IDE plugin or CI bot, §5.4) loads a
//! pre-trained model and scans new code. [`SavedModel`] captures everything
//! inference needs: the mined patterns with their dataset statistics, the
//! confusing word pairs, and the classifier pipeline.
//!
//! [`ScanCache`] persists per-file scan state between CI runs, keyed by
//! content digest and guarded by the detector fingerprint (DESIGN.md §8).
//! Unlike model loading, cache loading *never* fails: any mismatch or
//! corruption degrades to an empty cache and therefore a cold — but still
//! correct — scan.
//!
//! Both types save in the binary container of [`crate::binfmt`] — an
//! interned symbol table plus flat fixed-width arrays
//! ([`namer_patterns::flat`]), digest-guarded, laid out in DESIGN.md §12 —
//! and load either format behind a sniff: files starting with the container
//! magic decode as binary, everything else parses as the legacy JSON, so
//! pre-existing model and cache files keep working unchanged.

use crate::binfmt::{self, BinError, BinFile, BinWriter};
use crate::detector::{DetectorSpec, FileScanState, RawHit, RegionOutcome, StmtRegion};
use crate::error::NamerError;
use crate::features::LevelCounts;
use crate::namer::{Namer, NamerConfig};
use crate::vfs::{atomic_write, RealFs, Vfs};
use namer_ml::{ModelKind, Pipeline};
use namer_patterns::flat::{
    self, FlatError, PathsBuilder, PathsView, SymTable, SymTableBuilder,
};
use namer_patterns::{ConfusingPairs, NamePattern};
use namer_syntax::{ContentDigest, Lang};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::Path;

/// A serialisable snapshot of a trained [`Namer`].
#[derive(Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Language the system was trained for.
    pub lang: Lang,
    /// Whether the §4.1 analyses were enabled at training time (scanning
    /// must use the same setting or paths will not line up).
    pub use_analysis: bool,
    /// Mined name patterns.
    pub patterns: Vec<NamePattern>,
    /// Dataset-level counts per pattern (features 6/9/12).
    pub dataset: Vec<LevelCounts>,
    /// Mined confusing word pairs (feature 17 + mining provenance).
    pub pairs: ConfusingPairs,
    /// The defect classifier, absent for "w/o C" systems.
    pub classifier: Option<Pipeline>,
    /// Which linear model the classifier uses.
    pub model_kind: ModelKind,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from loading or serialising a saved model.
#[derive(Debug)]
pub enum PersistError {
    /// The file did not parse (JSON or binary) or did not match the schema.
    Malformed(String),
    /// The format version is not supported.
    UnsupportedVersion(u32),
    /// Serialisation itself failed (a classifier that cannot be encoded).
    Serialize(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(e) => write!(f, "malformed model file: {e}"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
            PersistError::Serialize(e) => write!(f, "model serialisation failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<BinError> for PersistError {
    fn from(e: BinError) -> PersistError {
        match e {
            BinError::UnsupportedVersion(v) => PersistError::UnsupportedVersion(v),
            other => PersistError::Malformed(other.to_string()),
        }
    }
}

impl From<FlatError> for PersistError {
    fn from(e: FlatError) -> PersistError {
        PersistError::Malformed(e.to_string())
    }
}

impl From<FlatError> for BinError {
    fn from(e: FlatError) -> BinError {
        BinError::Malformed(e.to_string())
    }
}

// Model section ids (container kind `KIND_MODEL`).
const MODEL_SEC_META: u32 = 1;
const MODEL_SEC_SYMS: u32 = 2;
const MODEL_SEC_PATHS: u32 = 3;
const MODEL_SEC_PREFIX_POOL: u32 = 4;
const MODEL_SEC_PATTERNS: u32 = 5;
const MODEL_SEC_DATASET: u32 = 6;
const MODEL_SEC_PAIRS: u32 = 7;
const MODEL_SEC_CLASSIFIER: u32 = 8;

const MODEL_META_BYTES: usize = 20;
const DATASET_RECORD_BYTES: usize = 24;

/// The container's language tag comes from the registry's stable
/// assignment ([`Language::model_tag`](namer_syntax::Language::model_tag)),
/// so existing Python/Java containers stay byte-identical as frontends are
/// added.
fn lang_tag(lang: Lang) -> u32 {
    lang.spec().model_tag()
}

fn kind_tag(kind: ModelKind) -> u32 {
    match kind {
        ModelKind::SvmLinear => 0,
        ModelKind::LogReg => 1,
        ModelKind::Lda => 2,
    }
}

fn bool_from(tag: u32, what: &str) -> Result<bool, PersistError> {
    match tag {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(PersistError::Malformed(format!("bad {what} flag {other}"))),
    }
}

impl SavedModel {
    /// Snapshots a trained system.
    pub fn from_namer(namer: &Namer) -> SavedModel {
        SavedModel {
            version: FORMAT_VERSION,
            lang: namer.lang(),
            use_analysis: namer.config().process.use_analysis,
            patterns: namer.detector.patterns.patterns.clone(),
            dataset: namer.detector.dataset_counts_all().to_vec(),
            pairs: namer.detector.pairs.clone(),
            classifier: namer.classifier().cloned(),
            model_kind: namer.model_kind,
        }
    }

    /// Restores a runnable system. `config` supplies the runtime knobs
    /// (path limits, analysis parameters); its `use_analysis` flag is
    /// overridden by the persisted one so scanning matches training.
    pub fn into_namer(self, mut config: NamerConfig) -> Namer {
        config.process.use_analysis = self.use_analysis;
        config.use_classifier = self.classifier.is_some();
        let detector = DetectorSpec::new(self.patterns, self.pairs, self.dataset).build();
        Namer::assemble(detector, self.classifier, self.model_kind, self.lang, config)
    }

    /// Serialises to pretty JSON (the legacy interchange format; saving
    /// goes through [`SavedModel::to_binary`]).
    ///
    /// # Errors
    ///
    /// [`PersistError::Serialize`] when serde serialisation fails.
    pub fn to_json(&self) -> Result<String, PersistError> {
        serde_json::to_string_pretty(self).map_err(|e| PersistError::Serialize(e.to_string()))
    }

    /// Parses a JSON model file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed JSON or unknown versions.
    pub fn from_json(json: &str) -> Result<SavedModel, PersistError> {
        let model: SavedModel =
            serde_json::from_str(json).map_err(|e| PersistError::Malformed(e.to_string()))?;
        if model.version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(model.version));
        }
        Ok(model)
    }

    /// Encodes the model into the binary container (DESIGN.md §12):
    /// patterns, paths, and pairs as flat arrays over an interned symbol
    /// table; the classifier pipeline as an embedded JSON blob section.
    ///
    /// # Errors
    ///
    /// [`PersistError::Serialize`] when the classifier blob cannot be
    /// serialised.
    pub fn to_binary(&self) -> Result<Vec<u8>, PersistError> {
        let mut syms = SymTableBuilder::new();
        let mut paths = PathsBuilder::new();
        let patterns = flat::encode_patterns(&self.patterns, &mut paths, &mut syms);
        let pairs = flat::encode_pairs(&self.pairs, &mut syms);
        let (path_records, prefix_pool) = paths.finish();

        let mut meta = Vec::with_capacity(MODEL_META_BYTES);
        for v in [
            self.version,
            lang_tag(self.lang),
            u32::from(self.use_analysis),
            kind_tag(self.model_kind),
            u32::from(self.classifier.is_some()),
        ] {
            meta.extend_from_slice(&v.to_le_bytes());
        }

        let mut dataset = Vec::with_capacity(self.dataset.len() * DATASET_RECORD_BYTES);
        for c in &self.dataset {
            dataset.extend_from_slice(&c.matches.to_le_bytes());
            dataset.extend_from_slice(&c.satisfactions.to_le_bytes());
            dataset.extend_from_slice(&c.violations.to_le_bytes());
        }

        let mut w = BinWriter::new(binfmt::KIND_MODEL);
        w.section(MODEL_SEC_META, meta);
        w.section(MODEL_SEC_SYMS, syms.encode());
        w.section(MODEL_SEC_PATHS, path_records);
        w.section(MODEL_SEC_PREFIX_POOL, prefix_pool);
        w.section(MODEL_SEC_PATTERNS, patterns);
        w.section(MODEL_SEC_DATASET, dataset);
        w.section(MODEL_SEC_PAIRS, pairs);
        if let Some(classifier) = &self.classifier {
            let blob = serde_json::to_vec(classifier)
                .map_err(|e| PersistError::Serialize(e.to_string()))?;
            w.section(MODEL_SEC_CLASSIFIER, blob);
        }
        Ok(w.finish())
    }

    /// Decodes a binary model file.
    ///
    /// # Errors
    ///
    /// [`PersistError`] for anything unusable: a digest mismatch, a
    /// truncated or malformed container, or an unsupported version.
    pub fn from_binary(bytes: &[u8]) -> Result<SavedModel, PersistError> {
        let file = BinFile::parse_kind(bytes, binfmt::KIND_MODEL)?;
        let meta = file.require(MODEL_SEC_META)?;
        if meta.len() != MODEL_META_BYTES {
            return Err(PersistError::Malformed(format!(
                "model meta section is {} bytes, expected {MODEL_META_BYTES}",
                meta.len()
            )));
        }
        let version = flat::read_u32(meta, 0)?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let lang_raw = flat::read_u32(meta, 4)?;
        let lang = namer_syntax::lang::from_model_tag(lang_raw)
            .ok_or_else(|| PersistError::Malformed(format!("bad language tag {lang_raw}")))?;
        let use_analysis = bool_from(flat::read_u32(meta, 8)?, "use_analysis")?;
        let model_kind = match flat::read_u32(meta, 12)? {
            0 => ModelKind::SvmLinear,
            1 => ModelKind::LogReg,
            2 => ModelKind::Lda,
            other => return Err(PersistError::Malformed(format!("bad model kind tag {other}"))),
        };
        let has_classifier = bool_from(flat::read_u32(meta, 16)?, "has_classifier")?;

        let syms = SymTable::decode(file.require(MODEL_SEC_SYMS)?)?;
        let paths = PathsView::parse(
            file.require(MODEL_SEC_PATHS)?,
            file.require(MODEL_SEC_PREFIX_POOL)?,
        )?;
        let patterns = flat::decode_patterns(file.require(MODEL_SEC_PATTERNS)?, &paths, &syms)?;

        let dataset_bytes = file.require(MODEL_SEC_DATASET)?;
        if dataset_bytes.len() % DATASET_RECORD_BYTES != 0 {
            return Err(PersistError::Malformed(format!(
                "dataset section length {} not a record multiple",
                dataset_bytes.len()
            )));
        }
        let mut dataset = Vec::with_capacity(dataset_bytes.len() / DATASET_RECORD_BYTES);
        for at in (0..dataset_bytes.len()).step_by(DATASET_RECORD_BYTES) {
            dataset.push(LevelCounts {
                matches: flat::read_u64(dataset_bytes, at)?,
                satisfactions: flat::read_u64(dataset_bytes, at + 8)?,
                violations: flat::read_u64(dataset_bytes, at + 16)?,
            });
        }

        let pairs = flat::decode_pairs(file.require(MODEL_SEC_PAIRS)?, &syms)?;
        let classifier = if has_classifier {
            let blob = file.require(MODEL_SEC_CLASSIFIER)?;
            Some(
                serde_json::from_slice(blob)
                    .map_err(|e| PersistError::Malformed(format!("classifier blob: {e}")))?,
            )
        } else {
            None
        };

        Ok(SavedModel {
            version,
            lang,
            use_analysis,
            patterns,
            dataset,
            pairs,
            classifier,
            model_kind,
        })
    }

    /// Decodes a model file in either format: bytes starting with the
    /// container magic parse as binary, anything else as legacy JSON.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the bytes decode as neither.
    pub fn from_bytes(bytes: &[u8]) -> Result<SavedModel, PersistError> {
        if binfmt::looks_binary(bytes) {
            SavedModel::from_binary(bytes)
        } else {
            let json = std::str::from_utf8(bytes).map_err(|e| {
                PersistError::Malformed(format!("neither binary container nor UTF-8 JSON: {e}"))
            })?;
            SavedModel::from_json(json)
        }
    }

    /// Writes the model to `path` in the binary format, crash-safely
    /// through `vfs` (write-temp + fsync + atomic rename, DESIGN.md §11):
    /// a process killed mid-save leaves either the previous model or the
    /// new one, never a truncation.
    ///
    /// # Errors
    ///
    /// [`NamerError::Model`] when serialisation fails, [`NamerError::Io`]
    /// when the write or rename fails.
    pub fn save_via(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), NamerError> {
        let bytes = self.to_binary().map_err(NamerError::from)?;
        atomic_write(vfs, path, &bytes).map_err(|e| NamerError::io(path, e))
    }

    /// Writes the model to `path` crash-safely on the real filesystem.
    ///
    /// # Errors
    ///
    /// [`NamerError::Model`] when serialisation fails, [`NamerError::Io`]
    /// when the write or rename fails.
    pub fn save(&self, path: &Path) -> Result<(), NamerError> {
        self.save_via(&RealFs, path)
    }

    /// Loads a model file (either format) through `vfs`.
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] when the file cannot be read,
    /// [`NamerError::Model`] when it parses but cannot be used.
    pub fn load_via(vfs: &dyn Vfs, path: &Path) -> Result<SavedModel, NamerError> {
        let bytes = vfs.read(path).map_err(|e| NamerError::io(path, e))?;
        SavedModel::from_bytes(&bytes).map_err(NamerError::from)
    }

    /// Loads a model file (either format) from the real filesystem.
    ///
    /// # Errors
    ///
    /// As [`SavedModel::load_via`].
    pub fn load(path: &Path) -> Result<SavedModel, NamerError> {
        SavedModel::load_via(&RealFs, path)
    }
}

/// Current scan-cache format version (independent of the model format).
/// v2 added statement regions and per-state span keys (DESIGN.md §14);
/// v1 caches load as [`CacheLoadStatus::VersionMismatch`] — cold, never
/// wrong.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// One cached entry: the file either parsed (with its scan state) or is
/// known unparsable, so the incremental scan never re-parses it either way.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CacheEntry {
    /// The file parsed; its per-file scan state.
    Parsed(FileScanState),
    /// The file failed to parse under the fingerprinted configuration.
    ParseFailure,
}

/// How a persisted cache was (or was not) accepted at load time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheLoadStatus {
    /// No cache file (or it was unreadable); starting cold.
    Cold,
    /// Cache accepted with this many entries.
    Warm(usize),
    /// The file did not parse as a cache (including digest-mismatched or
    /// truncated binaries); discarded.
    Corrupt,
    /// The cache was written by a different format version; discarded.
    VersionMismatch,
    /// The cache belongs to a different detector/config; discarded.
    FingerprintMismatch,
}

impl std::fmt::Display for CacheLoadStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLoadStatus::Cold => write!(f, "cold (no cache)"),
            CacheLoadStatus::Warm(n) => write!(f, "warm ({n} entries)"),
            CacheLoadStatus::Corrupt => write!(f, "cold (cache corrupt, discarded)"),
            CacheLoadStatus::VersionMismatch => {
                write!(f, "cold (cache format version mismatch, discarded)")
            }
            CacheLoadStatus::FingerprintMismatch => {
                write!(f, "cold (detector fingerprint changed, discarded)")
            }
        }
    }
}

// Cache section ids (container kind `KIND_CACHE`).
const CACHE_SEC_META: u32 = 1;
const CACHE_SEC_SYMS: u32 = 2;
const CACHE_SEC_ENTRIES: u32 = 3;
const CACHE_SEC_PATTERN_COUNTS: u32 = 4;
const CACHE_SEC_DIGEST_COUNTS: u32 = 5;
const CACHE_SEC_RAW: u32 = 6;
const CACHE_SEC_RENDERED: u32 = 7;
// v2 (DESIGN.md §14): per-state span keys and statement regions.
const CACHE_SEC_SPANS: u32 = 8;
const CACHE_SEC_REGIONS: u32 = 9;
const CACHE_SEC_OUTCOMES: u32 = 10;

const CACHE_META_BYTES: usize = 16;
const ENTRY_RECORD_BYTES: usize = 56;
const PATTERN_COUNT_RECORD_BYTES: usize = 32;
const DIGEST_COUNT_RECORD_BYTES: usize = 16;
const RAW_RECORD_BYTES: usize = 48;
const SPAN_RECORD_BYTES: usize = 16;
const REGION_RECORD_BYTES: usize = 24;
const OUTCOME_RECORD_BYTES: usize = 24;

// RegionOutcome flag bits.
const OUTCOME_SATISFIED: u32 = 1;
const OUTCOME_HAS_NAMES: u32 = 2;

const ENTRY_PARSE_FAILURE: u32 = 0;
const ENTRY_PARSED: u32 = 1;

/// Persisted per-file scan state, keyed by content-digest hex strings.
///
/// A `BTreeMap` keeps serialization deterministic: the same corpus and
/// detector always produce byte-identical cache files. (Fixed-width
/// lowercase hex sorts identically to the numeric digests, so the binary
/// entry records inherit the same order.)
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScanCache {
    /// Cache format version.
    version: u32,
    /// Fingerprint of the detector + preprocessing config this cache is
    /// valid for ([`Detector::fingerprint`](crate::detector::Detector::fingerprint)).
    fingerprint: u64,
    /// Scan state per content digest (hex-encoded).
    entries: BTreeMap<String, CacheEntry>,
    /// Statement regions per span-digest key (hex-encoded), shared by all
    /// files (DESIGN.md §14). Defaulted so v1 JSON still parses
    /// structurally — the version check then rejects it as a whole.
    #[serde(default)]
    regions: BTreeMap<String, StmtRegion>,
}

impl ScanCache {
    /// Creates an empty cache bound to `fingerprint`.
    pub fn empty(fingerprint: u64) -> ScanCache {
        ScanCache {
            version: CACHE_FORMAT_VERSION,
            fingerprint,
            entries: BTreeMap::new(),
            regions: BTreeMap::new(),
        }
    }

    /// The detector fingerprint this cache is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `digest` has a cached entry.
    pub fn contains(&self, digest: ContentDigest) -> bool {
        self.entries.contains_key(&digest.to_hex())
    }

    /// The cached entry for `digest`, if any.
    pub fn get(&self, digest: ContentDigest) -> Option<&CacheEntry> {
        self.entries.get(&digest.to_hex())
    }

    /// Inserts (or replaces) the entry for `digest`.
    pub fn insert(&mut self, digest: ContentDigest, entry: CacheEntry) {
        self.entries.insert(digest.to_hex(), entry);
    }

    /// The cached statement regions, keyed by span-digest hex
    /// (DESIGN.md §14).
    pub fn regions(&self) -> &BTreeMap<String, StmtRegion> {
        &self.regions
    }

    /// Records a statement region under its span-digest key. First insert
    /// wins: regions are pure functions of their key under this cache's
    /// fingerprint, so a duplicate is byte-identical by construction.
    pub fn insert_region(&mut self, key: String, region: StmtRegion) {
        self.regions.entry(key).or_insert(region);
    }

    /// Drops every entry whose digest is not in `live`, so the cache tracks
    /// the current corpus instead of growing without bound. Statement
    /// regions are mark-and-swept through the surviving entries' span
    /// lists: a region referenced by no live file's statements is dropped.
    pub fn retain_digests(&mut self, live: &HashSet<ContentDigest>) {
        self.entries
            .retain(|k, _| ContentDigest::from_hex(k).is_some_and(|d| live.contains(&d)));
        if self.regions.is_empty() {
            return;
        }
        let live_spans: HashSet<&str> = self
            .entries
            .values()
            .filter_map(|entry| match entry {
                CacheEntry::Parsed(state) => Some(state.spans.iter().map(String::as_str)),
                CacheEntry::ParseFailure => None,
            })
            .flatten()
            .collect();
        self.regions.retain(|k, _| live_spans.contains(k.as_str()));
    }

    /// Serialises to compact JSON (the legacy interchange format; saving
    /// goes through [`ScanCache::to_binary`]).
    ///
    /// # Errors
    ///
    /// [`PersistError::Serialize`] when serde serialisation fails.
    pub fn to_json(&self) -> Result<String, PersistError> {
        serde_json::to_string(self).map_err(|e| PersistError::Serialize(e.to_string()))
    }

    /// Parses a JSON cache, validating it against `fingerprint`.
    ///
    /// Never fails: anything unacceptable — unparsable JSON, a different
    /// format version, a different fingerprint — returns an empty cache and
    /// the reason, degrading the next scan to cold rather than wrong.
    pub fn from_json(json: &str, fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        let parsed: ScanCache = match serde_json::from_str(json) {
            Ok(c) => c,
            Err(_) => return (ScanCache::empty(fingerprint), CacheLoadStatus::Corrupt),
        };
        ScanCache::accept(parsed, fingerprint)
    }

    fn accept(parsed: ScanCache, fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        if parsed.version != CACHE_FORMAT_VERSION {
            return (ScanCache::empty(fingerprint), CacheLoadStatus::VersionMismatch);
        }
        if parsed.fingerprint != fingerprint {
            return (
                ScanCache::empty(fingerprint),
                CacheLoadStatus::FingerprintMismatch,
            );
        }
        let n = parsed.len();
        (parsed, CacheLoadStatus::Warm(n))
    }

    /// Encodes the cache into the binary container (DESIGN.md §12):
    /// fixed-width entry records in digest order over pooled per-pattern
    /// counts, digest counts, raw hits, and a rendered-text blob.
    ///
    /// Infallible — every field is plain data — so crash-safe saving keeps
    /// the same `io::Result` shape it had with JSON.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut syms = SymTableBuilder::new();
        let mut entries = Vec::with_capacity(self.entries.len() * ENTRY_RECORD_BYTES);
        let mut pattern_counts: Vec<u8> = Vec::new();
        let mut digest_counts: Vec<u8> = Vec::new();
        let mut raw: Vec<u8> = Vec::new();
        let mut rendered: Vec<u8> = Vec::new();
        let mut spans: Vec<u8> = Vec::new();

        for (key, entry) in &self.entries {
            // Keys not produced by `ContentDigest::to_hex` cannot be looked
            // up (`get` renders digests the same way) and are dropped by
            // `retain_digests`; skipping them here matches that semantics.
            let Some(digest) = ContentDigest::from_hex(key) else {
                continue;
            };
            let (kind, state) = match entry {
                CacheEntry::ParseFailure => (ENTRY_PARSE_FAILURE, None),
                CacheEntry::Parsed(state) => (ENTRY_PARSED, Some(state)),
            };
            let (pc_off, pc_len) = (
                (pattern_counts.len() / PATTERN_COUNT_RECORD_BYTES) as u32,
                state.map_or(0, |s| s.pattern_counts.len()) as u32,
            );
            let (dc_off, dc_len) = (
                (digest_counts.len() / DIGEST_COUNT_RECORD_BYTES) as u32,
                state.map_or(0, |s| s.digest_counts.len()) as u32,
            );
            let (raw_off, raw_len) = (
                (raw.len() / RAW_RECORD_BYTES) as u32,
                state.map_or(0, |s| s.raw.len()) as u32,
            );
            // Spans not rendered by `ContentDigest::to_hex` cannot key a
            // region lookup, mirroring the entry-key rule above.
            let span_digests: Vec<ContentDigest> = state.map_or_else(Vec::new, |s| {
                s.spans
                    .iter()
                    .filter_map(|k| ContentDigest::from_hex(k))
                    .collect()
            });
            let (spans_off, spans_len) = (
                (spans.len() / SPAN_RECORD_BYTES) as u32,
                span_digests.len() as u32,
            );
            for d in &span_digests {
                spans.extend_from_slice(&(d.0 as u64).to_le_bytes());
                spans.extend_from_slice(&((d.0 >> 64) as u64).to_le_bytes());
            }
            if let Some(state) = state {
                for &(idx, c) in &state.pattern_counts {
                    pattern_counts.extend_from_slice(&(idx as u64).to_le_bytes());
                    pattern_counts.extend_from_slice(&c.matches.to_le_bytes());
                    pattern_counts.extend_from_slice(&c.satisfactions.to_le_bytes());
                    pattern_counts.extend_from_slice(&c.violations.to_le_bytes());
                }
                for &(d, n) in &state.digest_counts {
                    digest_counts.extend_from_slice(&d.to_le_bytes());
                    digest_counts.extend_from_slice(&n.to_le_bytes());
                }
                for hit in &state.raw {
                    raw.extend_from_slice(&hit.line.to_le_bytes());
                    raw.extend_from_slice(&(rendered.len() as u32).to_le_bytes());
                    raw.extend_from_slice(&(hit.rendered.len() as u32).to_le_bytes());
                    raw.extend_from_slice(&syms.id(hit.original).to_le_bytes());
                    raw.extend_from_slice(&syms.id(hit.suggested).to_le_bytes());
                    raw.extend_from_slice(&0u32.to_le_bytes()); // padding
                    raw.extend_from_slice(&hit.digest.to_le_bytes());
                    raw.extend_from_slice(&(hit.path_count as u64).to_le_bytes());
                    raw.extend_from_slice(&(hit.pattern_idx as u64).to_le_bytes());
                    rendered.extend_from_slice(hit.rendered.as_bytes());
                }
            }
            entries.extend_from_slice(&(digest.0 as u64).to_le_bytes());
            entries.extend_from_slice(&((digest.0 >> 64) as u64).to_le_bytes());
            entries.extend_from_slice(&kind.to_le_bytes());
            entries.extend_from_slice(&0u32.to_le_bytes()); // padding
            for v in [
                pc_off, pc_len, dc_off, dc_len, raw_off, raw_len, spans_off, spans_len,
            ] {
                entries.extend_from_slice(&v.to_le_bytes());
            }
        }

        let mut regions = Vec::with_capacity(self.regions.len() * REGION_RECORD_BYTES);
        let mut outcomes: Vec<u8> = Vec::new();
        for (key, region) in &self.regions {
            // Same rule as entry keys: only hex-rendered digests round-trip.
            let Some(digest) = ContentDigest::from_hex(key) else {
                continue;
            };
            let out_off = (outcomes.len() / OUTCOME_RECORD_BYTES) as u32;
            for o in &region.outcomes {
                let mut flags = 0u32;
                if o.satisfied {
                    flags |= OUTCOME_SATISFIED;
                }
                let (original, suggested) = match o.names {
                    Some((original, suggested)) => {
                        flags |= OUTCOME_HAS_NAMES;
                        (syms.id(original), syms.id(suggested))
                    }
                    None => (0, 0),
                };
                outcomes.extend_from_slice(&(o.pattern_idx as u64).to_le_bytes());
                outcomes.extend_from_slice(&original.to_le_bytes());
                outcomes.extend_from_slice(&suggested.to_le_bytes());
                outcomes.extend_from_slice(&flags.to_le_bytes());
                outcomes.extend_from_slice(&0u32.to_le_bytes()); // padding
            }
            regions.extend_from_slice(&(digest.0 as u64).to_le_bytes());
            regions.extend_from_slice(&((digest.0 >> 64) as u64).to_le_bytes());
            regions.extend_from_slice(&out_off.to_le_bytes());
            regions.extend_from_slice(&(region.outcomes.len() as u32).to_le_bytes());
        }

        let mut meta = Vec::with_capacity(CACHE_META_BYTES);
        meta.extend_from_slice(&self.version.to_le_bytes());
        meta.extend_from_slice(&0u32.to_le_bytes()); // padding
        meta.extend_from_slice(&self.fingerprint.to_le_bytes());

        let mut w = BinWriter::new(binfmt::KIND_CACHE);
        w.section(CACHE_SEC_META, meta);
        w.section(CACHE_SEC_SYMS, syms.encode());
        w.section(CACHE_SEC_ENTRIES, entries);
        w.section(CACHE_SEC_PATTERN_COUNTS, pattern_counts);
        w.section(CACHE_SEC_DIGEST_COUNTS, digest_counts);
        w.section(CACHE_SEC_RAW, raw);
        w.section(CACHE_SEC_RENDERED, rendered);
        w.section(CACHE_SEC_SPANS, spans);
        w.section(CACHE_SEC_REGIONS, regions);
        w.section(CACHE_SEC_OUTCOMES, outcomes);
        w.finish()
    }

    /// Decodes a binary cache and validates it against `fingerprint`.
    ///
    /// Never fails: a digest mismatch, truncation, or any malformed block
    /// degrades to [`CacheLoadStatus::Corrupt`] (cold), version and
    /// fingerprint mismatches to their own statuses — exactly the JSON
    /// semantics.
    pub fn from_binary(bytes: &[u8], fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        match ScanCache::decode_binary(bytes) {
            Ok(parsed) => ScanCache::accept(parsed, fingerprint),
            Err(BinError::UnsupportedVersion(_)) => {
                (ScanCache::empty(fingerprint), CacheLoadStatus::VersionMismatch)
            }
            Err(_) => (ScanCache::empty(fingerprint), CacheLoadStatus::Corrupt),
        }
    }

    fn decode_binary(bytes: &[u8]) -> Result<ScanCache, BinError> {
        let file = BinFile::parse_kind(bytes, binfmt::KIND_CACHE)?;
        let meta = file.require(CACHE_SEC_META)?;
        if meta.len() != CACHE_META_BYTES {
            return Err(BinError::Malformed(format!(
                "cache meta section is {} bytes, expected {CACHE_META_BYTES}",
                meta.len()
            )));
        }
        let version = flat::read_u32(meta, 0)?;
        // Check the format version before requiring any v2 section: a v1
        // binary is a clean [`CacheLoadStatus::VersionMismatch`] (cold,
        // never wrong), not a corrupt file.
        if version != CACHE_FORMAT_VERSION {
            return Err(BinError::UnsupportedVersion(version));
        }
        let fingerprint = flat::read_u64(meta, 8)?;

        let syms = SymTable::decode(file.require(CACHE_SEC_SYMS)?)?;
        let entry_bytes = file.require(CACHE_SEC_ENTRIES)?;
        let pc_bytes = file.require(CACHE_SEC_PATTERN_COUNTS)?;
        let dc_bytes = file.require(CACHE_SEC_DIGEST_COUNTS)?;
        let raw_bytes = file.require(CACHE_SEC_RAW)?;
        let rendered = file.require(CACHE_SEC_RENDERED)?;
        let spans_bytes = file.require(CACHE_SEC_SPANS)?;
        let region_bytes = file.require(CACHE_SEC_REGIONS)?;
        let outcome_bytes = file.require(CACHE_SEC_OUTCOMES)?;
        for (len, record, what) in [
            (entry_bytes.len(), ENTRY_RECORD_BYTES, "entry"),
            (pc_bytes.len(), PATTERN_COUNT_RECORD_BYTES, "pattern-count"),
            (dc_bytes.len(), DIGEST_COUNT_RECORD_BYTES, "digest-count"),
            (raw_bytes.len(), RAW_RECORD_BYTES, "raw-hit"),
            (spans_bytes.len(), SPAN_RECORD_BYTES, "span"),
            (region_bytes.len(), REGION_RECORD_BYTES, "region"),
            (outcome_bytes.len(), OUTCOME_RECORD_BYTES, "outcome"),
        ] {
            if len % record != 0 {
                return Err(BinError::Malformed(format!(
                    "{what} section length {len} not a record multiple"
                )));
            }
        }
        let pc_total = pc_bytes.len() / PATTERN_COUNT_RECORD_BYTES;
        let dc_total = dc_bytes.len() / DIGEST_COUNT_RECORD_BYTES;
        let raw_total = raw_bytes.len() / RAW_RECORD_BYTES;
        let spans_total = spans_bytes.len() / SPAN_RECORD_BYTES;
        let outcome_total = outcome_bytes.len() / OUTCOME_RECORD_BYTES;
        let range = |off: u32, len: u32, total: usize, what: &str| -> Result<(usize, usize), BinError> {
            let (off, len) = (off as usize, len as usize);
            if off.checked_add(len).is_none_or(|end| end > total) {
                return Err(BinError::Malformed(format!(
                    "{what} range {off}+{len} out of pool ({total})"
                )));
            }
            Ok((off, len))
        };

        let mut entries = BTreeMap::new();
        for at in (0..entry_bytes.len()).step_by(ENTRY_RECORD_BYTES) {
            let lo = flat::read_u64(entry_bytes, at)?;
            let hi = flat::read_u64(entry_bytes, at + 8)?;
            let digest = ContentDigest((u128::from(hi) << 64) | u128::from(lo));
            let kind = flat::read_u32(entry_bytes, at + 16)?;
            let (pc_off, pc_len) = range(
                flat::read_u32(entry_bytes, at + 24)?,
                flat::read_u32(entry_bytes, at + 28)?,
                pc_total,
                "pattern-count",
            )?;
            let (dc_off, dc_len) = range(
                flat::read_u32(entry_bytes, at + 32)?,
                flat::read_u32(entry_bytes, at + 36)?,
                dc_total,
                "digest-count",
            )?;
            let (raw_off, raw_len) = range(
                flat::read_u32(entry_bytes, at + 40)?,
                flat::read_u32(entry_bytes, at + 44)?,
                raw_total,
                "raw-hit",
            )?;
            let (spans_off, spans_len) = range(
                flat::read_u32(entry_bytes, at + 48)?,
                flat::read_u32(entry_bytes, at + 52)?,
                spans_total,
                "span",
            )?;
            let entry = match kind {
                ENTRY_PARSE_FAILURE => CacheEntry::ParseFailure,
                ENTRY_PARSED => {
                    let mut state = FileScanState::default();
                    for i in pc_off..pc_off + pc_len {
                        let at = i * PATTERN_COUNT_RECORD_BYTES;
                        let idx = usize::try_from(flat::read_u64(pc_bytes, at)?)
                            .map_err(|_| BinError::Malformed("pattern index overflows".into()))?;
                        state.pattern_counts.push((
                            idx,
                            LevelCounts {
                                matches: flat::read_u64(pc_bytes, at + 8)?,
                                satisfactions: flat::read_u64(pc_bytes, at + 16)?,
                                violations: flat::read_u64(pc_bytes, at + 24)?,
                            },
                        ));
                    }
                    for i in dc_off..dc_off + dc_len {
                        let at = i * DIGEST_COUNT_RECORD_BYTES;
                        state.digest_counts.push((
                            flat::read_u64(dc_bytes, at)?,
                            flat::read_u64(dc_bytes, at + 8)?,
                        ));
                    }
                    for i in raw_off..raw_off + raw_len {
                        let at = i * RAW_RECORD_BYTES;
                        let r_off = flat::read_u32(raw_bytes, at + 4)? as usize;
                        let r_len = flat::read_u32(raw_bytes, at + 8)? as usize;
                        let text = r_off
                            .checked_add(r_len)
                            .and_then(|end| rendered.get(r_off..end))
                            .ok_or_else(|| {
                                BinError::Malformed(format!(
                                    "rendered range {r_off}+{r_len} out of blob ({})",
                                    rendered.len()
                                ))
                            })?;
                        let text = std::str::from_utf8(text).map_err(|e| {
                            BinError::Malformed(format!("rendered text is not UTF-8: {e}"))
                        })?;
                        state.raw.push(RawHit {
                            line: flat::read_u32(raw_bytes, at)?,
                            rendered: text.to_owned(),
                            digest: flat::read_u64(raw_bytes, at + 24)?,
                            path_count: usize::try_from(flat::read_u64(raw_bytes, at + 32)?)
                                .map_err(|_| BinError::Malformed("path count overflows".into()))?,
                            pattern_idx: usize::try_from(flat::read_u64(raw_bytes, at + 40)?)
                                .map_err(|_| {
                                    BinError::Malformed("pattern index overflows".into())
                                })?,
                            original: syms.sym(flat::read_u32(raw_bytes, at + 12)?)?,
                            suggested: syms.sym(flat::read_u32(raw_bytes, at + 16)?)?,
                        });
                    }
                    for i in spans_off..spans_off + spans_len {
                        let at = i * SPAN_RECORD_BYTES;
                        let lo = flat::read_u64(spans_bytes, at)?;
                        let hi = flat::read_u64(spans_bytes, at + 8)?;
                        state
                            .spans
                            .push(ContentDigest((u128::from(hi) << 64) | u128::from(lo)).to_hex());
                    }
                    CacheEntry::Parsed(state)
                }
                other => {
                    return Err(BinError::Malformed(format!("unknown entry kind {other}")))
                }
            };
            entries.insert(digest.to_hex(), entry);
        }

        let mut regions = BTreeMap::new();
        for at in (0..region_bytes.len()).step_by(REGION_RECORD_BYTES) {
            let lo = flat::read_u64(region_bytes, at)?;
            let hi = flat::read_u64(region_bytes, at + 8)?;
            let key = ContentDigest((u128::from(hi) << 64) | u128::from(lo)).to_hex();
            let (out_off, out_len) = range(
                flat::read_u32(region_bytes, at + 16)?,
                flat::read_u32(region_bytes, at + 20)?,
                outcome_total,
                "outcome",
            )?;
            let mut outcomes = Vec::with_capacity(out_len);
            for i in out_off..out_off + out_len {
                let at = i * OUTCOME_RECORD_BYTES;
                let pattern_idx = usize::try_from(flat::read_u64(outcome_bytes, at)?)
                    .map_err(|_| BinError::Malformed("pattern index overflows".into()))?;
                let flags = flat::read_u32(outcome_bytes, at + 16)?;
                // Sym id 0 is a valid interned symbol: decode names only
                // when the flag says they were written.
                let names = if flags & OUTCOME_HAS_NAMES != 0 {
                    Some((
                        syms.sym(flat::read_u32(outcome_bytes, at + 8)?)?,
                        syms.sym(flat::read_u32(outcome_bytes, at + 12)?)?,
                    ))
                } else {
                    None
                };
                outcomes.push(RegionOutcome {
                    pattern_idx,
                    satisfied: flags & OUTCOME_SATISFIED != 0,
                    names,
                });
            }
            regions.insert(key, StmtRegion { outcomes });
        }

        Ok(ScanCache {
            version,
            fingerprint,
            entries,
            regions,
        })
    }

    /// Decodes a cache in either format behind a sniff, validating against
    /// `fingerprint`; never fails (non-UTF-8 non-binary bytes are
    /// [`CacheLoadStatus::Corrupt`]).
    pub fn from_bytes(bytes: &[u8], fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        if binfmt::looks_binary(bytes) {
            ScanCache::from_binary(bytes, fingerprint)
        } else {
            match std::str::from_utf8(bytes) {
                Ok(json) => ScanCache::from_json(json, fingerprint),
                Err(_) => (ScanCache::empty(fingerprint), CacheLoadStatus::Corrupt),
            }
        }
    }

    /// Loads a cache file (either format) through `vfs`; a missing or
    /// unreadable file is a cold start, not an error.
    pub fn load_via(vfs: &dyn Vfs, path: &Path, fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        match vfs.read(path) {
            Ok(bytes) => ScanCache::from_bytes(&bytes, fingerprint),
            Err(_) => (ScanCache::empty(fingerprint), CacheLoadStatus::Cold),
        }
    }

    /// Loads a cache file from the real filesystem; a missing or
    /// unreadable file is a cold start, not an error.
    pub fn load(path: &Path, fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        ScanCache::load_via(&RealFs, path, fingerprint)
    }

    /// Writes the cache to `path` in the binary format, crash-safely
    /// through `vfs` (write-temp + fsync + atomic rename, DESIGN.md §11):
    /// a killed process leaves the previous cache or the new one, never a
    /// truncation that would show up as a corrupt (cold-degraded) load.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn save_via(&self, vfs: &dyn Vfs, path: &Path) -> io::Result<()> {
        atomic_write(vfs, path, &self.to_binary())
    }

    /// Writes the cache to `path` crash-safely on the real filesystem.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_via(&RealFs, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_patterns::MiningConfig;
    use namer_syntax::{Sym, SourceFile};

    fn trained() -> (Namer, Vec<SourceFile>) {
        let mut files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 5),
                    format!("f{i}.py"),
                    "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n",
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new(
            "r0",
            "bad.py",
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n",
            Lang::Python,
        ));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        let config = NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
            labeled_per_class: 3,
            cv_repeats: 2,
            ..NamerConfig::default()
        };
        let namer = Namer::train(
            &files,
            &commits,
            |v| v.original.as_str() == "True",
            &config,
        );
        (namer, files)
    }

    #[test]
    fn save_load_round_trip_preserves_reports() {
        let (namer, files) = trained();
        let json = SavedModel::from_namer(&namer).to_json().unwrap();
        let mut before_session = crate::session::NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("session builds");
        let before: Vec<String> = before_session
            .run(&files)
            .expect("cacheless run cannot fail")
            .reports
            .iter()
            .map(|r| r.to_string())
            .collect();
        let mut after_session = crate::session::NamerBuilder::new()
            .model(SavedModel::from_json(&json).expect("round trip parses"))
            .build()
            .expect("session builds");
        let after: Vec<String> = after_session
            .run(&files)
            .expect("cacheless run cannot fail")
            .reports
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(before, after);
        let loaded = after_session.into_namer();
        assert_eq!(loaded.model_kind, before_session.namer().model_kind);
        assert_eq!(loaded.lang(), Lang::Python);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            SavedModel::from_json("{not json"),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (namer, _) = trained();
        let mut model = SavedModel::from_namer(&namer);
        model.version = 999;
        let json = model.to_json().unwrap();
        assert!(matches!(
            SavedModel::from_json(&json),
            Err(PersistError::UnsupportedVersion(999))
        ));
        let bytes = model.to_binary().unwrap();
        assert!(matches!(
            SavedModel::from_binary(&bytes),
            Err(PersistError::UnsupportedVersion(999))
        ));
    }

    #[test]
    fn classifier_presence_round_trips() {
        let (namer, _) = trained();
        let had = namer.has_classifier();
        let json = SavedModel::from_namer(&namer).to_json().unwrap();
        let loaded = SavedModel::from_json(&json)
            .unwrap()
            .into_namer(NamerConfig::default());
        assert_eq!(loaded.has_classifier(), had);
    }

    #[test]
    fn model_binary_round_trips_exactly() {
        let (namer, _) = trained();
        let model = SavedModel::from_namer(&namer);
        let bytes = model.to_binary().unwrap();
        let back = SavedModel::from_bytes(&bytes).unwrap();
        // The JSON rendering is a complete, deterministic view of the
        // model within one process, so string equality is full equality.
        assert_eq!(model.to_json().unwrap(), back.to_json().unwrap());
        assert_eq!(back.classifier.is_some(), model.classifier.is_some());
        // Encoding is deterministic byte for byte.
        assert_eq!(bytes, back.to_binary().unwrap());
    }

    #[test]
    fn model_sniff_reads_both_formats() {
        let (namer, _) = trained();
        let model = SavedModel::from_namer(&namer);
        let json = model.to_json().unwrap();
        let from_json = SavedModel::from_bytes(json.as_bytes()).unwrap();
        let from_bin = SavedModel::from_bytes(&model.to_binary().unwrap()).unwrap();
        assert_eq!(from_json.to_json().unwrap(), from_bin.to_json().unwrap());
    }

    #[test]
    fn corrupt_binary_model_is_an_error_never_a_panic() {
        let (namer, _) = trained();
        let good = SavedModel::from_namer(&namer).to_binary().unwrap();
        // Truncations at every length.
        for cut in 0..good.len().min(200) {
            assert!(SavedModel::from_bytes(&good[..cut]).is_err());
        }
        assert!(SavedModel::from_bytes(&good[..good.len() - 1]).is_err());
        // A bit flip in the payload is caught by the container digest.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            SavedModel::from_bytes(&flipped),
            Err(PersistError::Malformed(_))
        ));
        // Non-UTF-8 bytes that are not a container are malformed, not io.
        assert!(matches!(
            SavedModel::from_bytes(&[0xFF, 0xFE, 0x00]),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn model_and_cache_kinds_do_not_cross_load() {
        let (namer, _) = trained();
        let model_bytes = SavedModel::from_namer(&namer).to_binary().unwrap();
        let (c, s) = ScanCache::from_bytes(&model_bytes, 42);
        assert_eq!(s, CacheLoadStatus::Corrupt);
        assert!(c.is_empty());
        let cache_bytes = ScanCache::empty(42).to_binary();
        assert!(matches!(
            SavedModel::from_bytes(&cache_bytes),
            Err(PersistError::Malformed(_))
        ));
    }

    fn sample_cache() -> ScanCache {
        let mut cache = ScanCache::empty(42);
        let d1 = namer_syntax::content_digest("x = 1\n", Lang::Python);
        let d2 = namer_syntax::content_digest("y = 2\n", Lang::Python);
        let span_a = ContentDigest(0x1234_5678_9ABC_DEF0_u128).to_hex();
        let span_b = ContentDigest(u128::MAX - 7).to_hex();
        cache.insert(d1, CacheEntry::ParseFailure);
        cache.insert(
            d2,
            CacheEntry::Parsed(FileScanState {
                pattern_counts: vec![
                    (0, LevelCounts { matches: 3, satisfactions: 2, violations: 1 }),
                    (7, LevelCounts { matches: 1, satisfactions: 1, violations: 0 }),
                ],
                digest_counts: vec![(11, 2), (u64::MAX, 1)],
                raw: vec![RawHit {
                    line: 9,
                    rendered: "self.assertTrue(v, 1) — naïve".to_owned(),
                    digest: 0xDEAD_BEEF,
                    path_count: 5,
                    pattern_idx: 7,
                    original: Sym::intern("True"),
                    suggested: Sym::intern("Equal"),
                }],
                spans: vec![span_a.clone(), span_b.clone()],
            }),
        );
        cache.insert_region(
            span_a,
            StmtRegion {
                outcomes: vec![
                    RegionOutcome { pattern_idx: 0, satisfied: true, names: None },
                    RegionOutcome {
                        pattern_idx: 7,
                        satisfied: false,
                        names: Some((Sym::intern("True"), Sym::intern("Equal"))),
                    },
                ],
            },
        );
        cache.insert_region(span_b, StmtRegion { outcomes: Vec::new() });
        cache
    }

    #[test]
    fn scan_cache_round_trips() {
        let cache = sample_cache();
        let (back, status) = ScanCache::from_json(&cache.to_json().unwrap(), 42);
        assert_eq!(status, CacheLoadStatus::Warm(2));
        assert_eq!(back, cache);
    }

    #[test]
    fn cache_binary_round_trips_exactly() {
        let cache = sample_cache();
        let bytes = cache.to_binary();
        let (back, status) = ScanCache::from_bytes(&bytes, 42);
        assert_eq!(status, CacheLoadStatus::Warm(2));
        assert_eq!(back, cache);
        // Encoding is deterministic byte for byte.
        assert_eq!(back.to_binary(), bytes);
    }

    #[test]
    fn corrupt_binary_cache_degrades_cold_never_fails() {
        let cache = sample_cache();
        let good = cache.to_binary();
        for cut in 0..good.len() {
            let (c, s) = ScanCache::from_bytes(&good[..cut], 42);
            assert!(matches!(s, CacheLoadStatus::Corrupt), "truncation at {cut}: {s:?}");
            assert!(c.is_empty());
            assert_eq!(c.fingerprint(), 42);
        }
        for i in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[i] ^= 0x08;
            let (c, s) = ScanCache::from_bytes(&bad, 42);
            // Any accepted load must carry the right fingerprint; flips are
            // otherwise rejected as corrupt (or, for the version field the
            // digest can't distinguish from a legitimate old file, as a
            // mismatch) — never a panic, never wrong data.
            assert!(
                matches!(s, CacheLoadStatus::Corrupt | CacheLoadStatus::VersionMismatch),
                "flip at {i}: {s:?}"
            );
            assert!(c.is_empty());
        }
    }

    #[test]
    fn binary_cache_version_and_fingerprint_mismatches() {
        let mut cache = sample_cache();
        let (_, s) = ScanCache::from_bytes(&cache.to_binary(), 43);
        assert_eq!(s, CacheLoadStatus::FingerprintMismatch);
        cache.version = CACHE_FORMAT_VERSION + 1;
        let (c, s) = ScanCache::from_bytes(&cache.to_binary(), 42);
        assert_eq!(s, CacheLoadStatus::VersionMismatch);
        assert!(c.is_empty());
    }

    #[test]
    fn scan_cache_rejects_corruption_and_mismatches() {
        let cache = ScanCache::empty(42);
        let json = cache.to_json().unwrap();

        let (c, s) = ScanCache::from_json("{definitely not json", 42);
        assert_eq!(s, CacheLoadStatus::Corrupt);
        assert!(c.is_empty());

        let (c, s) = ScanCache::from_json(&json[..json.len() / 2], 42);
        assert_eq!(s, CacheLoadStatus::Corrupt);
        assert!(c.is_empty());

        let (c, s) = ScanCache::from_json(&json, 43);
        assert_eq!(s, CacheLoadStatus::FingerprintMismatch);
        assert_eq!(c.fingerprint(), 43);

        let bumped = json.replacen(
            &format!("\"version\":{CACHE_FORMAT_VERSION}"),
            "\"version\":999",
            1,
        );
        assert_ne!(bumped, json, "version field was rewritten");
        let (c, s) = ScanCache::from_json(&bumped, 42);
        assert_eq!(s, CacheLoadStatus::VersionMismatch);
        assert!(c.is_empty());

        // A v1 cache body — the file-granular format this version
        // replaced — parses structurally but is rejected by version:
        // cold, never wrong (DESIGN.md §14).
        let v1 = r#"{"version":1,"fingerprint":42,"entries":{}}"#;
        let (c, s) = ScanCache::from_json(v1, 42);
        assert_eq!(s, CacheLoadStatus::VersionMismatch);
        assert!(c.is_empty());
    }

    #[test]
    fn scan_cache_retains_only_live_digests() {
        let mut cache = ScanCache::empty(7);
        let a = namer_syntax::content_digest("a = 1\n", Lang::Python);
        let b = namer_syntax::content_digest("b = 2\n", Lang::Python);
        cache.insert(a, CacheEntry::ParseFailure);
        cache.insert(b, CacheEntry::ParseFailure);
        let live: HashSet<ContentDigest> = [a].into_iter().collect();
        cache.retain_digests(&live);
        assert!(cache.contains(a));
        assert!(!cache.contains(b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn retain_digests_sweeps_unreferenced_regions() {
        let cache = sample_cache();
        let d2 = namer_syntax::content_digest("y = 2\n", Lang::Python);
        assert_eq!(cache.regions().len(), 2);

        // The parsed entry survives: its spans keep both regions alive.
        let mut keep = cache.clone();
        keep.retain_digests(&[d2].into_iter().collect());
        assert_eq!(keep.len(), 1);
        assert_eq!(keep.regions().len(), 2);

        // Nothing survives: the regions are unreferenced and swept.
        let mut sweep = cache.clone();
        sweep.retain_digests(&HashSet::new());
        assert!(sweep.is_empty());
        assert!(sweep.regions().is_empty());
    }
}
