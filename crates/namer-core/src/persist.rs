//! Saving and loading trained Namer systems and scan caches.
//!
//! Mining over a large corpus is the expensive step; a deployed detector
//! (what the paper envisions as an IDE plugin or CI bot, §5.4) loads a
//! pre-trained model and scans new code. [`SavedModel`] captures everything
//! inference needs: the mined patterns with their dataset statistics, the
//! confusing word pairs, and the classifier pipeline.
//!
//! [`ScanCache`] persists per-file scan state between CI runs, keyed by
//! content digest and guarded by the detector fingerprint (DESIGN.md §8).
//! Unlike model loading, cache loading *never* fails: any mismatch or
//! corruption degrades to an empty cache and therefore a cold — but still
//! correct — scan.

use crate::detector::{Detector, FileScanState};
use crate::error::NamerError;
use crate::features::LevelCounts;
use crate::namer::{Namer, NamerConfig};
use crate::vfs::{atomic_write, RealFs, Vfs};
use namer_ml::{ModelKind, Pipeline};
use namer_patterns::{ConfusingPairs, NamePattern};
use namer_syntax::{ContentDigest, Lang};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::Path;

/// A serialisable snapshot of a trained [`Namer`].
#[derive(Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Language the system was trained for.
    pub lang: Lang,
    /// Whether the §4.1 analyses were enabled at training time (scanning
    /// must use the same setting or paths will not line up).
    pub use_analysis: bool,
    /// Mined name patterns.
    pub patterns: Vec<NamePattern>,
    /// Dataset-level counts per pattern (features 6/9/12).
    pub dataset: Vec<LevelCounts>,
    /// Mined confusing word pairs (feature 17 + mining provenance).
    pub pairs: ConfusingPairs,
    /// The defect classifier, absent for "w/o C" systems.
    pub classifier: Option<Pipeline>,
    /// Which linear model the classifier uses.
    pub model_kind: ModelKind,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from loading a saved model.
#[derive(Debug)]
pub enum PersistError {
    /// The JSON did not parse or did not match the schema.
    Malformed(String),
    /// The format version is not supported.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(e) => write!(f, "malformed model file: {e}"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl SavedModel {
    /// Snapshots a trained system.
    pub fn from_namer(namer: &Namer) -> SavedModel {
        SavedModel {
            version: FORMAT_VERSION,
            lang: namer.lang(),
            use_analysis: namer.config().process.use_analysis,
            patterns: namer.detector.patterns.patterns.clone(),
            dataset: namer.detector.dataset_counts_all().to_vec(),
            pairs: namer.detector.pairs.clone(),
            classifier: namer.classifier().cloned(),
            model_kind: namer.model_kind,
        }
    }

    /// Restores a runnable system. `config` supplies the runtime knobs
    /// (path limits, analysis parameters); its `use_analysis` flag is
    /// overridden by the persisted one so scanning matches training.
    pub fn into_namer(self, mut config: NamerConfig) -> Namer {
        config.process.use_analysis = self.use_analysis;
        config.use_classifier = self.classifier.is_some();
        let detector = Detector::from_parts(self.patterns, self.pairs, self.dataset);
        Namer::assemble(detector, self.classifier, self.model_kind, self.lang, config)
    }

    /// Serialises to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serde serialisation fails, which cannot happen for
    /// this self-describing structure.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SavedModel serialises")
    }

    /// Parses a model file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed JSON or unknown versions.
    pub fn from_json(json: &str) -> Result<SavedModel, PersistError> {
        let model: SavedModel =
            serde_json::from_str(json).map_err(|e| PersistError::Malformed(e.to_string()))?;
        if model.version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(model.version));
        }
        Ok(model)
    }

    /// Writes the model to `path` crash-safely through `vfs` (write-temp +
    /// fsync + atomic rename, DESIGN.md §11): a process killed mid-save
    /// leaves either the previous model or the new one, never a
    /// truncation.
    ///
    /// # Errors
    ///
    /// The underlying I/O error when the write or rename fails.
    pub fn save_via(&self, vfs: &dyn Vfs, path: &Path) -> io::Result<()> {
        atomic_write(vfs, path, self.to_json().as_bytes())
    }

    /// Writes the model to `path` crash-safely on the real filesystem.
    ///
    /// # Errors
    ///
    /// The underlying I/O error when the write or rename fails.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_via(&RealFs, path)
    }

    /// Loads a model file through `vfs`.
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] when the file cannot be read,
    /// [`NamerError::Model`] when it parses but cannot be used.
    pub fn load_via(vfs: &dyn Vfs, path: &Path) -> Result<SavedModel, NamerError> {
        let json = vfs
            .read_to_string(path)
            .map_err(|e| NamerError::io(path, e))?;
        SavedModel::from_json(&json).map_err(NamerError::from)
    }
}

/// Current scan-cache format version (independent of the model format).
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// One cached entry: the file either parsed (with its scan state) or is
/// known unparsable, so the incremental scan never re-parses it either way.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CacheEntry {
    /// The file parsed; its per-file scan state.
    Parsed(FileScanState),
    /// The file failed to parse under the fingerprinted configuration.
    ParseFailure,
}

/// How a persisted cache was (or was not) accepted at load time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheLoadStatus {
    /// No cache file (or it was unreadable); starting cold.
    Cold,
    /// Cache accepted with this many entries.
    Warm(usize),
    /// The file did not parse as a cache; discarded.
    Corrupt,
    /// The cache was written by a different format version; discarded.
    VersionMismatch,
    /// The cache belongs to a different detector/config; discarded.
    FingerprintMismatch,
}

impl std::fmt::Display for CacheLoadStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLoadStatus::Cold => write!(f, "cold (no cache)"),
            CacheLoadStatus::Warm(n) => write!(f, "warm ({n} entries)"),
            CacheLoadStatus::Corrupt => write!(f, "cold (cache corrupt, discarded)"),
            CacheLoadStatus::VersionMismatch => {
                write!(f, "cold (cache format version mismatch, discarded)")
            }
            CacheLoadStatus::FingerprintMismatch => {
                write!(f, "cold (detector fingerprint changed, discarded)")
            }
        }
    }
}

/// Persisted per-file scan state, keyed by content-digest hex strings.
///
/// A `BTreeMap` keeps serialization deterministic: the same corpus and
/// detector always produce byte-identical cache files.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScanCache {
    /// Cache format version.
    version: u32,
    /// Fingerprint of the detector + preprocessing config this cache is
    /// valid for ([`Detector::fingerprint`]).
    fingerprint: u64,
    /// Scan state per content digest (hex-encoded).
    entries: BTreeMap<String, CacheEntry>,
}

impl ScanCache {
    /// Creates an empty cache bound to `fingerprint`.
    pub fn empty(fingerprint: u64) -> ScanCache {
        ScanCache {
            version: CACHE_FORMAT_VERSION,
            fingerprint,
            entries: BTreeMap::new(),
        }
    }

    /// The detector fingerprint this cache is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `digest` has a cached entry.
    pub fn contains(&self, digest: ContentDigest) -> bool {
        self.entries.contains_key(&digest.to_hex())
    }

    /// The cached entry for `digest`, if any.
    pub fn get(&self, digest: ContentDigest) -> Option<&CacheEntry> {
        self.entries.get(&digest.to_hex())
    }

    /// Inserts (or replaces) the entry for `digest`.
    pub fn insert(&mut self, digest: ContentDigest, entry: CacheEntry) {
        self.entries.insert(digest.to_hex(), entry);
    }

    /// Drops every entry whose digest is not in `live`, so the cache tracks
    /// the current corpus instead of growing without bound.
    pub fn retain_digests(&mut self, live: &HashSet<ContentDigest>) {
        self.entries
            .retain(|k, _| ContentDigest::from_hex(k).is_some_and(|d| live.contains(&d)));
    }

    /// Serialises to compact JSON (caches are machine-read only).
    ///
    /// # Panics
    ///
    /// Panics only if serde serialisation fails, which cannot happen for
    /// this self-describing structure.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ScanCache serialises")
    }

    /// Parses a cache, validating it against `fingerprint`.
    ///
    /// Never fails: anything unacceptable — unparsable JSON, a different
    /// format version, a different fingerprint — returns an empty cache and
    /// the reason, degrading the next scan to cold rather than wrong.
    pub fn from_json(json: &str, fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        let parsed: ScanCache = match serde_json::from_str(json) {
            Ok(c) => c,
            Err(_) => return (ScanCache::empty(fingerprint), CacheLoadStatus::Corrupt),
        };
        if parsed.version != CACHE_FORMAT_VERSION {
            return (ScanCache::empty(fingerprint), CacheLoadStatus::VersionMismatch);
        }
        if parsed.fingerprint != fingerprint {
            return (
                ScanCache::empty(fingerprint),
                CacheLoadStatus::FingerprintMismatch,
            );
        }
        let n = parsed.len();
        (parsed, CacheLoadStatus::Warm(n))
    }

    /// Loads a cache file through `vfs`; a missing or unreadable file is a
    /// cold start, not an error.
    pub fn load_via(vfs: &dyn Vfs, path: &Path, fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        match vfs.read_to_string(path) {
            Ok(json) => ScanCache::from_json(&json, fingerprint),
            Err(_) => (ScanCache::empty(fingerprint), CacheLoadStatus::Cold),
        }
    }

    /// Loads a cache file from the real filesystem; a missing or
    /// unreadable file is a cold start, not an error.
    pub fn load(path: &Path, fingerprint: u64) -> (ScanCache, CacheLoadStatus) {
        ScanCache::load_via(&RealFs, path, fingerprint)
    }

    /// Writes the cache to `path` crash-safely through `vfs` (write-temp +
    /// fsync + atomic rename, DESIGN.md §11): a killed process leaves the
    /// previous cache or the new one, never a truncation that would show
    /// up as a corrupt (cold-degraded) load.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn save_via(&self, vfs: &dyn Vfs, path: &Path) -> io::Result<()> {
        atomic_write(vfs, path, self.to_json().as_bytes())
    }

    /// Writes the cache to `path` crash-safely on the real filesystem.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_via(&RealFs, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_patterns::MiningConfig;
    use namer_syntax::SourceFile;

    fn trained() -> (Namer, Vec<SourceFile>) {
        let mut files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 5),
                    format!("f{i}.py"),
                    "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n",
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new(
            "r0",
            "bad.py",
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n",
            Lang::Python,
        ));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        let config = NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
            labeled_per_class: 3,
            cv_repeats: 2,
            ..NamerConfig::default()
        };
        let namer = Namer::train(
            &files,
            &commits,
            |v| v.original.as_str() == "True",
            &config,
        );
        (namer, files)
    }

    #[test]
    fn save_load_round_trip_preserves_reports() {
        let (namer, files) = trained();
        let json = SavedModel::from_namer(&namer).to_json();
        let mut before_session = crate::session::NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("session builds");
        let before: Vec<String> = before_session
            .run(&files)
            .expect("cacheless run cannot fail")
            .reports
            .iter()
            .map(|r| r.to_string())
            .collect();
        let mut after_session = crate::session::NamerBuilder::new()
            .model(SavedModel::from_json(&json).expect("round trip parses"))
            .build()
            .expect("session builds");
        let after: Vec<String> = after_session
            .run(&files)
            .expect("cacheless run cannot fail")
            .reports
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(before, after);
        let loaded = after_session.into_namer();
        assert_eq!(loaded.model_kind, before_session.namer().model_kind);
        assert_eq!(loaded.lang(), Lang::Python);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            SavedModel::from_json("{not json"),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (namer, _) = trained();
        let mut model = SavedModel::from_namer(&namer);
        model.version = 999;
        let json = model.to_json();
        assert!(matches!(
            SavedModel::from_json(&json),
            Err(PersistError::UnsupportedVersion(999))
        ));
    }

    #[test]
    fn classifier_presence_round_trips() {
        let (namer, _) = trained();
        let had = namer.has_classifier();
        let json = SavedModel::from_namer(&namer).to_json();
        let loaded = SavedModel::from_json(&json)
            .unwrap()
            .into_namer(NamerConfig::default());
        assert_eq!(loaded.has_classifier(), had);
    }

    #[test]
    fn scan_cache_round_trips() {
        let mut cache = ScanCache::empty(42);
        let d = namer_syntax::content_digest("x = 1\n", Lang::Python);
        cache.insert(d, CacheEntry::ParseFailure);
        assert!(cache.contains(d));
        let (back, status) = ScanCache::from_json(&cache.to_json(), 42);
        assert_eq!(status, CacheLoadStatus::Warm(1));
        assert_eq!(back, cache);
    }

    #[test]
    fn scan_cache_rejects_corruption_and_mismatches() {
        let cache = ScanCache::empty(42);
        let json = cache.to_json();

        let (c, s) = ScanCache::from_json("{definitely not json", 42);
        assert_eq!(s, CacheLoadStatus::Corrupt);
        assert!(c.is_empty());

        let (c, s) = ScanCache::from_json(&json[..json.len() / 2], 42);
        assert_eq!(s, CacheLoadStatus::Corrupt);
        assert!(c.is_empty());

        let (c, s) = ScanCache::from_json(&json, 43);
        assert_eq!(s, CacheLoadStatus::FingerprintMismatch);
        assert_eq!(c.fingerprint(), 43);

        let bumped = json.replacen("\"version\":1", "\"version\":2", 1);
        let (c, s) = ScanCache::from_json(&bumped, 42);
        assert_eq!(s, CacheLoadStatus::VersionMismatch);
        assert!(c.is_empty());
    }

    #[test]
    fn scan_cache_retains_only_live_digests() {
        let mut cache = ScanCache::empty(7);
        let a = namer_syntax::content_digest("a = 1\n", Lang::Python);
        let b = namer_syntax::content_digest("b = 2\n", Lang::Python);
        cache.insert(a, CacheEntry::ParseFailure);
        cache.insert(b, CacheEntry::ParseFailure);
        let live: HashSet<ContentDigest> = [a].into_iter().collect();
        cache.retain_digests(&live);
        assert!(cache.contains(a));
        assert!(!cache.contains(b));
        assert_eq!(cache.len(), 1);
    }
}
