//! Corpus preprocessing: parse → analyse → extract statements → AST+ →
//! name paths, once per file, shared by mining and detection.

use namer_analysis::{AnalysisConfig, FileAnalysis};
use namer_observe::{Counter, Observer, Phase};
use namer_patterns::PathSet;
use namer_syntax::transform::Origins;
use namer_syntax::{namepath, parse_file, stmt, transform, SourceFile};
use std::time::Instant;

/// Preprocessing options.
#[derive(Clone, Copy, Debug)]
pub struct ProcessConfig {
    /// Run the §4.1 static analyses and decorate AST+ with origins.
    /// Disabling this is the paper's "w/o A" ablation.
    pub use_analysis: bool,
    /// Maximum name paths kept per statement (paper: 10).
    pub max_paths: usize,
    /// Points-to configuration.
    pub analysis: AnalysisConfig,
}

impl Default for ProcessConfig {
    fn default() -> ProcessConfig {
        ProcessConfig {
            use_analysis: true,
            max_paths: 10,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// One preprocessed statement.
#[derive(Clone, Debug)]
pub struct ProcessedStmt {
    /// 1-based source line.
    pub line: u32,
    /// Indexed name paths.
    pub paths: PathSet,
    /// Structural digest of the statement tree (for "identical statements").
    pub digest: u64,
    /// Rendered statement (for reports).
    pub rendered: String,
}

/// One preprocessed file.
#[derive(Clone, Debug)]
pub struct ProcessedFile {
    /// Repository identity.
    pub repo: String,
    /// Path within the repository.
    pub path: String,
    /// Statements in source order.
    pub stmts: Vec<ProcessedStmt>,
}

/// A fully preprocessed corpus.
#[derive(Clone, Debug, Default)]
pub struct ProcessedCorpus {
    /// Files that parsed successfully.
    pub files: Vec<ProcessedFile>,
    /// Count of files skipped due to parse errors.
    pub parse_failures: usize,
}

impl ProcessedCorpus {
    /// Total number of statements.
    pub fn stmt_count(&self) -> usize {
        self.files.iter().map(|f| f.stmts.len()).sum()
    }

    /// Iterates over all statements with their file.
    pub fn iter_stmts(&self) -> impl Iterator<Item = (&ProcessedFile, &ProcessedStmt)> {
        self.files
            .iter()
            .flat_map(|f| f.stmts.iter().map(move |s| (f, s)))
    }
}

/// Preprocesses a set of files serially. Files that fail to parse are
/// skipped and counted, mirroring how a crawler tolerates unparsable files.
///
/// Equivalent to [`process_parallel`] with one thread; all preprocessing
/// funnels through that single entry point.
pub fn process(files: &[SourceFile], config: &ProcessConfig) -> ProcessedCorpus {
    process_parallel(files, config, 1)
}

/// Preprocesses a set of files, fanned out over `threads` worker threads
/// (`0` = all available cores) — each file is analysed independently,
/// exactly as the paper parallelises its per-file analyses over all cores
/// (§5.1). Files are sharded into contiguous chunks and each worker returns
/// its chunk's results as a plain `Vec`; chunks are re-joined in input
/// order, so results are identical to a serial [`process`] at any thread
/// count.
pub fn process_parallel(
    files: &[SourceFile],
    config: &ProcessConfig,
    threads: usize,
) -> ProcessedCorpus {
    process_parallel_observed(files, config, threads, Observer::none())
}

/// [`process_parallel`] with observability (see [`process_each_observed`]).
pub fn process_parallel_observed(
    files: &[SourceFile],
    config: &ProcessConfig,
    threads: usize,
    obs: Observer<'_>,
) -> ProcessedCorpus {
    let refs: Vec<&SourceFile> = files.iter().collect();
    let mut out = ProcessedCorpus::default();
    for r in process_each_observed(&refs, config, threads, obs) {
        match r {
            Some(f) => out.files.push(f),
            None => out.parse_failures += 1,
        }
    }
    out
}

/// Preprocesses each file independently, preserving positions: the result at
/// index `i` is `Some` if `files[i]` parsed and `None` if it did not. The
/// incremental scan path uses this to line cache slots up with fresh files;
/// [`process_parallel`] folds it into a [`ProcessedCorpus`]. Sharding and
/// rejoin order match [`process_parallel`] exactly.
pub fn process_each(
    files: &[&SourceFile],
    config: &ProcessConfig,
    threads: usize,
) -> Vec<Option<ProcessedFile>> {
    process_each_observed(files, config, threads, Observer::none())
}

/// [`process_each`] with observability: the whole pass reports as
/// [`Phase::Process`] (workers contribute busy time, parse time lands in
/// [`Phase::Parse`] busy), and each worker flushes its chunk's file /
/// parse-failure / statement counters once. Chunking never splits a file,
/// so counter totals are identical at any thread count (DESIGN.md §10).
pub fn process_each_observed(
    files: &[&SourceFile],
    config: &ProcessConfig,
    threads: usize,
    obs: Observer<'_>,
) -> Vec<Option<ProcessedFile>> {
    let _span = obs.phase(Phase::Process);
    let threads = namer_patterns::resolve_threads(threads).min(files.len().max(1));
    if threads <= 1 {
        let start = obs.is_active().then(Instant::now);
        let out: Vec<Option<ProcessedFile>> =
            files.iter().map(|f| process_one(f, config, obs)).collect();
        if let Some(start) = start {
            obs.busy(Phase::Process, start.elapsed().as_nanos() as u64);
        }
        flush_process_counters(&out, obs);
        out
    } else {
        let chunk_size = files.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            let handles: Vec<_> = files
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        let start = obs.is_active().then(Instant::now);
                        let part: Vec<Option<ProcessedFile>> = chunk
                            .iter()
                            .map(|f| process_one(f, config, obs))
                            .collect();
                        if let Some(start) = start {
                            obs.busy(Phase::Process, start.elapsed().as_nanos() as u64);
                        }
                        flush_process_counters(&part, obs);
                        part
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("process worker panicked"))
                .collect()
        })
        .expect("process workers do not panic")
    }
}

/// Flushes one chunk's counters in a single batch (one atomic add per
/// counter per chunk, not per file).
fn flush_process_counters(results: &[Option<ProcessedFile>], obs: Observer<'_>) {
    if !obs.is_active() {
        return;
    }
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut stmts = 0u64;
    for r in results {
        match r {
            Some(f) => {
                ok += 1;
                stmts += f.stmts.len() as u64;
            }
            None => failed += 1,
        }
    }
    obs.add(Counter::FilesProcessed, ok);
    obs.add(Counter::ParseFailures, failed);
    obs.add(Counter::StatementsProcessed, stmts);
}

fn process_one(
    file: &SourceFile,
    config: &ProcessConfig,
    obs: Observer<'_>,
) -> Option<ProcessedFile> {
    let parse_start = obs.is_active().then(Instant::now);
    let parsed = parse_file(file);
    if let Some(start) = parse_start {
        obs.busy(Phase::Parse, start.elapsed().as_nanos() as u64);
    }
    let ast = parsed.ok()?;
    let analysis = config
        .use_analysis
        .then(|| FileAnalysis::analyze(&ast, file.lang, &config.analysis));
    let stmts = stmt::extract(&ast)
        .into_iter()
        .map(|s| {
            let origins = analysis
                .as_ref()
                .map(|a| a.origins_for(&s))
                .unwrap_or_else(Origins::new);
            let plus = transform::to_ast_plus(&s.ast, &origins);
            let paths = namepath::extract(&plus, config.max_paths);
            ProcessedStmt {
                line: s.line,
                digest: s.ast.digest(s.ast.root()),
                rendered: s.to_sexp(),
                paths: PathSet::new(paths),
            }
        })
        .collect();
    Some(ProcessedFile {
        repo: file.repo.clone(),
        path: file.path.clone(),
        stmts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_observe::PipelineMetrics;
    use namer_syntax::Lang;

    fn file(text: &str) -> SourceFile {
        SourceFile::new("r", "f.py", text, Lang::Python)
    }

    #[test]
    fn processes_statements_with_lines() {
        let corpus = process(
            &[file("x = 1\ny = open(p)\n")],
            &ProcessConfig::default(),
        );
        assert_eq!(corpus.files.len(), 1);
        assert_eq!(corpus.files[0].stmts.len(), 2);
        assert_eq!(corpus.files[0].stmts[1].line, 2);
    }

    #[test]
    fn analysis_toggle_changes_paths() {
        let src = "class T(TestCase):\n    def m(self):\n        self.assertTrue(x, 1)\n";
        let with_a = process(&[file(src)], &ProcessConfig::default());
        let without_a = process(
            &[file(src)],
            &ProcessConfig {
                use_analysis: false,
                ..ProcessConfig::default()
            },
        );
        let pa = &with_a.files[0].stmts.last().unwrap().paths;
        let pb = &without_a.files[0].stmts.last().unwrap().paths;
        let a_has_origin = pa
            .paths
            .iter()
            .any(|p| p.to_string().contains("TestCase"));
        let b_has_origin = pb
            .paths
            .iter()
            .any(|p| p.to_string().contains("TestCase"));
        assert!(a_has_origin && !b_has_origin);
    }

    #[test]
    fn parse_failures_are_counted_not_fatal() {
        let corpus = process(
            &[file("def broken(:\n"), file("x = 1\n")],
            &ProcessConfig::default(),
        );
        assert_eq!(corpus.parse_failures, 1);
        assert_eq!(corpus.files.len(), 1);
    }

    #[test]
    fn parallel_processing_matches_sequential() {
        let files: Vec<SourceFile> = (0..12)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 3),
                    format!("f{i}.py"),
                    format!("class C{i}(TestCase):\n    def m(self):\n        self.assertEqual(v.count, {i})\n"),
                    Lang::Python,
                )
            })
            .collect();
        let seq = process(&files, &ProcessConfig::default());
        // 0 = all available cores; counts above the file count also work.
        for threads in [0, 2, 4, 32] {
            let par = process_parallel(&files, &ProcessConfig::default(), threads);
            assert_eq!(seq.parse_failures, par.parse_failures);
            assert_eq!(seq.files.len(), par.files.len());
            for (a, b) in seq.files.iter().zip(&par.files) {
                assert_eq!(a.path, b.path);
                assert_eq!(a.stmts.len(), b.stmts.len());
                for (x, y) in a.stmts.iter().zip(&b.stmts) {
                    assert_eq!(x.digest, y.digest);
                    assert_eq!(x.paths.paths, y.paths.paths);
                }
            }
        }
    }

    #[test]
    fn digests_identify_identical_statements() {
        let corpus = process(&[file("a = get()\nb = 1\na = get()\n")], &ProcessConfig::default());
        let d: Vec<u64> = corpus.files[0].stmts.iter().map(|s| s.digest).collect();
        assert_eq!(d[0], d[2]);
        assert_ne!(d[0], d[1]);
    }

    #[test]
    fn observed_processing_counts_files_statements_and_failures() {
        let files = vec![
            file("x = 1\ny = open(p)\n"),
            file("def broken(:\n"),
            file("z = 2\n"),
        ];
        // The counter totals are chunk-invariant: same at any thread count.
        let mut baseline = None;
        for threads in [1usize, 2, 3] {
            let metrics = PipelineMetrics::new();
            let corpus =
                process_parallel_observed(&files, &ProcessConfig::default(), threads, metrics.observer());
            let snap = metrics.snapshot();
            assert_eq!(snap.counter(Counter::FilesProcessed), 2);
            assert_eq!(snap.counter(Counter::ParseFailures), 1);
            assert_eq!(
                snap.counter(Counter::StatementsProcessed) as usize,
                corpus.stmt_count()
            );
            assert_eq!(snap.phase(Phase::Process).calls, 1);
            assert!(snap.phase(Phase::Parse).busy_nanos > 0);
            let counters = snap.counters.clone();
            if let Some(base) = &baseline {
                assert_eq!(base, &counters, "counters diverge at {threads} threads");
            } else {
                baseline = Some(counters);
            }
        }
    }
}
