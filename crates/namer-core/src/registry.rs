//! The digest-addressed multi-model registry (DESIGN.md §12).
//!
//! Serving many per-language / per-org models is the multi-corpus setting
//! the paper's deployment sketch assumes: a daemon or CI bot holds a
//! directory of trained [`SavedModel`] files and materialises whichever one
//! the current request needs. [`ModelRegistry`] catalogs such a directory
//! up front (names only — no file is read until asked for), loads models
//! lazily through the [`Vfs`] seam, shares them as `Arc<SavedModel>`, and
//! evicts least-recently-used residents once their summed encoded size
//! exceeds a configurable byte budget. Models address by file-stem name or
//! by content digest (the binary header digest of [`crate::binfmt`], or an
//! FNV-1a 64 over the bytes for legacy JSON files).
//!
//! Registry traffic is observable: hits, misses, and evictions stream to an
//! optional [`MetricsSink`] as [`Counter::RegistryHits`] /
//! [`Counter::RegistryMisses`] / [`Counter::RegistryEvictions`], and
//! [`ModelRegistry::stats`] returns the same totals plus residency figures.

use crate::binfmt;
use crate::error::NamerError;
use crate::persist::SavedModel;
use crate::vfs::{RealFs, Vfs};
use namer_observe::{Counter, MetricsSink};
use namer_syntax::digest::Fnv64;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Registry traffic and residency totals ([`ModelRegistry::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests served from an already-resident model.
    pub hits: u64,
    /// Requests that had to load from disk.
    pub misses: u64,
    /// Models evicted to stay under the byte budget.
    pub evictions: u64,
    /// Summed encoded size of the currently resident models.
    pub resident_bytes: usize,
    /// Number of currently resident models.
    pub resident_models: usize,
    /// Number of models the catalog knows about.
    pub catalog_size: usize,
}

struct Resident {
    model: Arc<SavedModel>,
    /// Encoded file size — the registry's memory proxy (the decoded heap
    /// footprint tracks it closely and would cost a re-encode to measure).
    cost: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    resident: HashMap<String, Resident>,
    /// Content digest → catalog name, built on the first digest lookup.
    digests: Option<HashMap<u64, String>>,
    resident_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A lazily-loading, LRU-evicting catalog of saved models in one directory.
///
/// Cheap to share behind an `Arc`; all methods take `&self`.
pub struct ModelRegistry {
    vfs: Arc<dyn Vfs>,
    /// Catalog: file stem → full path, in stem order.
    catalog: BTreeMap<String, PathBuf>,
    budget_bytes: usize,
    sink: Option<Arc<dyn MetricsSink>>,
    inner: Mutex<Inner>,
}

impl ModelRegistry {
    /// Catalogs the model files directly inside `dir` through `vfs`.
    /// Every non-directory entry is a model named by its file stem
    /// (`python-django.bin` → `python-django`); nothing is read yet.
    ///
    /// `budget_bytes` bounds the summed encoded size of resident models;
    /// the most recently requested model always stays resident even when
    /// it alone exceeds the budget (a registry that can serve nothing
    /// would be useless).
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] when the directory cannot be listed,
    /// [`NamerError::InvalidConfig`] when it contains no model files or
    /// two files share a stem (`m.bin` next to `m.json`).
    pub fn open_via(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        budget_bytes: usize,
    ) -> Result<ModelRegistry, NamerError> {
        let entries = vfs.read_dir(dir).map_err(|e| NamerError::io(dir, e))?;
        let mut catalog = BTreeMap::new();
        for entry in entries {
            if entry.is_dir {
                continue;
            }
            let Some(stem) = entry.path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if stem.is_empty() {
                continue;
            }
            if let Some(previous) = catalog.insert(stem.to_owned(), entry.path.clone()) {
                return Err(NamerError::InvalidConfig(format!(
                    "ambiguous model name '{stem}': {} and {}",
                    previous.display(),
                    entry.path.display()
                )));
            }
        }
        if catalog.is_empty() {
            return Err(NamerError::InvalidConfig(format!(
                "no model files in {}",
                dir.display()
            )));
        }
        Ok(ModelRegistry {
            vfs,
            catalog,
            budget_bytes,
            sink: None,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Catalogs `dir` on the real filesystem.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::open_via`].
    pub fn open(dir: &Path, budget_bytes: usize) -> Result<ModelRegistry, NamerError> {
        ModelRegistry::open_via(Arc::new(RealFs), dir, budget_bytes)
    }

    /// Streams hit/miss/eviction counters to `sink` in addition to
    /// [`ModelRegistry::stats`].
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> ModelRegistry {
        self.sink = Some(sink);
        self
    }

    /// The catalog's model names, in order.
    pub fn names(&self) -> Vec<String> {
        self.catalog.keys().cloned().collect()
    }

    /// Number of cataloged models.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// `true` when the catalog is empty (never true for an opened
    /// registry; `open_via` rejects empty directories).
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// The configured resident-byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The sole cataloged model name, when there is exactly one (the CLI's
    /// "a `--model-dir` with one model needs no `--model`" convenience).
    pub fn sole_name(&self) -> Option<&str> {
        if self.catalog.len() == 1 {
            self.catalog.keys().next().map(String::as_str)
        } else {
            None
        }
    }

    fn bump(&self, counter: Counter) {
        if let Some(sink) = &self.sink {
            sink.add(counter, 1);
        }
    }

    /// The model called `name`, loading it (and evicting others) if it is
    /// not resident.
    ///
    /// # Errors
    ///
    /// [`NamerError::InvalidConfig`] for a name the catalog does not know,
    /// [`NamerError::Io`] when the file cannot be read, and
    /// [`NamerError::Model`] when it cannot be decoded.
    pub fn get(&self, name: &str) -> Result<Arc<SavedModel>, NamerError> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(resident) = inner.resident.get_mut(name) {
            resident.last_used = tick;
            inner.hits += 1;
            let model = Arc::clone(&resident.model);
            drop(inner);
            self.bump(Counter::RegistryHits);
            return Ok(model);
        }
        let Some(path) = self.catalog.get(name) else {
            return Err(NamerError::InvalidConfig(format!(
                "unknown model '{name}' (registry knows: {})",
                self.names().join(", ")
            )));
        };
        inner.misses += 1;
        let bytes = self.vfs.read(path).map_err(|e| NamerError::io(path, e))?;
        let cost = bytes.len();
        let model = Arc::new(SavedModel::from_bytes(&bytes).map_err(NamerError::from)?);
        if let Some(digests) = &mut inner.digests {
            digests.insert(digest_of_file(&bytes), name.to_owned());
        }
        inner.resident.insert(
            name.to_owned(),
            Resident { model: Arc::clone(&model), cost, last_used: tick },
        );
        inner.resident_bytes += cost;
        let evicted = evict_over_budget(&mut inner, self.budget_bytes, name);
        drop(inner);
        self.bump(Counter::RegistryMisses);
        for _ in 0..evicted {
            self.bump(Counter::RegistryEvictions);
        }
        Ok(model)
    }

    /// The model whose content digest is `digest` (the binary header
    /// digest, or FNV-1a 64 over the file bytes for legacy JSON models).
    /// The digest→name index is built on the first call by reading every
    /// cataloged file once.
    ///
    /// # Errors
    ///
    /// [`NamerError::InvalidConfig`] when no cataloged model has this
    /// digest; otherwise as [`ModelRegistry::get`].
    pub fn get_by_digest(&self, digest: u64) -> Result<Arc<SavedModel>, NamerError> {
        let name = {
            let mut inner = self.inner.lock().expect("registry lock poisoned");
            if inner.digests.is_none() {
                let mut map = HashMap::with_capacity(self.catalog.len());
                for (name, path) in &self.catalog {
                    let bytes = self.vfs.read(path).map_err(|e| NamerError::io(path, e))?;
                    map.insert(digest_of_file(&bytes), name.clone());
                }
                inner.digests = Some(map);
            }
            inner
                .digests
                .as_ref()
                .expect("just built")
                .get(&digest)
                .cloned()
        };
        match name {
            Some(name) => self.get(&name),
            None => Err(NamerError::InvalidConfig(format!(
                "no model with digest {digest:016x} in the registry"
            ))),
        }
    }

    /// Current traffic and residency totals.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock poisoned");
        RegistryStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.resident_bytes,
            resident_models: inner.resident.len(),
            catalog_size: self.catalog.len(),
        }
    }
}

/// The registry address of a model file: the stamped header digest for
/// binary containers, an FNV-1a 64 over the raw bytes for anything else.
fn digest_of_file(bytes: &[u8]) -> u64 {
    binfmt::header_digest(bytes).unwrap_or_else(|| {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    })
}

/// Evicts least-recently-used residents (never `keep`) until the budget
/// holds or only `keep` remains; returns how many were evicted.
fn evict_over_budget(inner: &mut Inner, budget: usize, keep: &str) -> u64 {
    let mut evicted = 0;
    while inner.resident_bytes > budget && inner.resident.len() > 1 {
        let Some(victim) = inner
            .resident
            .iter()
            .filter(|(name, _)| name.as_str() != keep)
            .min_by_key(|(_, r)| r.last_used)
            .map(|(name, _)| name.clone())
        else {
            break;
        };
        if let Some(gone) = inner.resident.remove(&victim) {
            inner.resident_bytes -= gone.cost;
            inner.evictions += 1;
            evicted += 1;
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorSpec;
    use crate::namer::{Namer, NamerConfig};
    use namer_observe::PipelineMetrics;
    use namer_patterns::{ConfusingPairs, MiningConfig};
    use namer_syntax::{Lang, SourceFile};

    fn trained_model() -> SavedModel {
        let files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 5),
                    format!("f{i}.py"),
                    "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n",
                    Lang::Python,
                )
            })
            .collect();
        let commits = vec![(
            "self.assertTrue(v.count, 1)\n".to_owned(),
            "self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        let config = NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
            labeled_per_class: 3,
            cv_repeats: 2,
            ..NamerConfig::default()
        };
        let namer = Namer::train(&files, &commits, |v| v.original.as_str() == "True", &config);
        SavedModel::from_namer(&namer)
    }

    /// A tiny distinct model (different pattern content per `salt`).
    fn small_model(salt: u64) -> SavedModel {
        let mut pairs = ConfusingPairs::new();
        pairs.insert(
            namer_syntax::Sym::intern(&format!("mistake{salt}")),
            namer_syntax::Sym::intern(&format!("correct{salt}")),
        );
        let detector = DetectorSpec::new(Vec::new(), pairs, Vec::new()).build();
        let namer = Namer::assemble(
            detector,
            None,
            namer_ml::ModelKind::SvmLinear,
            Lang::Python,
            NamerConfig::default(),
        );
        SavedModel::from_namer(&namer)
    }

    #[test]
    fn registry_lazy_load_hit_and_eviction_accounting() {
        let dir = std::env::temp_dir().join(format!("namer-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, salt) in [("alpha", 1u64), ("beta", 2), ("gamma", 3)] {
            small_model(salt).save(&dir.join(format!("{name}.bin"))).unwrap();
        }
        // A budget of one file: every switch evicts the previous resident.
        let one_file = std::fs::metadata(dir.join("alpha.bin")).unwrap().len() as usize;
        let metrics = Arc::new(PipelineMetrics::new());
        let registry = ModelRegistry::open(&dir, one_file + 8)
            .unwrap()
            .with_metrics(metrics.clone());
        assert_eq!(registry.names(), ["alpha", "beta", "gamma"]);
        assert_eq!(registry.sole_name(), None);
        assert_eq!(registry.stats().resident_models, 0, "catalog-only open loads nothing");

        let a1 = registry.get("alpha").unwrap();
        let a2 = registry.get("alpha").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "hit returns the same resident model");
        let _b = registry.get("beta").unwrap();
        let _a3 = registry.get("alpha").unwrap();
        let stats = registry.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3, "alpha was evicted by beta, reloads");
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.resident_models, 1);
        assert!(stats.resident_bytes <= one_file + 8);
        assert_eq!(metrics.counter(Counter::RegistryHits), 1);
        assert_eq!(metrics.counter(Counter::RegistryMisses), 3);
        assert_eq!(metrics.counter(Counter::RegistryEvictions), 2);

        assert!(registry.get("delta").is_err(), "unknown names are errors");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_addresses_by_digest_in_both_formats() {
        let dir = std::env::temp_dir().join(format!("namer-registry-dig-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m1 = small_model(10);
        let m2 = small_model(20);
        m1.save(&dir.join("bin-model.bin")).unwrap();
        std::fs::write(dir.join("json-model.json"), m1.to_json().unwrap()).unwrap();
        let _ = m2; // distinct content kept for the digest-mismatch check

        let registry = ModelRegistry::open(&dir, usize::MAX).unwrap();
        let bin_digest = binfmt::header_digest(&m1.to_binary().unwrap()).unwrap();
        let by_digest = registry.get_by_digest(bin_digest).unwrap();
        assert_eq!(
            by_digest.to_json().unwrap(),
            registry.get("bin-model").unwrap().to_json().unwrap()
        );
        let json_bytes = std::fs::read(dir.join("json-model.json")).unwrap();
        let mut h = Fnv64::new();
        h.write(&json_bytes);
        assert!(registry.get_by_digest(h.finish()).is_ok());
        assert!(registry.get_by_digest(0xDEAD).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_rejects_empty_and_ambiguous_directories() {
        let dir = std::env::temp_dir().join(format!("namer-registry-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            ModelRegistry::open(&dir, usize::MAX),
            Err(NamerError::InvalidConfig(_))
        ));
        small_model(1).save(&dir.join("m.bin")).unwrap();
        std::fs::write(dir.join("m.json"), small_model(1).to_json().unwrap()).unwrap();
        assert!(matches!(
            ModelRegistry::open(&dir, usize::MAX),
            Err(NamerError::InvalidConfig(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_model_runs_identically_to_direct_load() {
        let dir = std::env::temp_dir().join(format!("namer-registry-run-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model = trained_model();
        model.save(&dir.join("trained.bin")).unwrap();
        let registry = ModelRegistry::open(&dir, usize::MAX).unwrap();
        let shared = registry.get("trained").unwrap();
        assert_eq!(registry.sole_name(), Some("trained"));
        assert_eq!(shared.to_json().unwrap(), model.to_json().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
