//! SARIF 2.1.0 export for Namer reports.
//!
//! [SARIF] is the OASIS interchange format most code scanners (and the
//! GitHub code-scanning UI) consume. Namer reports map naturally: each
//! mined name pattern is a *rule*, each report a *result* with a physical
//! location and a rendered fix in the message.
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use crate::detector::Detector;
use crate::namer::Report;
use serde::Serialize;

#[derive(Serialize)]
struct Sarif {
    version: &'static str,
    #[serde(rename = "$schema")]
    schema: &'static str,
    runs: Vec<Run>,
}

#[derive(Serialize)]
struct Run {
    tool: Tool,
    results: Vec<SarifResult>,
}

#[derive(Serialize)]
struct Tool {
    driver: Driver,
}

#[derive(Serialize)]
struct Driver {
    name: &'static str,
    #[serde(rename = "informationUri")]
    information_uri: &'static str,
    version: &'static str,
    rules: Vec<Rule>,
}

#[derive(Serialize)]
struct Rule {
    id: String,
    name: String,
    #[serde(rename = "shortDescription")]
    short_description: Message,
}

#[derive(Serialize)]
struct SarifResult {
    #[serde(rename = "ruleId")]
    rule_id: String,
    level: &'static str,
    message: Message,
    locations: Vec<Location>,
}

#[derive(Serialize)]
struct Message {
    text: String,
}

#[derive(Serialize)]
struct Location {
    #[serde(rename = "physicalLocation")]
    physical_location: PhysicalLocation,
}

#[derive(Serialize)]
struct PhysicalLocation {
    #[serde(rename = "artifactLocation")]
    artifact_location: ArtifactLocation,
    region: Region,
}

#[derive(Serialize)]
struct ArtifactLocation {
    uri: String,
}

#[derive(Serialize)]
struct Region {
    #[serde(rename = "startLine")]
    start_line: u32,
}

/// Renders reports as a SARIF 2.1.0 log.
///
/// Each distinct violated pattern becomes a rule (`namer/<type>/<index>`);
/// pattern provenance (its deduction) goes into the rule description so the
/// GitHub UI can show *why* the name is suspicious.
pub fn to_sarif(reports: &[Report], detector: &Detector) -> String {
    let mut rule_ids: Vec<usize> = reports.iter().map(|r| r.violation.pattern_idx).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let rules: Vec<Rule> = rule_ids
        .iter()
        .map(|&idx| {
            let p = &detector.patterns.patterns[idx];
            Rule {
                id: rule_id(idx, p.ty),
                name: format!("{} name pattern #{idx}", p.ty),
                short_description: Message {
                    text: p
                        .deduction
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(" ∧ "),
                },
            }
        })
        .collect();
    let results: Vec<SarifResult> = reports
        .iter()
        .map(|r| {
            let v = &r.violation;
            SarifResult {
                rule_id: rule_id(v.pattern_idx, v.pattern_ty),
                level: "warning",
                message: Message {
                    text: format!(
                        "naming issue: replace `{}` with `{}` (violates a {} pattern mined from Big Code)",
                        v.original, v.suggested, v.pattern_ty
                    ),
                },
                locations: vec![Location {
                    physical_location: PhysicalLocation {
                        artifact_location: ArtifactLocation {
                            uri: v.path.clone(),
                        },
                        region: Region { start_line: v.line },
                    },
                }],
            }
        })
        .collect();
    let log = Sarif {
        version: "2.1.0",
        schema: "https://json.schemastore.org/sarif-2.1.0.json",
        runs: vec![Run {
            tool: Tool {
                driver: Driver {
                    name: "namer",
                    information_uri: "https://github.com/namer-rs/namer",
                    version: env!("CARGO_PKG_VERSION"),
                    rules,
                },
            },
            results,
        }],
    };
    serde_json::to_string_pretty(&log).expect("SARIF serialises")
}

fn rule_id(idx: usize, ty: namer_patterns::PatternType) -> String {
    format!("namer/{ty}/{idx}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namer::{Namer, NamerConfig};
    use namer_patterns::MiningConfig;
    use namer_syntax::{Lang, SourceFile};

    fn system_with_reports() -> (Namer, Vec<Report>) {
        let mut files: Vec<SourceFile> = (0..30)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 5),
                    format!("f{i}.py"),
                    "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n",
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new(
            "r0",
            "src/buggy.py",
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n",
            Lang::Python,
        ));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n".to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n".to_owned(),
        )];
        let config = NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
            use_classifier: false,
            ..NamerConfig::default()
        };
        let namer = Namer::train(&files, &commits, |_| false, &config);
        let mut session = crate::session::NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("trained source builds");
        let reports = session.run(&files).expect("cacheless run").reports;
        (session.into_namer(), reports)
    }

    #[test]
    fn sarif_log_has_rules_and_results() {
        let (namer, reports) = system_with_reports();
        assert!(!reports.is_empty());
        let sarif = to_sarif(&reports, &namer.detector);
        let value: serde_json::Value = serde_json::from_str(&sarif).expect("valid JSON");
        assert_eq!(value["version"], "2.1.0");
        let run = &value["runs"][0];
        assert_eq!(run["tool"]["driver"]["name"], "namer");
        let results = run["results"].as_array().expect("results array");
        assert_eq!(results.len(), reports.len());
        let first = &results[0];
        assert!(first["ruleId"].as_str().expect("ruleId").starts_with("namer/"));
        assert_eq!(
            first["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            "src/buggy.py"
        );
        assert_eq!(
            first["locations"][0]["physicalLocation"]["region"]["startLine"],
            3
        );
        // Every result references a declared rule.
        let rules: Vec<&str> = run["tool"]["driver"]["rules"]
            .as_array()
            .expect("rules array")
            .iter()
            .map(|r| r["id"].as_str().expect("rule id"))
            .collect();
        for res in results {
            assert!(rules.contains(&res["ruleId"].as_str().expect("ruleId")));
        }
    }

    #[test]
    fn empty_reports_produce_an_empty_run() {
        let (namer, _) = system_with_reports();
        let sarif = to_sarif(&[], &namer.detector);
        let value: serde_json::Value = serde_json::from_str(&sarif).expect("valid JSON");
        assert_eq!(value["runs"][0]["results"].as_array().expect("array").len(), 0);
        assert_eq!(value["runs"][0]["tool"]["driver"]["rules"].as_array().expect("array").len(), 0);
    }
}
