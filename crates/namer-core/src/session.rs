//! The builder/session detection API (DESIGN.md §9).
//!
//! One construction path replaces the old `Namer::detect` /
//! `detect_processed` / `detect_incremental` / `from_parts` quartet:
//! a [`NamerBuilder`] assembles a system from any source (a trained
//! [`Namer`], a [`SavedModel`], or raw mined parts), layers on runtime
//! overrides (worker threads, pattern shards, an on-disk scan cache), and
//! produces a [`DetectSession`] whose single [`DetectSession::run`] entry
//! point covers full, cached, and sharded scans uniformly — byte-identical
//! results in every mode.
//!
//! ```no_run
//! use namer_core::session::NamerBuilder;
//! # fn demo(model: namer_core::SavedModel, files: Vec<namer_syntax::SourceFile>)
//! #     -> Result<(), namer_core::NamerError> {
//! let mut session = NamerBuilder::new()
//!     .model(model)
//!     .threads(8)
//!     .pattern_shards(4)
//!     .cache_dir(".namer-cache")
//!     .build()?;
//! let outcome = session.run(&files)?;
//! for report in &outcome.reports {
//!     println!("{report}");
//! }
//! # Ok(())
//! # }
//! ```

use crate::detector::{DetectorSpec, ScanRequest, ScanResult};
use crate::error::NamerError;
use crate::features::LevelCounts;
use crate::ingest::Diagnostics;
use crate::namer::{Namer, NamerConfig, Report};
use crate::persist::{CacheLoadStatus, SavedModel, ScanCache};
use crate::registry::ModelRegistry;
use crate::process::{process_parallel_observed, ProcessedCorpus};
use crate::vfs::{with_retry, RealFs, RetryPolicy, Vfs};
use namer_ml::{ModelKind, Pipeline};
use namer_observe::{
    Counter, MetricsSink, MetricsSnapshot, Observer, Phase, PipelineMetrics, Tee,
};
use namer_patterns::{resolve_threads, ConfusingPairs, NamePattern, ShardPlan};
use namer_syntax::{ContentDigest, Lang, SourceFile};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

/// File name of the on-disk scan cache inside a session's cache directory.
/// The name is historical: saves now write the binary container of
/// [`crate::binfmt`], but keeping the name lets sessions find (and sniff)
/// caches written by older JSON-era builds (DESIGN.md §12).
pub const CACHE_FILE_NAME: &str = "scan-cache.json";

/// Where a session's detector comes from.
enum Source {
    /// A system trained in-process ([`Namer::train`]).
    Trained(Box<Namer>),
    /// A persisted model snapshot.
    Saved(Box<SavedModel>),
    /// A snapshot shared with other sessions (e.g. via a [`ModelRegistry`]);
    /// cloned at build time so the resident copy stays untouched.
    Shared(Arc<SavedModel>),
    /// Raw mined parts (patterns + pairs + dataset counts).
    Parts {
        patterns: Vec<NamePattern>,
        pairs: ConfusingPairs,
        dataset: Vec<LevelCounts>,
    },
}

/// Builder for a [`DetectSession`]: pick a pattern source, layer on runtime
/// options, then [`NamerBuilder::build`].
#[derive(Default)]
pub struct NamerBuilder {
    source: Option<Source>,
    classifier: Option<(Pipeline, ModelKind)>,
    lang: Option<Lang>,
    config: Option<NamerConfig>,
    threads: Option<usize>,
    shard_plan: Option<ShardPlan>,
    cache_dir: Option<PathBuf>,
    sink: Option<Arc<dyn MetricsSink>>,
    vfs: Option<Arc<dyn Vfs>>,
    retry: Option<RetryPolicy>,
    ingest_diag: Option<Diagnostics>,
    cache_autosave: Option<bool>,
}

impl NamerBuilder {
    /// An empty builder. A pattern source ([`NamerBuilder::namer`],
    /// [`NamerBuilder::model`], or [`NamerBuilder::patterns`]) is required
    /// before [`NamerBuilder::build`]; everything else is optional.
    pub fn new() -> NamerBuilder {
        NamerBuilder::default()
    }

    /// Uses a system trained in-process as the source. Its training-time
    /// configuration is kept; combine with [`NamerBuilder::threads`] /
    /// [`NamerBuilder::pattern_shards`] for runtime overrides.
    pub fn namer(mut self, namer: Namer) -> NamerBuilder {
        self.source = Some(Source::Trained(Box::new(namer)));
        self
    }

    /// Uses a persisted model snapshot as the source.
    pub fn model(mut self, model: SavedModel) -> NamerBuilder {
        self.source = Some(Source::Saved(Box::new(model)));
        self
    }

    /// Uses a shared model snapshot as the source — typically one handed
    /// out by a [`ModelRegistry`]. The snapshot is cloned at build time;
    /// the shared copy is never mutated.
    pub fn shared(mut self, model: Arc<SavedModel>) -> NamerBuilder {
        self.source = Some(Source::Shared(model));
        self
    }

    /// Uses the model called `name` from `registry` as the source,
    /// loading it now (so registry traffic is attributed to this call,
    /// not to [`NamerBuilder::build`]).
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::get`]: unknown name, unreadable file, or
    /// undecodable model.
    pub fn registry(self, registry: &ModelRegistry, name: &str) -> Result<NamerBuilder, NamerError> {
        let model = registry.get(name)?;
        Ok(self.shared(model))
    }

    /// Uses raw mined parts as the source: patterns, confusing pairs, and
    /// one dataset-level count entry per pattern.
    pub fn patterns(
        mut self,
        patterns: Vec<NamePattern>,
        pairs: ConfusingPairs,
        dataset: Vec<LevelCounts>,
    ) -> NamerBuilder {
        self.source = Some(Source::Parts {
            patterns,
            pairs,
            dataset,
        });
        self
    }

    /// Attaches (or replaces) the defect classifier.
    pub fn classifier(mut self, pipeline: Pipeline, kind: ModelKind) -> NamerBuilder {
        self.classifier = Some((pipeline, kind));
        self
    }

    /// Language of the files the session will scan. Required only for the
    /// [`NamerBuilder::patterns`] source (defaults to Python there); for
    /// trained or saved sources it must match the source's language.
    pub fn lang(mut self, lang: Lang) -> NamerBuilder {
        self.lang = Some(lang);
        self
    }

    /// Runtime configuration for [`NamerBuilder::model`] /
    /// [`NamerBuilder::patterns`] sources. A trained [`Namer`] carries its
    /// own configuration; combining it with this setter is an error.
    pub fn config(mut self, config: NamerConfig) -> NamerBuilder {
        self.config = Some(config);
        self
    }

    /// Worker-thread override for processing and scanning (`0` = all
    /// cores).
    pub fn threads(mut self, threads: usize) -> NamerBuilder {
        self.threads = Some(threads);
        self
    }

    /// Pattern-shard override: split the pattern set into `shards`
    /// prefix-disjoint shards per file chunk (`1` = unsharded, `0` = one
    /// shard per core; see DESIGN.md §9). Keeps the default size threshold;
    /// use [`NamerBuilder::shard_plan`] for full control.
    pub fn pattern_shards(mut self, shards: usize) -> NamerBuilder {
        let mut plan = self.shard_plan.unwrap_or_default();
        plan.shards = shards;
        self.shard_plan = Some(plan);
        self
    }

    /// Full shard-plan override (shard count and fallback threshold).
    pub fn shard_plan(mut self, plan: ShardPlan) -> NamerBuilder {
        self.shard_plan = Some(plan);
        self
    }

    /// Keeps an on-disk scan cache in `dir` (created if missing): each
    /// [`DetectSession::run`] reuses cached per-file scan state, scans only
    /// changed files, and saves the pruned cache back. The cache is keyed
    /// by [`Namer::scan_fingerprint`], so model or configuration changes
    /// degrade to a cold scan, never a wrong one.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> NamerBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Streams metrics to a caller-supplied [`MetricsSink`] in addition to
    /// the session's own collector. Every run still returns its complete
    /// [`MetricsSnapshot`] via [`DetectOutcome::metrics`]; a custom sink is
    /// only needed to observe events live (DESIGN.md §10).
    pub fn metrics(mut self, sink: Arc<dyn MetricsSink>) -> NamerBuilder {
        self.sink = Some(sink);
        self
    }

    /// Routes every filesystem operation of the session (cache load/save)
    /// through `vfs` instead of the real filesystem — how the fault
    /// harness injects failures and kill-points (DESIGN.md §11).
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> NamerBuilder {
        self.vfs = Some(vfs);
        self
    }

    /// Overrides the bounded-retry policy for the session's transient I/O
    /// errors (default: [`RetryPolicy::default`]).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> NamerBuilder {
        self.retry = Some(retry);
        self
    }

    /// Seeds the session with ingestion [`Diagnostics`] (from
    /// [`CorpusReader`](crate::ingest::CorpusReader)), so the session's
    /// *first* [`DetectSession::run`] reports the whole pipeline in one
    /// place: quarantined inputs surface as [`Counter::QuarantinedFiles`]
    /// and retries as [`Counter::IoRetries`] in that run's own metrics and
    /// [`DetectOutcome::diagnostics`]. Build-time events are attributed to
    /// the first run only — a reused session (the daemon case, DESIGN.md
    /// §13) reports each later run's own events, never stale ones.
    pub fn ingest_diagnostics(mut self, diag: Diagnostics) -> NamerBuilder {
        self.ingest_diag = Some(diag);
        self
    }

    /// Whether each cached [`DetectSession::run`] saves the updated scan
    /// cache back to disk before returning (the default). Long-lived
    /// callers that answer many requests per save — the `namer serve`
    /// daemon — turn this off and persist explicitly via
    /// [`DetectSession::flush_cache`], so a slow or failing disk never
    /// sits between a finished scan and its response (DESIGN.md §13).
    pub fn cache_autosave(mut self, autosave: bool) -> NamerBuilder {
        self.cache_autosave = Some(autosave);
        self
    }

    /// Assembles the session.
    ///
    /// # Errors
    ///
    /// [`NamerError::InvalidConfig`] when no source was given, when parts
    /// are inconsistent (dataset/pattern length mismatch), or when
    /// `config`/`lang` conflict with a trained source;
    /// [`NamerError::Io`] when the cache directory cannot be created.
    pub fn build(self) -> Result<DetectSession, NamerError> {
        let Some(source) = self.source else {
            return Err(NamerError::InvalidConfig(
                "no pattern source: call .namer(..), .model(..), or .patterns(..)".to_owned(),
            ));
        };
        let mut namer = match source {
            Source::Trained(namer) => {
                if self.config.is_some() {
                    return Err(NamerError::InvalidConfig(
                        "a trained system carries its own config; use .threads()/.pattern_shards() \
                         for runtime overrides"
                            .to_owned(),
                    ));
                }
                if let Some(lang) = self.lang {
                    if lang != namer.lang() {
                        return Err(NamerError::InvalidConfig(format!(
                            "language {lang:?} conflicts with the trained system's {:?}",
                            namer.lang()
                        )));
                    }
                }
                *namer
            }
            Source::Saved(model) => {
                if let Some(lang) = self.lang {
                    if lang != model.lang {
                        return Err(NamerError::InvalidConfig(format!(
                            "language {lang:?} conflicts with the saved model's {:?}",
                            model.lang
                        )));
                    }
                }
                model.into_namer(self.config.unwrap_or_default())
            }
            Source::Shared(model) => {
                if let Some(lang) = self.lang {
                    if lang != model.lang {
                        return Err(NamerError::InvalidConfig(format!(
                            "language {lang:?} conflicts with the shared model's {:?}",
                            model.lang
                        )));
                    }
                }
                model
                    .as_ref()
                    .clone()
                    .into_namer(self.config.unwrap_or_default())
            }
            Source::Parts {
                patterns,
                pairs,
                dataset,
            } => {
                if patterns.len() != dataset.len() {
                    return Err(NamerError::InvalidConfig(format!(
                        "{} patterns but {} dataset count entries",
                        patterns.len(),
                        dataset.len()
                    )));
                }
                let detector = DetectorSpec::new(patterns, pairs, dataset).build();
                let mut config = self.config.unwrap_or_default();
                config.use_classifier = false;
                Namer::assemble(
                    detector,
                    None,
                    ModelKind::SvmLinear,
                    self.lang.unwrap_or(Lang::Python),
                    config,
                )
            }
        };
        // For trained/saved sources the classifier setter is an override;
        // for raw parts it is the only way to attach one.
        if let Some((pipeline, kind)) = self.classifier {
            namer.set_classifier(Some(pipeline), kind);
        }
        namer.override_runtime(self.threads, self.shard_plan);

        let vfs = self.vfs.unwrap_or_else(|| Arc::new(RealFs));
        let retry = self.retry.unwrap_or_default();
        let mut diag = self.ingest_diag.unwrap_or_default();
        let cache = match self.cache_dir {
            None => None,
            Some(dir) => {
                let (created, retries) = crate::vfs::with_retry_counted(retry, || {
                    vfs.create_dir_all(&dir)
                });
                diag.io_retries += retries;
                created.map_err(|e| NamerError::io(&dir, e))?;
                let path = dir.join(CACHE_FILE_NAME);
                // Unreadable-cache degradation is already folded into
                // `load_via` (any read error is a cold start); retrying
                // transient errors first keeps a briefly-busy cache warm.
                let (loaded, retries) = crate::vfs::with_retry_counted(retry, || {
                    match vfs.read(&path) {
                        Ok(bytes) => Ok(Some(bytes)),
                        Err(e) if crate::vfs::is_transient(e.kind()) => Err(e),
                        Err(_) => Ok(None),
                    }
                });
                diag.io_retries += retries;
                let (cache, status) = match loaded.ok().flatten() {
                    Some(bytes) => ScanCache::from_bytes(&bytes, namer.scan_fingerprint()),
                    None => (
                        ScanCache::empty(namer.scan_fingerprint()),
                        CacheLoadStatus::Cold,
                    ),
                };
                Some(SessionCache {
                    path,
                    cache,
                    status,
                    degrade_counted: false,
                    dirty: false,
                })
            }
        };
        Ok(DetectSession {
            namer,
            cache,
            autosave: self.cache_autosave.unwrap_or(true),
            sink: self.sink,
            vfs,
            retry,
            base_diag: Some(diag),
        })
    }
}

/// A session's on-disk cache binding.
struct SessionCache {
    path: PathBuf,
    cache: ScanCache,
    status: CacheLoadStatus,
    /// Whether the load-time degradation (corrupt/version/fingerprint) has
    /// already been counted into a run's metrics. The *event* happened once
    /// at load; a reused session must not re-report it on every run.
    degrade_counted: bool,
    /// Whether the in-memory cache has changes the disk copy lacks.
    dirty: bool,
}

/// A ready-to-run detection session produced by [`NamerBuilder::build`].
///
/// Holds the assembled [`Namer`] and, when configured, the loaded scan
/// cache. [`DetectSession::run`] is the one entry point: it processes,
/// scans (sharded per the session's plan), classifies, and — with a cache
/// directory — persists updated cache state, all with byte-identical
/// results in every mode.
pub struct DetectSession {
    namer: Namer,
    cache: Option<SessionCache>,
    /// Whether runs persist the cache themselves
    /// ([`NamerBuilder::cache_autosave`], on by default).
    autosave: bool,
    sink: Option<Arc<dyn MetricsSink>>,
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
    /// Ingestion diagnostics seeded at build time (plus build-time cache
    /// retries); taken by the session's *first* run so reuse never
    /// re-reports stale events.
    base_diag: Option<Diagnostics>,
}

impl DetectSession {
    /// Runs detection over `files`.
    ///
    /// Without a cache directory this processes and scans everything; with
    /// one, unchanged files reuse their cached per-file state and the
    /// pruned, updated cache is saved back afterwards.
    ///
    /// Every run collects its own [`MetricsSnapshot`]
    /// ([`DetectOutcome::metrics`]); counter totals are deterministic across
    /// any thread/shard combination and across cold/warm cache runs of the
    /// same inputs (DESIGN.md §10).
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] when saving the scan cache fails; cacheless runs
    /// and runs with [`NamerBuilder::cache_autosave`]`(false)` cannot
    /// fail.
    pub fn run(&mut self, files: &[SourceFile]) -> Result<DetectOutcome, NamerError> {
        let collector = PipelineMetrics::new();
        let result = match self.sink.clone() {
            Some(user) => {
                let tee = Tee(&collector, user.as_ref());
                self.run_observed(files, Observer::new(&tee))
            }
            None => self.run_observed(files, Observer::new(&collector)),
        };
        result.map(|mut outcome| {
            outcome.metrics = collector.snapshot();
            outcome
        })
    }

    /// [`DetectSession::run`] against a caller-chosen observer; the whole
    /// run reports as [`Phase::Detect`].
    fn run_observed(
        &mut self,
        files: &[SourceFile],
        obs: Observer<'_>,
    ) -> Result<DetectOutcome, NamerError> {
        let _span = obs.phase(Phase::Detect);
        let threads = resolve_threads(self.namer.config().threads);
        let plan = self.namer.config().shard_plan;
        let process = self.namer.config().process.clone();
        // Ingestion robustness events (quarantines, retries) seeded at
        // build time count into the *first* run's own metrics, so one
        // snapshot covers the whole pipeline — and only once: a reused
        // session (back-to-back detects, the daemon case) must not
        // re-report events that happened before it was built.
        let diagnostics = self.base_diag.take().unwrap_or_default();
        if !diagnostics.quarantined.is_empty() {
            obs.add(
                Counter::QuarantinedFiles,
                diagnostics.quarantined.len() as u64,
            );
        }
        if diagnostics.io_retries > 0 {
            obs.add(Counter::IoRetries, diagnostics.io_retries);
        }
        let vfs = self.vfs.clone();
        let retry = self.retry;
        let Some(state) = self.cache.as_mut() else {
            let corpus = process_parallel_observed(files, &process, threads, obs);
            let scan = self.namer.detector.scan(
                ScanRequest::full(&corpus)
                    .threads(threads)
                    .plan(plan)
                    .observer(obs),
            );
            let reports = self.namer.reports_from(&scan, obs);
            return Ok(DetectOutcome {
                reports,
                scan,
                cache: None,
                metrics: MetricsSnapshot::default(),
                diagnostics,
            });
        };
        if !state.degrade_counted
            && matches!(
                state.status,
                CacheLoadStatus::Corrupt
                    | CacheLoadStatus::VersionMismatch
                    | CacheLoadStatus::FingerprintMismatch
            )
        {
            // The degradation happened once, at load; count it into the
            // first run only. After that run the in-memory cache is valid
            // and warm, whatever the on-disk file looked like.
            obs.add(Counter::CacheDegradedCold, 1);
            state.degrade_counted = true;
        }
        // Which inputs will scan fresh (recorded before the scan warms the
        // cache): the "changed files" of a CI-style incremental run.
        let changed: Vec<(String, String)> = files
            .iter()
            .filter(|f| !state.cache.contains(f.content_digest()))
            .map(|f| (f.repo.clone(), f.path.clone()))
            .collect();
        let scan = self.namer.detector.scan(
            ScanRequest::incremental(files, &process, &mut state.cache)
                .threads(threads)
                .plan(plan)
                .observer(obs),
        );
        // Keep the cache bounded by the current input set before saving.
        let live: HashSet<ContentDigest> = files.iter().map(SourceFile::content_digest).collect();
        state.cache.retain_digests(&live);
        state.dirty = true;
        if self.autosave {
            // Crash-safe save (write-temp + fsync + rename) with bounded
            // retry: a kill at any point leaves the old or the new cache
            // on disk, never a truncation (DESIGN.md §11).
            let _save_span = obs.phase(Phase::CacheSave);
            with_retry(retry, obs, || state.cache.save_via(vfs.as_ref(), &state.path))
                .map_err(|e| NamerError::io(&state.path, e))?;
            state.dirty = false;
        }
        let stats = scan.cache.unwrap_or_default();
        let reports = self.namer.reports_from(&scan, obs);
        Ok(DetectOutcome {
            reports,
            scan,
            cache: Some(CacheOutcome {
                reused: stats.reused,
                fresh: stats.fresh,
                parse_failures: stats.parse_failures,
                changed,
            }),
            metrics: MetricsSnapshot::default(),
            diagnostics,
        })
    }

    /// Runs detection over an already-processed corpus (benchmark and
    /// ablation paths that reuse one preprocessing pass across many scans).
    /// Never touches the cache. Like [`DetectSession::run`], the outcome
    /// carries the run's [`MetricsSnapshot`] (processing-phase counters are
    /// absent — the corpus arrived preprocessed).
    pub fn run_processed(&self, corpus: &ProcessedCorpus) -> DetectOutcome {
        let collector = PipelineMetrics::new();
        let mut outcome = match self.sink.clone() {
            Some(user) => {
                let tee = Tee(&collector, user.as_ref());
                self.run_processed_observed(corpus, Observer::new(&tee))
            }
            None => self.run_processed_observed(corpus, Observer::new(&collector)),
        };
        outcome.metrics = collector.snapshot();
        outcome
    }

    /// [`DetectSession::run_processed`] against a caller-chosen observer.
    fn run_processed_observed(&self, corpus: &ProcessedCorpus, obs: Observer<'_>) -> DetectOutcome {
        let _span = obs.phase(Phase::Detect);
        let threads = resolve_threads(self.namer.config().threads);
        let plan = self.namer.config().shard_plan;
        let scan = self.namer.detector.scan(
            ScanRequest::full(corpus)
                .threads(threads)
                .plan(plan)
                .observer(obs),
        );
        let reports = self.namer.reports_from(&scan, obs);
        DetectOutcome {
            reports,
            scan,
            cache: None,
            metrics: MetricsSnapshot::default(),
            // Preprocessed corpora never touched the filesystem here.
            diagnostics: Diagnostics::default(),
        }
    }

    /// How the scan cache loaded at build time; `None` without a cache
    /// directory.
    pub fn cache_status(&self) -> Option<CacheLoadStatus> {
        self.cache.as_ref().map(|c| c.status)
    }

    /// Persists the in-memory scan cache to its on-disk path if it has
    /// unsaved changes. Returns `true` when a save happened, `false` for
    /// cacheless sessions or an already-clean cache. The companion of
    /// [`NamerBuilder::cache_autosave`]`(false)`: the daemon calls this
    /// *after* a response is on the wire, so persistence cost and
    /// persistence faults never delay or corrupt an answer (DESIGN.md §13).
    ///
    /// # Errors
    ///
    /// [`NamerError::Io`] when the save fails after bounded retries; the
    /// in-memory cache keeps its state (still warm, still dirty), so a
    /// later flush can succeed.
    pub fn flush_cache(&mut self) -> Result<bool, NamerError> {
        self.flush_cache_observed(Observer::none())
    }

    /// [`DetectSession::flush_cache`] reporting its [`Phase::CacheSave`]
    /// span and retries into `obs`.
    ///
    /// # Errors
    ///
    /// As [`DetectSession::flush_cache`].
    pub fn flush_cache_observed(&mut self, obs: Observer<'_>) -> Result<bool, NamerError> {
        let Some(state) = self.cache.as_mut() else {
            return Ok(false);
        };
        if !state.dirty {
            return Ok(false);
        }
        let _save_span = obs.phase(Phase::CacheSave);
        with_retry(self.retry, obs, || {
            state.cache.save_via(self.vfs.as_ref(), &state.path)
        })
        .map_err(|e| NamerError::io(&state.path, e))?;
        state.dirty = false;
        Ok(true)
    }

    /// Empties the in-memory scan cache (the fingerprint is kept), so the
    /// next run scans everything fresh — the explicit "go cold" of the
    /// daemon's `cache.flush {"clear": true}`. The cleared state is marked
    /// dirty; a following [`DetectSession::flush_cache`] persists it.
    /// Returns `false` for cacheless sessions.
    pub fn clear_cache(&mut self) -> bool {
        let Some(state) = self.cache.as_mut() else {
            return false;
        };
        state.cache = ScanCache::empty(self.namer.scan_fingerprint());
        state.dirty = true;
        true
    }

    /// Entries currently held by the in-memory scan cache; `None` without
    /// a cache directory.
    pub fn cache_entries(&self) -> Option<usize> {
        self.cache.as_ref().map(|c| c.cache.len())
    }

    /// Whether the in-memory scan cache has changes the disk copy lacks;
    /// `None` without a cache directory.
    pub fn cache_dirty(&self) -> Option<bool> {
        self.cache.as_ref().map(|c| c.dirty)
    }

    /// The assembled system (for persistence, classification, metadata).
    pub fn namer(&self) -> &Namer {
        &self.namer
    }

    /// Consumes the session, returning the assembled system.
    pub fn into_namer(self) -> Namer {
        self.namer
    }
}

/// Everything one [`DetectSession::run`] produces.
pub struct DetectOutcome {
    /// The issues to report (violations the classifier let through).
    pub reports: Vec<Report>,
    /// The full raw scan (all violations + coverage statistics).
    pub scan: ScanResult,
    /// Cache accounting; `None` for cacheless runs.
    pub cache: Option<CacheOutcome>,
    /// The run's observability snapshot: per-phase timings and pipeline
    /// counters (DESIGN.md §10). Always populated; counter totals are
    /// deterministic, timings are not.
    pub metrics: MetricsSnapshot,
    /// The run's robustness report: quarantined inputs and recovered
    /// transient I/O errors. Ingestion diagnostics seeded via
    /// [`NamerBuilder::ingest_diagnostics`] appear on the session's
    /// *first* run only; later runs of a reused session report their own
    /// events (DESIGN.md §11, §13).
    pub diagnostics: Diagnostics,
}

/// Cache accounting of one cached [`DetectSession::run`].
pub struct CacheOutcome {
    /// Input files served from pre-existing cache entries.
    pub reused: usize,
    /// Input files scanned fresh this run.
    pub fresh: usize,
    /// Input files recorded (now or previously) as unparsable.
    pub parse_failures: usize,
    /// `(repo, path)` of inputs that were not in the cache when the run
    /// started, in input order — the changed set of an incremental run.
    pub changed: Vec<(String, String)>,
}
