//! Virtual filesystem, crash-safe writes, and fault injection (DESIGN.md §11).
//!
//! Everything in the pipeline that touches disk — model persistence, the
//! scan cache, corpus ingestion — goes through the [`Vfs`] trait instead of
//! calling `std::fs` directly. Production code uses [`RealFs`]; tests wrap
//! it in a [`FaultVfs`] that injects `ErrorKind`-typed failures, partial
//! writes, and kill-points from a deterministic [`FaultSchedule`], so the
//! crash-safety and degrade-gracefully contracts are testable without
//! actually killing processes or corrupting disks.
//!
//! Two policies live here alongside the trait:
//!
//! * [`atomic_write`] — the write-temp + fsync + rename protocol. A process
//!   killed at *any* point mid-write leaves the destination holding either
//!   the complete old contents or the complete new contents, never a
//!   truncated hybrid.
//! * [`RetryPolicy`] / [`with_retry`] — bounded retry with exponential
//!   backoff for *transient* I/O errors ([`is_transient`]); permanent
//!   failures surface immediately. Retries are counted into
//!   [`Counter::IoRetries`] when an observer is attached.

use namer_observe::{Counter, Observer};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One entry of a [`Vfs::read_dir`] listing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VfsEntry {
    /// Full path of the entry.
    pub path: PathBuf,
    /// Whether the entry is a directory *after* following symlinks (a
    /// dangling symlink reports `false` and fails on read instead).
    pub is_dir: bool,
    /// Whether the entry itself is a symlink (before following).
    pub is_symlink: bool,
}

/// The filesystem operations the pipeline needs, as a trait so tests can
/// substitute a fault-injecting implementation ([`FaultVfs`]).
///
/// Implementations must be thread-safe: sessions and ingestion may be
/// driven from worker threads.
pub trait Vfs: Send + Sync {
    /// Reads a file into a UTF-8 string. Non-UTF-8 contents fail with
    /// [`io::ErrorKind::InvalidData`].
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Reads a file's raw bytes (binary model/cache files, format sniffs).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) `path` with `contents`, flushed durably
    /// (`fsync` or the implementation's equivalent) before returning.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` onto `to` (POSIX `rename(2)` semantics:
    /// `to` is replaced as a unit, never observed half-written).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file (cleanup of orphaned temporaries).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists a directory, sorted by path for deterministic traversal.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<VfsEntry>>;
    /// Resolves symlinks and relative components to a canonical path (the
    /// identity used by ingestion's symlink-cycle guard).
    fn canonicalize(&self, path: &Path) -> io::Result<PathBuf>;
}

/// The production [`Vfs`]: thin wrappers over `std::fs` with durable
/// writes and sorted directory listings.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(contents)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        // Durability of the rename itself needs the parent directory
        // synced; best-effort — the rename's atomicity does not depend
        // on it, only how soon it survives a power loss.
        if let Some(parent) = to.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<VfsEntry>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let path = entry.path();
            let ty = entry.file_type()?;
            let is_symlink = ty.is_symlink();
            let is_dir = if is_symlink {
                // Follow the link to classify it; a dangling link reads as
                // a file and is quarantined at read time instead.
                std::fs::metadata(&path).map(|m| m.is_dir()).unwrap_or(false)
            } else {
                ty.is_dir()
            };
            out.push(VfsEntry {
                path,
                is_dir,
                is_symlink,
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    fn canonicalize(&self, path: &Path) -> io::Result<PathBuf> {
        std::fs::canonicalize(path)
    }
}

/// Writes `contents` to `path` crash-safely: write a sibling temporary,
/// fsync it ([`Vfs::write`] is durable), then atomically rename it over
/// the destination. A process killed at any point leaves `path` holding
/// either its previous contents or the new ones — never a truncation.
///
/// A failed rename removes the temporary best-effort; a stale temporary
/// from an earlier crash is simply overwritten by the next write.
///
/// # Errors
///
/// The underlying I/O error of the failing step.
pub fn atomic_write(vfs: &dyn Vfs, path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = temp_sibling(path);
    vfs.write(&tmp, contents)?;
    match vfs.rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = vfs.remove_file(&tmp);
            Err(e)
        }
    }
}

/// The temporary path [`atomic_write`] stages through: `<name>.tmp` next
/// to the destination (same filesystem, so the rename stays atomic).
pub fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Whether an I/O error kind is worth retrying: the operation may succeed
/// if simply re-issued. Permission, not-found, and data errors are
/// permanent and never retried.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded-retry policy for transient I/O errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` = no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 5 ms initial backoff.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// No retries: every error is final.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// `attempts` tries with no sleeping between them (tests).
    pub const fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base_backoff: Duration::ZERO,
        }
    }
}

/// Runs `op`, retrying transient failures per `policy`, and returns the
/// final result plus how many retries were spent.
pub fn with_retry_counted<T>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> io::Result<T>,
) -> (io::Result<T>, u64) {
    let attempts = policy.attempts.max(1);
    let mut retries = 0u64;
    let mut failures = 0u32;
    loop {
        match op() {
            Ok(v) => return (Ok(v), retries),
            Err(e) => {
                failures += 1;
                if failures >= attempts || !is_transient(e.kind()) {
                    return (Err(e), retries);
                }
                retries += 1;
                let backoff = policy.base_backoff * (1u32 << (failures - 1).min(6));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// [`with_retry_counted`] reporting its retries into
/// [`Counter::IoRetries`] on `obs`.
pub fn with_retry<T>(
    policy: RetryPolicy,
    obs: Observer<'_>,
    op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let (result, retries) = with_retry_counted(policy, op);
    if retries > 0 {
        obs.add(Counter::IoRetries, retries);
    }
    result
}

// ----- fault injection --------------------------------------------------------

/// One injected fault, consumed by the [`FaultVfs`] operation it fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with this error kind and has no effect.
    Err(io::ErrorKind),
    /// A write persists only the first `n` bytes, then fails with
    /// [`io::ErrorKind::WriteZero`] (disk-full style). On non-write
    /// operations this degrades to a plain failure.
    PartialWrite(usize),
    /// The process "dies" at this operation: a write persists the first
    /// `n` bytes (`None` = nothing), the operation fails, and **every
    /// subsequent operation fails too** — the harness's stand-in for
    /// `kill -9`. The test then reopens the directory with a fresh
    /// [`RealFs`] to observe what a restarted process would see.
    Kill(Option<usize>),
}

/// A deterministic plan of which [`FaultVfs`] operations fail and how.
///
/// Faults are keyed two ways, checked in order:
///
/// 1. **By operation index** — the `n`-th VFS call overall (retries count
///    as new operations). This is how the kill-point matrix sweeps every
///    point of a persistence protocol.
/// 2. **By path substring** — a FIFO queue of faults per pattern, consumed
///    one per matching operation. This is how ingestion tests pin faults
///    to specific corpus files.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    at_op: BTreeMap<u64, Fault>,
    by_path: Vec<(String, VecDeque<Fault>)>,
}

impl FaultSchedule {
    /// An empty schedule (no faults; useful for counting operations).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Fails the `op`-th operation (0-based, across all operations).
    pub fn at_op(mut self, op: u64, fault: Fault) -> FaultSchedule {
        self.at_op.insert(op, fault);
        self
    }

    /// Queues `fault` for the next operation whose path contains
    /// `pattern`. Repeated calls queue further faults for later matching
    /// operations (e.g. two transient errors then success).
    pub fn on_path(mut self, pattern: impl Into<String>, fault: Fault) -> FaultSchedule {
        let pattern = pattern.into();
        match self.by_path.iter_mut().find(|(p, _)| *p == pattern) {
            Some((_, queue)) => queue.push_back(fault),
            None => self.by_path.push((pattern, VecDeque::from([fault]))),
        }
        self
    }

    /// A schedule that kills the process at operation `op` with `landed`
    /// bytes persisted if that operation is a write.
    pub fn kill_at(op: u64, landed: Option<usize>) -> FaultSchedule {
        FaultSchedule::new().at_op(op, Fault::Kill(landed))
    }

    /// A seeded pseudo-random sprinkling of *transient* faults: each of
    /// the first `ops` operations independently fails with
    /// [`io::ErrorKind::Interrupted`] with probability `percent`/100.
    /// Deterministic in `seed`; with a retrying caller the run's *results*
    /// must be identical to a fault-free run (only `IoRetries` moves).
    pub fn seeded_transient(seed: u64, ops: u64, percent: u64) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        let mut state = seed | 1;
        for op in 0..ops {
            // xorshift64* — cheap, deterministic, no rand dependency.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.wrapping_mul(0x2545_f491_4f6c_dd1d) % 100 < percent {
                schedule.at_op.insert(op, Fault::Err(io::ErrorKind::Interrupted));
            }
        }
        schedule
    }
}

struct FaultState {
    next_op: u64,
    killed: bool,
    schedule: FaultSchedule,
}

/// A [`Vfs`] decorator that injects faults from a [`FaultSchedule`] into
/// an inner filesystem (usually [`RealFs`] over a scratch directory).
///
/// After a [`Fault::Kill`] fires, every further operation fails — the
/// wrapped "process" is dead. Inspect the aftermath through a fresh
/// [`RealFs`], the way a restarted process would.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Mutex<FaultState>,
}

impl FaultVfs {
    /// Wraps `inner` with `schedule`.
    pub fn new(inner: Arc<dyn Vfs>, schedule: FaultSchedule) -> FaultVfs {
        FaultVfs {
            inner,
            state: Mutex::new(FaultState {
                next_op: 0,
                killed: false,
                schedule,
            }),
        }
    }

    /// [`RealFs`] wrapped with `schedule` — the common case.
    pub fn real(schedule: FaultSchedule) -> FaultVfs {
        FaultVfs::new(Arc::new(RealFs), schedule)
    }

    /// Operations attempted so far (including failed ones). Running a
    /// protocol against an empty schedule and reading this afterwards
    /// sizes a kill-point matrix.
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state lock").next_op
    }

    /// Whether a [`Fault::Kill`] has fired.
    pub fn killed(&self) -> bool {
        self.state.lock().expect("fault state lock").killed
    }

    /// Draws the fault (if any) for the operation on `path`, advancing the
    /// operation counter. Returns an error directly when the process is
    /// already dead.
    fn draw(&self, path: &Path) -> Result<Option<Fault>, io::Error> {
        let mut state = self.state.lock().expect("fault state lock");
        if state.killed {
            return Err(dead());
        }
        let op = state.next_op;
        state.next_op += 1;
        let fault = state.schedule.at_op.remove(&op).or_else(|| {
            let text = path.to_string_lossy().into_owned();
            state
                .schedule
                .by_path
                .iter_mut()
                .find(|(pattern, queue)| !queue.is_empty() && text.contains(pattern.as_str()))
                .and_then(|(_, queue)| queue.pop_front())
        });
        if let Some(Fault::Kill(_)) = fault {
            state.killed = true;
        }
        Ok(fault)
    }

    /// Applies `fault` to a non-write operation: any fault is a plain
    /// failure there (partial effects only make sense for writes).
    fn fail<T>(&self, fault: Fault) -> io::Result<T> {
        Err(match fault {
            Fault::Err(kind) => io::Error::new(kind, "injected fault"),
            Fault::PartialWrite(_) => {
                io::Error::new(io::ErrorKind::WriteZero, "injected partial write")
            }
            Fault::Kill(_) => dead(),
        })
    }
}

fn dead() -> io::Error {
    io::Error::other("injected kill-point: process is dead")
}

impl Vfs for FaultVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        match self.draw(path)? {
            None => self.inner.read_to_string(path),
            Some(f) => self.fail(f),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.draw(path)? {
            None => self.inner.read(path),
            Some(f) => self.fail(f),
        }
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        match self.draw(path)? {
            None => self.inner.write(path, contents),
            Some(Fault::Err(kind)) => Err(io::Error::new(kind, "injected fault")),
            Some(Fault::PartialWrite(n)) => {
                let n = n.min(contents.len());
                let _ = self.inner.write(path, &contents[..n]);
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected partial write",
                ))
            }
            Some(Fault::Kill(landed)) => {
                if let Some(n) = landed {
                    let n = n.min(contents.len());
                    let _ = self.inner.write(path, &contents[..n]);
                }
                Err(dead())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.draw(to)? {
            None => self.inner.rename(from, to),
            // A killed rename never happened: rename is atomic, so the
            // only crash outcomes are "before" (here) or "after" (a kill
            // on a later operation).
            Some(f) => self.fail(f),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.draw(path)? {
            None => self.inner.remove_file(path),
            Some(f) => self.fail(f),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.draw(path)? {
            None => self.inner.create_dir_all(path),
            Some(f) => self.fail(f),
        }
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<VfsEntry>> {
        match self.draw(path)? {
            None => self.inner.read_dir(path),
            Some(f) => self.fail(f),
        }
    }

    fn canonicalize(&self, path: &Path) -> io::Result<PathBuf> {
        match self.draw(path)? {
            None => self.inner.canonicalize(path),
            Some(f) => self.fail(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "namer-vfs-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = scratch("atomic");
        let path = dir.join("out.json");
        atomic_write(&RealFs, &path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write(&RealFs, &path, b"two-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two-longer");
        // No temporary left behind.
        assert!(!temp_sibling(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_write_leaves_old_contents() {
        let dir = scratch("kill");
        let path = dir.join("out.json");
        atomic_write(&RealFs, &path, b"old").unwrap();
        for landed in [None, Some(0), Some(2), Some(usize::MAX)] {
            let vfs = FaultVfs::real(FaultSchedule::kill_at(0, landed));
            assert!(atomic_write(&vfs, &path, b"new-contents").is_err());
            assert!(vfs.killed());
            assert_eq!(std::fs::read(&path).unwrap(), b"old", "landed={landed:?}");
        }
        // Killing the rename (operation 1) also preserves the old file.
        let vfs = FaultVfs::real(FaultSchedule::kill_at(1, None));
        assert!(atomic_write(&vfs, &path, b"new-contents").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_process_fails_every_operation() {
        let dir = scratch("dead");
        let vfs = FaultVfs::real(FaultSchedule::kill_at(0, None));
        assert!(vfs.write(&dir.join("a"), b"x").is_err());
        assert!(vfs.read_to_string(&dir.join("a")).is_err());
        assert!(vfs.read_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_faults_fire_in_order_then_clear() {
        let dir = scratch("queue");
        let path = dir.join("flaky.txt");
        std::fs::write(&path, "payload").unwrap();
        let vfs = FaultVfs::real(
            FaultSchedule::new()
                .on_path("flaky", Fault::Err(io::ErrorKind::Interrupted))
                .on_path("flaky", Fault::Err(io::ErrorKind::Interrupted)),
        );
        assert_eq!(
            vfs.read_to_string(&path).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(
            vfs.read_to_string(&path).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(vfs.read_to_string(&path).unwrap(), "payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_recovers_from_transients_and_counts() {
        let dir = scratch("retry");
        let path = dir.join("flaky.txt");
        std::fs::write(&path, "ok").unwrap();
        let vfs = FaultVfs::real(
            FaultSchedule::new()
                .on_path("flaky", Fault::Err(io::ErrorKind::Interrupted))
                .on_path("flaky", Fault::Err(io::ErrorKind::WouldBlock)),
        );
        let (result, retries) =
            with_retry_counted(RetryPolicy::immediate(3), || vfs.read_to_string(&path));
        assert_eq!(result.unwrap(), "ok");
        assert_eq!(retries, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_gives_up_on_permanent_errors() {
        let vfs = FaultVfs::real(
            FaultSchedule::new().on_path("gone", Fault::Err(io::ErrorKind::PermissionDenied)),
        );
        let (result, retries) = with_retry_counted(RetryPolicy::immediate(5), || {
            vfs.read_to_string(Path::new("/gone"))
        });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(retries, 0);
    }

    #[test]
    fn retry_exhausts_bounded_attempts() {
        let vfs = FaultVfs::real(
            FaultSchedule::new()
                .on_path("busy", Fault::Err(io::ErrorKind::WouldBlock))
                .on_path("busy", Fault::Err(io::ErrorKind::WouldBlock))
                .on_path("busy", Fault::Err(io::ErrorKind::WouldBlock)),
        );
        let (result, retries) = with_retry_counted(RetryPolicy::immediate(3), || {
            vfs.read_to_string(Path::new("/busy"))
        });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(retries, 2);
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = FaultSchedule::seeded_transient(7, 100, 20);
        let b = FaultSchedule::seeded_transient(7, 100, 20);
        assert_eq!(a.at_op.keys().collect::<Vec<_>>(), b.at_op.keys().collect::<Vec<_>>());
        assert!(!a.at_op.is_empty());
        assert!(a.at_op.len() < 100);
        let c = FaultSchedule::seeded_transient(8, 100, 20);
        assert_ne!(
            a.at_op.keys().collect::<Vec<_>>(),
            c.at_op.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn real_fs_lists_sorted_and_classifies() {
        let dir = scratch("list");
        std::fs::create_dir(dir.join("sub")).unwrap();
        std::fs::write(dir.join("b.txt"), "b").unwrap();
        std::fs::write(dir.join("a.txt"), "a").unwrap();
        let entries = RealFs.read_dir(&dir).unwrap();
        let names: Vec<_> = entries
            .iter()
            .map(|e| e.path.file_name().unwrap().to_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, ["a.txt", "b.txt", "sub"]);
        assert!(entries[2].is_dir && !entries[0].is_dir);
        std::fs::remove_dir_all(&dir).ok();
    }
}
