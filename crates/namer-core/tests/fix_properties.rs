//! Property-based tests for fix rendering.

use namer_core::{fix_line, rename_identifier};
use namer_syntax::subtoken;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z]{2,8}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn renamed_identifier_contains_the_replacement(
        head in word(), target in word(), tail in word(), replacement in word()
    ) {
        prop_assume!(head != target && tail != target && replacement != target);
        let ident = format!("{head}_{target}_{tail}");
        let renamed = rename_identifier(&ident, &target, &replacement)
            .expect("target is a subtoken");
        prop_assert_eq!(renamed, format!("{head}_{replacement}_{tail}"));
    }

    #[test]
    fn camel_rename_preserves_subtoken_count(
        head in word(), target in word(), replacement in word()
    ) {
        prop_assume!(head != target && replacement != target);
        // Build headTarget camelCase.
        let mut cap = target.clone();
        cap[..1].make_ascii_uppercase();
        let ident = format!("{head}{cap}");
        let renamed = rename_identifier(&ident, &cap, &replacement)
            .expect("capitalised target is a subtoken");
        let before = subtoken::split(&ident).len();
        let after = subtoken::split(&renamed).len();
        prop_assert_eq!(before, after, "{} → {}", ident, renamed);
        // Case convention preserved: replacement arrives capitalised.
        let mut expect = replacement.clone();
        expect[..1].make_ascii_uppercase();
        prop_assert!(renamed.ends_with(&expect), "{} should end with {}", renamed, expect);
    }

    #[test]
    fn rename_without_occurrence_is_none(ident in word(), missing in word(), repl in word()) {
        prop_assume!(!subtoken::split(&ident).iter().any(|p| p == &missing));
        prop_assert_eq!(rename_identifier(&ident, &missing, &repl), None);
    }

    #[test]
    fn fix_line_changes_exactly_one_identifier(
        target in word(), replacement in word(), other in word()
    ) {
        prop_assume!(target != replacement && other != target);
        let line = format!("        self.{other} = {target}");
        let fixed = fix_line(&line, &target, &replacement).expect("target on line");
        prop_assert_eq!(fixed, format!("        self.{other} = {replacement}"));
    }

    #[test]
    fn fix_line_is_idempotent_when_target_gone(
        target in word(), replacement in word()
    ) {
        prop_assume!(target != replacement);
        prop_assume!(!subtoken::split(&replacement).iter().any(|p| p == &target));
        let line = format!("x = {target}()");
        let fixed = fix_line(&line, &target, &replacement).expect("fixable");
        // After the fix, the target subtoken is gone from that identifier.
        prop_assert_eq!(fix_line(&fixed, &target, &replacement), None);
    }

    #[test]
    fn fix_preserves_non_identifier_text(
        target in word(), replacement in word(), n in 0u32..1000
    ) {
        prop_assume!(target != replacement);
        let line = format!("    assert check({target}, {n}) == 'ok'  # note");
        let fixed = fix_line(&line, &target, &replacement).expect("fixable");
        let n_str = n.to_string();
        prop_assert!(fixed.contains(&n_str));
        prop_assert!(fixed.contains("== 'ok'  # note"));
        prop_assert!(fixed.starts_with("    assert check("));
    }
}
