//! Round-trip properties for every persisted type (`persist.rs`): anything
//! that can be written to disk must deserialize back to an equal value, and
//! both persisted formats must reject any version tag but their own.

use namer_core::persist::FORMAT_VERSION;
use namer_core::{
    CacheEntry, CacheLoadStatus, FileScanState, LevelCounts, PersistError, RawHit, RegionOutcome,
    SavedModel, ScanCache, StmtRegion, CACHE_FORMAT_VERSION,
};
use namer_ml::ModelKind;
use namer_patterns::{ConfusingPairs, NamePattern};
use namer_syntax::namepath::NamePath;
use namer_syntax::{ContentDigest, Lang, Sym};
use proptest::prelude::*;

fn sym() -> impl Strategy<Value = Sym> {
    "[a-z]{1,8}".prop_map(|s| Sym::intern(&s))
}

fn prefix() -> impl Strategy<Value = Vec<(Sym, u32)>> {
    prop::collection::vec((sym(), 0u32..5), 0..4)
}

fn concrete_path() -> impl Strategy<Value = NamePath> {
    (prefix(), sym()).prop_map(|(p, end)| NamePath::concrete(p, end))
}

fn symbolic_path() -> impl Strategy<Value = NamePath> {
    prefix().prop_map(NamePath::symbolic)
}

fn level_counts() -> impl Strategy<Value = LevelCounts> {
    (0u64..1_000, 0u64..1_000, 0u64..1_000).prop_map(|(matches, satisfactions, violations)| {
        LevelCounts {
            matches,
            satisfactions,
            violations,
        }
    })
}

/// Either pattern type, through the public constructors (which enforce the
/// symbolic/concrete deduction invariants), with arbitrary mining counts.
fn name_pattern() -> impl Strategy<Value = NamePattern> {
    let condition = prop::collection::vec(concrete_path(), 0..3);
    let counts = (0u64..500, 0u64..500, 0u64..500);
    let consistency = (condition.clone(), symbolic_path(), symbolic_path(), counts).prop_map(
        |(c, d1, d2, (support, matches, satisfactions))| {
            let mut p = NamePattern::consistency(c, d1, d2);
            p.support = support;
            p.matches = matches;
            p.satisfactions = satisfactions;
            p
        },
    );
    let confusing = (condition, concrete_path(), counts).prop_map(
        |(c, d, (support, matches, satisfactions))| {
            let mut p = NamePattern::confusing_word(c, d);
            p.support = support;
            p.matches = matches;
            p.satisfactions = satisfactions;
            p
        },
    );
    prop_oneof![consistency, confusing]
}

fn confusing_pairs() -> impl Strategy<Value = ConfusingPairs> {
    prop::collection::vec((sym(), sym(), 1u64..4), 0..8).prop_map(|obs| {
        let mut cp = ConfusingPairs::new();
        for (mistaken, correct, n) in obs {
            for _ in 0..n {
                cp.insert(mistaken, correct);
            }
        }
        cp
    })
}

/// `ConfusingPairs` has no `PartialEq`; compare through a sorted rendering.
fn pairs_key(cp: &ConfusingPairs) -> (Vec<(String, String, u64)>, Vec<String>) {
    let mut pairs: Vec<(String, String, u64)> = cp
        .iter()
        .map(|(&(a, b), &n)| (a.as_str().to_owned(), b.as_str().to_owned(), n))
        .collect();
    pairs.sort();
    let mut words: Vec<String> = cp
        .correct_words
        .iter()
        .map(|w| w.as_str().to_owned())
        .collect();
    words.sort();
    (pairs, words)
}

fn raw_hit() -> impl Strategy<Value = RawHit> {
    (
        1u32..10_000,
        "[ -~]{0,40}",
        any::<u64>(),
        0usize..64,
        0usize..64,
        sym(),
        sym(),
    )
        .prop_map(
            |(line, rendered, digest, path_count, pattern_idx, original, suggested)| RawHit {
                line,
                rendered,
                digest,
                path_count,
                pattern_idx,
                original,
                suggested,
            },
        )
}

/// Region keys as the scanner writes them: the lowercase-hex rendering of a
/// 128-bit span digest (non-hex keys would be dropped by the binary
/// encoder, exactly like non-hex cache entry keys).
fn span_key() -> impl Strategy<Value = String> {
    any::<u128>().prop_map(|d| ContentDigest(d).to_hex())
}

/// Sorted-`Vec` invariants hold by construction: the count tables come from
/// `BTreeMap`s, so keys are unique and ascending, exactly as `scan_file`
/// produces them.
fn file_scan_state() -> impl Strategy<Value = FileScanState> {
    (
        prop::collection::btree_map(0usize..32, level_counts(), 0..6),
        prop::collection::btree_map(any::<u64>(), 1u64..5, 0..6),
        prop::collection::vec(raw_hit(), 0..5),
        prop::collection::vec(span_key(), 0..4),
    )
        .prop_map(|(patterns, digests, raw, spans)| FileScanState {
            pattern_counts: patterns.into_iter().collect(),
            digest_counts: digests.into_iter().collect(),
            raw,
            spans,
        })
}

fn region_outcome() -> impl Strategy<Value = RegionOutcome> {
    (0usize..64, any::<bool>(), prop::option::of((sym(), sym()))).prop_map(
        |(pattern_idx, satisfied, names)| RegionOutcome {
            pattern_idx,
            satisfied,
            names,
        },
    )
}

fn stmt_region() -> impl Strategy<Value = StmtRegion> {
    prop::collection::vec(region_outcome(), 0..4).prop_map(|outcomes| StmtRegion { outcomes })
}

fn cache_entry() -> impl Strategy<Value = CacheEntry> {
    prop_oneof![
        file_scan_state().prop_map(CacheEntry::Parsed),
        Just(CacheEntry::ParseFailure),
    ]
}

fn scan_cache() -> impl Strategy<Value = ScanCache> {
    (
        any::<u64>(),
        prop::collection::btree_map(any::<u128>().prop_map(ContentDigest), cache_entry(), 0..6),
        prop::collection::btree_map(span_key(), stmt_region(), 0..4),
    )
        .prop_map(|(fingerprint, entries, regions)| {
            let mut cache = ScanCache::empty(fingerprint);
            for (digest, entry) in entries {
                cache.insert(digest, entry);
            }
            for (key, region) in regions {
                cache.insert_region(key, region);
            }
            cache
        })
}

proptest! {
    #[test]
    fn level_counts_round_trip(c in level_counts()) {
        let json = serde_json::to_string(&c).unwrap();
        let back: LevelCounts = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn name_pattern_round_trip(p in name_pattern()) {
        let json = serde_json::to_string(&p).unwrap();
        let back: NamePattern = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn confusing_pairs_round_trip(cp in confusing_pairs()) {
        let json = serde_json::to_string(&cp).unwrap();
        let back: ConfusingPairs = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(pairs_key(&back), pairs_key(&cp));
    }

    #[test]
    fn file_scan_state_round_trip(state in file_scan_state()) {
        let json = serde_json::to_string(&state).unwrap();
        let back: FileScanState = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, state);
    }

    #[test]
    fn cache_entry_round_trip(entry in cache_entry()) {
        let json = serde_json::to_string(&entry).unwrap();
        let back: CacheEntry = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, entry);
    }

    #[test]
    fn scan_cache_round_trip(cache in scan_cache()) {
        let (back, status) =
            ScanCache::from_json(&cache.to_json().unwrap(), cache.fingerprint());
        prop_assert_eq!(status, CacheLoadStatus::Warm(cache.len()));
        prop_assert_eq!(back, cache);
    }

    /// The binary container agrees with JSON: decoding either format gives
    /// the same cache, and re-encoding the binary is byte-identical
    /// (deterministic encoder).
    #[test]
    fn scan_cache_binary_agrees_with_json(cache in scan_cache()) {
        let fp = cache.fingerprint();
        let bytes = cache.to_binary();
        let (from_bin, bin_status) = ScanCache::from_bytes(&bytes, fp);
        let (from_json, json_status) =
            ScanCache::from_json(&cache.to_json().unwrap(), fp);
        prop_assert_eq!(bin_status, CacheLoadStatus::Warm(cache.len()));
        prop_assert_eq!(json_status, CacheLoadStatus::Warm(cache.len()));
        prop_assert_eq!(&from_bin, &from_json);
        prop_assert_eq!(&from_bin, &cache);
        prop_assert_eq!(from_bin.to_binary(), bytes);
    }

    #[test]
    fn scan_cache_rejects_every_other_version(cache in scan_cache(), v in any::<u32>()) {
        prop_assume!(v != CACHE_FORMAT_VERSION);
        let fp = cache.fingerprint();
        let mut value: serde_json::Value =
            serde_json::from_str(&cache.to_json().unwrap()).unwrap();
        value["version"] = serde_json::json!(v);
        let (back, status) = ScanCache::from_json(&value.to_string(), fp);
        prop_assert_eq!(status, CacheLoadStatus::VersionMismatch);
        prop_assert!(back.is_empty());
        prop_assert_eq!(back.fingerprint(), fp);
    }

    #[test]
    fn saved_model_parts_round_trip(
        patterns in prop::collection::vec(name_pattern(), 0..4),
        dataset in prop::collection::vec(level_counts(), 0..4),
        pairs in confusing_pairs(),
        use_analysis in any::<bool>(),
    ) {
        let model = SavedModel {
            version: FORMAT_VERSION,
            lang: Lang::Python,
            use_analysis,
            patterns,
            dataset,
            pairs,
            classifier: None,
            model_kind: ModelKind::SvmLinear,
        };
        let back = SavedModel::from_json(&model.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.version, model.version);
        prop_assert_eq!(back.lang, model.lang);
        prop_assert_eq!(back.use_analysis, model.use_analysis);
        prop_assert_eq!(back.patterns, model.patterns);
        prop_assert_eq!(back.dataset, model.dataset);
        prop_assert_eq!(pairs_key(&back.pairs), pairs_key(&model.pairs));
        prop_assert!(back.classifier.is_none());
        prop_assert_eq!(back.model_kind, model.model_kind);
    }

    /// JSON ↔ binary equivalence for models: the binary round trip yields
    /// the same model as the JSON one, and re-encoding is byte-identical.
    #[test]
    fn saved_model_binary_agrees_with_json(
        patterns in prop::collection::vec(name_pattern(), 0..4),
        dataset in prop::collection::vec(level_counts(), 0..4),
        pairs in confusing_pairs(),
        use_analysis in any::<bool>(),
        lang_java in any::<bool>(),
    ) {
        let model = SavedModel {
            version: FORMAT_VERSION,
            lang: if lang_java { Lang::Java } else { Lang::Python },
            use_analysis,
            patterns,
            dataset,
            pairs,
            classifier: None,
            model_kind: ModelKind::LogReg,
        };
        let bytes = model.to_binary().unwrap();
        let from_bin = SavedModel::from_bytes(&bytes).unwrap();
        let from_json = SavedModel::from_json(&model.to_json().unwrap()).unwrap();
        prop_assert_eq!(&from_bin.to_json().unwrap(), &from_json.to_json().unwrap());
        prop_assert_eq!(from_bin.to_binary().unwrap(), &bytes[..]);
        prop_assert_eq!(pairs_key(&from_bin.pairs), pairs_key(&model.pairs));
        prop_assert_eq!(from_bin.patterns, model.patterns);
    }

    #[test]
    fn saved_model_rejects_every_other_version(v in any::<u32>()) {
        prop_assume!(v != FORMAT_VERSION);
        let model = SavedModel {
            version: v,
            lang: Lang::Python,
            use_analysis: true,
            patterns: Vec::new(),
            dataset: Vec::new(),
            pairs: ConfusingPairs::new(),
            classifier: None,
            model_kind: ModelKind::SvmLinear,
        };
        match SavedModel::from_json(&model.to_json().unwrap()) {
            Err(PersistError::UnsupportedVersion(got)) => prop_assert_eq!(got, v),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other.is_ok()),
        }
        match SavedModel::from_bytes(&model.to_binary().unwrap()) {
            Err(PersistError::UnsupportedVersion(got)) => prop_assert_eq!(got, v),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other.is_ok()),
        }
    }
}
