//! The synthetic Big Code generator.
//!
//! Stands in for the paper's GitHub dataset (§5.1: ~1M Python / ~4M Java
//! files from 33k repositories plus their commit histories). Repositories
//! are built from weighted idiom templates; a controlled fraction of files
//! receives exactly one injected naming issue (recorded as ground truth);
//! some repositories adopt a benign *house style* that legitimately deviates
//! from the global idiom (the false-positive source); and fix commits are
//! synthesised so confusing-word-pair mining exercises the same AST-diff
//! path the paper used on real histories.

use crate::issue::Injection;
use crate::oracle::Oracle;
use crate::templates::{java, js, python, Emitted};
use namer_syntax::{Lang, SourceFile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Corpus shape parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Language of every file.
    pub lang: Lang,
    /// Number of repositories.
    pub repos: usize,
    /// Files per repository.
    pub files_per_repo: usize,
    /// Template blocks per file.
    pub blocks_per_file: usize,
    /// Probability that a file receives one injected issue.
    pub issue_rate: f64,
    /// Fraction of repositories with a benign house style (the benign block
    /// repeats in every file of the repo, so it is locally common).
    pub benign_repo_rate: f64,
    /// Probability that a file carries one *one-off* benign anomaly block —
    /// legitimate code deviating from the global idiom (the irreducible
    /// false-positive pressure of Tables 3/6).
    pub anomaly_rate: f64,
    /// Probability that an injected issue also yields a fix commit.
    pub fix_commit_rate: f64,
    /// Extra standalone fix commits (pair-mining noise).
    pub extra_commits: usize,
}

impl CorpusConfig {
    /// A laptop-scale corpus for tests and examples (~100 files).
    pub fn small(lang: Lang) -> CorpusConfig {
        CorpusConfig {
            lang,
            repos: 60,
            files_per_repo: 2,
            blocks_per_file: 3,
            issue_rate: 0.25,
            benign_repo_rate: 0.08,
            anomaly_rate: 0.35,
            fix_commit_rate: 0.7,
            extra_commits: 120,
        }
    }

    /// The default experiment corpus (~600 files).
    pub fn medium(lang: Lang) -> CorpusConfig {
        CorpusConfig {
            lang,
            repos: 150,
            files_per_repo: 4,
            blocks_per_file: 4,
            issue_rate: 0.2,
            benign_repo_rate: 0.08,
            anomaly_rate: 0.35,
            fix_commit_rate: 0.7,
            extra_commits: 400,
        }
    }

    /// A larger corpus for benchmark sweeps (~2000 files).
    pub fn large(lang: Lang) -> CorpusConfig {
        CorpusConfig {
            lang,
            repos: 400,
            files_per_repo: 5,
            blocks_per_file: 4,
            issue_rate: 0.15,
            benign_repo_rate: 0.08,
            anomaly_rate: 0.35,
            fix_commit_rate: 0.7,
            extra_commits: 1000,
        }
    }
}

/// A synthesized fix commit: the same file before and after the fix.
#[derive(Clone, Debug)]
pub struct Commit {
    /// File contents with the mistake.
    pub before: String,
    /// File contents after the fix.
    pub after: String,
    /// Language of both versions.
    pub lang: Lang,
}

/// The generated corpus with its ground truth.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// All source files.
    pub files: Vec<SourceFile>,
    /// Injected issues (the ground truth a human inspector would recover).
    pub injections: Vec<Injection>,
    /// Synthesized commit history for confusing-word-pair mining.
    pub commits: Vec<Commit>,
    /// Corpus language.
    pub lang: Lang,
}

impl Corpus {
    /// Builds the inspection oracle over the injected ground truth.
    pub fn oracle(&self) -> Oracle {
        Oracle::new(&self.injections)
    }

    /// Number of repositories present.
    pub fn repo_count(&self) -> usize {
        let mut repos: Vec<&str> = self.files.iter().map(|f| f.repo.as_str()).collect();
        repos.sort();
        repos.dedup();
        repos.len()
    }
}

/// Deterministic corpus generator.
#[derive(Clone, Debug)]
pub struct Generator {
    config: CorpusConfig,
}

impl Generator {
    /// Creates a generator with the given shape.
    pub fn new(config: CorpusConfig) -> Generator {
        Generator { config }
    }

    /// Generates the corpus for `seed`. Identical seeds yield identical
    /// corpora.
    pub fn generate(&self, seed: u64) -> Corpus {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = &self.config;
        let bank: Vec<(fn(&mut SmallRng) -> Emitted, u32)> = if cfg.lang == Lang::Python {
            python::bank()
        } else if cfg.lang == Lang::Java {
            java::bank()
        } else {
            js::bank()
        };
        let benign_bank: Vec<fn(&mut SmallRng) -> Emitted> = if cfg.lang == Lang::Python {
            python::benign_bank()
        } else if cfg.lang == Lang::Java {
            java::benign_bank()
        } else {
            js::benign_bank()
        };
        let total_weight: u32 = bank.iter().map(|&(_, w)| w).sum();
        let ext = cfg.lang.spec().primary_extension();

        let mut files = Vec::new();
        let mut injections = Vec::new();
        let mut commits = Vec::new();

        for r in 0..cfg.repos {
            let repo = format!("github.com/synth/repo{r:04}");
            let benign_style = if rng.gen_bool(cfg.benign_repo_rate) {
                Some(benign_bank[rng.gen_range(0..benign_bank.len())])
            } else {
                None
            };
            for f in 0..cfg.files_per_repo {
                let path = format!("src/file{f}.{ext}");
                let mut clean_lines: Vec<String> = Vec::new();
                let mut lines: Vec<String> = Vec::new();
                // Decide up front whether this file gets an injection, and
                // into which block slot it goes.
                let inject_slot = if rng.gen_bool(cfg.issue_rate) {
                    Some(rng.gen_range(0..cfg.blocks_per_file))
                } else {
                    None
                };
                for b in 0..cfg.blocks_per_file {
                    let emitted = match benign_style {
                        // House-style repos repeat their benign idiom in a
                        // fixed slot of every file, making it locally common.
                        Some(t) if b == 0 => t(&mut rng),
                        _ => {
                            let mut w = rng.gen_range(0..total_weight);
                            let mut chosen = bank[0].0;
                            for &(t, tw) in &bank {
                                if w < tw {
                                    chosen = t;
                                    break;
                                }
                                w -= tw;
                            }
                            chosen(&mut rng)
                        }
                    };
                    let start_line = lines.len();
                    let injected_here = inject_slot == Some(b) && !emitted.points.is_empty();
                    if injected_here {
                        let pi = rng.gen_range(0..emitted.points.len());
                        let point = &emitted.points[pi];
                        let buggy = emitted.inject(pi);
                        injections.push(Injection {
                            repo: repo.clone(),
                            path: path.clone(),
                            line: (start_line + point.report_line + 1) as u32,
                            lines: point
                                .edits
                                .iter()
                                .map(|&(l, _)| (start_line + l + 1) as u32)
                                .collect(),
                            wrong: point.wrong.clone(),
                            correct: point.correct.clone(),
                            category: point.category,
                        });
                        if rng.gen_bool(cfg.fix_commit_rate) {
                            commits.push(Commit {
                                before: join(&buggy),
                                after: join(&emitted.lines),
                                lang: cfg.lang,
                            });
                        }
                        lines.extend(buggy);
                    } else {
                        lines.extend(emitted.lines.iter().cloned());
                    }
                    clean_lines.extend(emitted.lines);
                    lines.push(String::new());
                    clean_lines.push(String::new());
                }
                // One-off benign anomaly block.
                if rng.gen_bool(cfg.anomaly_rate) {
                    let t = benign_bank[rng.gen_range(0..benign_bank.len())];
                    let emitted = t(&mut rng);
                    lines.extend(emitted.lines);
                    lines.push(String::new());
                }
                files.push(SourceFile::new(repo.clone(), path, join(&lines), cfg.lang));
            }
        }

        // Standalone fix commits: instantiate a template, inject, pair with
        // the clean version. These exist purely to feed pair mining, like
        // the full histories the paper crawled.
        for _ in 0..cfg.extra_commits {
            let &(t, _) = &bank[rng.gen_range(0..bank.len())];
            let e = t(&mut rng);
            if e.points.is_empty() {
                continue;
            }
            let pi = rng.gen_range(0..e.points.len());
            commits.push(Commit {
                before: join(&e.inject(pi)),
                after: join(&e.lines),
                lang: cfg.lang,
            });
        }
        // A few rename commits between benign-idiom siblings, so rare-but-
        // correct house styles also acquire confusing pairs — the realistic
        // FP pressure of Tables 3/6 (islink→exists, Conekta→Json).
        let rename_pairs: &[(&str, &str)] = if cfg.lang == Lang::Python {
            &[
                ("self.assertTrue(os.path.islink(path))", "self.assertTrue(os.path.exists(path))"),
                ("self.handler = callback", "self.callback = callback"),
            ]
        } else if cfg.lang == Lang::Java {
            &[
                (
                    "class M { ConektaObject load() { ConektaObject resource = new ConektaObject(); return resource; } }",
                    "class M { JsonObject load() { JsonObject resource = new JsonObject(); return resource; } }",
                ),
                (
                    "class E { void export() { StringWriter outputWriter = new StringWriter(); } }",
                    "class E { void export() { StringWriter stringWriter = new StringWriter(); } }",
                ),
            ]
        } else {
            &[
                (
                    "class M { load() { const resource = new LegacyStore(); return resource; } }",
                    "class M { load() { const resource = new ModernStore(); return resource; } }",
                ),
                (
                    "class E { exportLog() { const outputWriter = createWriter(); outputWriter.flush(); } }",
                    "class E { exportLog() { const streamWriter = createWriter(); streamWriter.flush(); } }",
                ),
            ]
        };
        for &(before, after) in rename_pairs {
            for _ in 0..12 {
                commits.push(Commit {
                    before: before.to_owned() + "\n",
                    after: after.to_owned() + "\n",
                    lang: cfg.lang,
                });
            }
        }

        Corpus {
            files,
            injections,
            commits,
            lang: cfg.lang,
        }
    }
}

fn join(lines: &[String]) -> String {
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = Generator::new(CorpusConfig::small(Lang::Python));
        let a = g.generate(42);
        let b = g.generate(42);
        assert_eq!(a.files, b.files);
        assert_eq!(a.injections, b.injections);
    }

    #[test]
    fn different_seeds_differ() {
        let g = Generator::new(CorpusConfig::small(Lang::Python));
        assert_ne!(g.generate(1).files, g.generate(2).files);
    }

    #[test]
    fn all_python_files_parse() {
        let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(5);
        for f in &corpus.files {
            namer_syntax::parse_file(f)
                .unwrap_or_else(|e| panic!("{}/{} failed: {e}\n{}", f.repo, f.path, f.text));
        }
    }

    #[test]
    fn all_java_files_parse() {
        let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(6);
        for f in &corpus.files {
            namer_syntax::parse_file(f)
                .unwrap_or_else(|e| panic!("{}/{} failed: {e}\n{}", f.repo, f.path, f.text));
        }
    }

    #[test]
    fn all_js_files_parse() {
        let corpus = Generator::new(CorpusConfig::small(Lang::Js)).generate(11);
        for f in &corpus.files {
            namer_syntax::parse_file(f)
                .unwrap_or_else(|e| panic!("{}/{} failed: {e}\n{}", f.repo, f.path, f.text));
        }
    }

    #[test]
    fn js_commit_pairs_parse_and_differ() {
        let corpus = Generator::new(CorpusConfig::small(Lang::Js)).generate(12);
        assert!(!corpus.commits.is_empty());
        for c in corpus.commits.iter().take(30) {
            assert_ne!(c.before, c.after);
            namer_syntax::js::parse(&c.before).unwrap();
            namer_syntax::js::parse(&c.after).unwrap();
        }
    }

    #[test]
    fn js_injections_point_at_the_wrong_token() {
        let corpus = Generator::new(CorpusConfig::small(Lang::Js)).generate(13);
        assert!(!corpus.injections.is_empty());
        for inj in &corpus.injections {
            let file = corpus
                .files
                .iter()
                .find(|f| f.repo == inj.repo && f.path == inj.path)
                .expect("injection references an existing file");
            let line = file
                .text
                .lines()
                .nth(inj.line as usize - 1)
                .expect("line exists");
            assert!(line.contains(&inj.wrong));
        }
    }

    #[test]
    fn injections_point_at_the_wrong_token() {
        let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(7);
        assert!(!corpus.injections.is_empty());
        for inj in &corpus.injections {
            let file = corpus
                .files
                .iter()
                .find(|f| f.repo == inj.repo && f.path == inj.path)
                .expect("injection references an existing file");
            let line = file
                .text
                .lines()
                .nth(inj.line as usize - 1)
                .expect("line exists");
            assert!(
                line.contains(&inj.wrong),
                "line {:?} lacks wrong token {:?}",
                line,
                inj.wrong
            );
        }
    }

    #[test]
    fn commit_pairs_parse_and_differ() {
        let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(8);
        assert!(!corpus.commits.is_empty());
        for c in corpus.commits.iter().take(30) {
            assert_ne!(c.before, c.after);
            namer_syntax::java::parse(&c.before).unwrap();
            namer_syntax::java::parse(&c.after).unwrap();
        }
    }

    #[test]
    fn issue_rate_is_roughly_respected() {
        let cfg = CorpusConfig::small(Lang::Python);
        let corpus = Generator::new(cfg.clone()).generate(9);
        let n_files = (cfg.repos * cfg.files_per_repo) as f64;
        let rate = corpus.injections.len() as f64 / n_files;
        // Some scheduled injections land on point-less blocks, so the
        // realised rate sits below the configured one but not at zero.
        assert!(rate > cfg.issue_rate * 0.4 && rate < cfg.issue_rate + 0.05, "rate={rate}");
    }

    #[test]
    fn repo_count_matches_config() {
        let cfg = CorpusConfig::small(Lang::Python);
        let corpus = Generator::new(cfg.clone()).generate(10);
        assert_eq!(corpus.repo_count(), cfg.repos);
    }
}
