//! Identifier vocabulary and deterministic name sampling for the synthetic
//! corpus generator.

use rand::rngs::SmallRng;
use rand::Rng;

/// Domain nouns used for variables, attributes, and class stems.
pub const NOUNS: &[&str] = &[
    "user", "order", "picture", "message", "config", "token", "record", "session", "buffer",
    "widget", "account", "node", "item", "event", "packet", "report", "task", "profile",
    "window", "cursor", "device", "frame", "layer", "queue", "batch",
];

/// Verbs used for method stems.
pub const VERBS: &[&str] = &[
    "load", "save", "parse", "build", "send", "read", "write", "update", "create", "delete",
    "check", "handle", "process", "render", "fetch", "reset", "compute", "resolve", "apply",
    "collect",
];

/// Attribute-ish nouns.
pub const ATTRS: &[&str] = &[
    "name", "value", "count", "size", "index", "path", "data", "text", "code", "status",
    "width", "height", "color", "title", "key", "id", "length", "offset", "total", "angle",
];

/// Class-name suffixes.
pub const CLASS_SUFFIXES: &[&str] = &[
    "Manager", "Handler", "Service", "Controller", "Builder", "Parser", "Client", "Worker",
    "Factory", "Helper",
];

/// Curated realistic typos `(correct, typo)` — mirrors the paper's examples
/// (`por` for `port`, `publick` for `public`, `or` for `of`).
pub const TYPOS: &[(&str, &str)] = &[
    ("port", "por"),
    ("public", "publick"),
    ("of", "or"),
    ("count", "cout"),
    ("name", "nmae"),
    ("value", "vaule"),
    ("width", "widht"),
    ("title", "titel"),
    ("length", "lenght"),
    ("status", "staus"),
];

/// Uniform pick from a static word list.
pub fn pick<'a>(rng: &mut SmallRng, words: &'a [&'a str]) -> &'a str {
    words[rng.gen_range(0..words.len())]
}

/// Picks `n` distinct words from `words`.
///
/// # Panics
///
/// Panics if `n > words.len()`.
pub fn pick_distinct<'a>(rng: &mut SmallRng, words: &'a [&'a str], n: usize) -> Vec<&'a str> {
    assert!(n <= words.len(), "not enough words");
    let mut chosen: Vec<&str> = Vec::with_capacity(n);
    while chosen.len() < n {
        let w = pick(rng, words);
        if !chosen.contains(&w) {
            chosen.push(w);
        }
    }
    chosen
}

/// Capitalises the first letter: `user` → `User`.
pub fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// A deterministic typo for `word`: a curated misspelling when one exists,
/// otherwise a letter transposition.
pub fn typo_of(rng: &mut SmallRng, word: &str) -> String {
    if let Some(&(_, t)) = TYPOS.iter().find(|&&(c, _)| c == word) {
        return t.to_owned();
    }
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return format!("{word}{word}");
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    out.swap(i, i + 1);
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pick_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(pick(&mut a, NOUNS), pick(&mut b, NOUNS));
    }

    #[test]
    fn pick_distinct_yields_unique_words() {
        let mut rng = SmallRng::seed_from_u64(2);
        let words = pick_distinct(&mut rng, ATTRS, 5);
        let mut sorted = words.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn capitalize_works() {
        assert_eq!(capitalize("user"), "User");
        assert_eq!(capitalize(""), "");
    }

    #[test]
    fn curated_typos_are_used() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(typo_of(&mut rng, "port"), "por");
        assert_eq!(typo_of(&mut rng, "public"), "publick");
    }

    #[test]
    fn fallback_typo_differs_from_original() {
        let mut rng = SmallRng::seed_from_u64(4);
        let t = typo_of(&mut rng, "buffer");
        assert_ne!(t, "buffer");
    }
}
