//! Ground-truth records for injected naming issues.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Categories of naming issues, following the paper's inspection taxonomy
/// (Tables 2–8): two *semantic defect* kinds and the code-quality breakdown
/// of Table 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IssueCategory {
    /// Calling the wrong API function (`assertTrue` for `assertEqual`).
    WrongApi,
    /// Calling a deprecated API (`xrange`, `assertEquals`).
    DeprecatedApi,
    /// A wrong declared type (`double` loop index).
    WrongType,
    /// A misspelling (`por` for `port`).
    Typo,
    /// A confusing word choice (`key` where `value` flows).
    ConfusingName,
    /// An uninformative name (`i` holding an `Intent`).
    IndescriptiveName,
    /// A name inconsistent with the local idiom (`self.help = docstring`).
    InconsistentName,
    /// A minor style deviation (`N` for the `np` numpy alias).
    MinorIssue,
}

/// Severity buckets used in the paper's tables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Severity {
    /// Causes or risks wrong behaviour (§5.1 "semantic defect").
    SemanticDefect,
    /// Impairs readability/maintainability (§5.1 "code quality issue").
    CodeQuality,
}

impl IssueCategory {
    /// The severity bucket of this category.
    pub fn severity(self) -> Severity {
        match self {
            IssueCategory::WrongApi | IssueCategory::DeprecatedApi | IssueCategory::WrongType => {
                Severity::SemanticDefect
            }
            _ => Severity::CodeQuality,
        }
    }

    /// All categories, in display order.
    pub fn all() -> [IssueCategory; 8] {
        [
            IssueCategory::WrongApi,
            IssueCategory::DeprecatedApi,
            IssueCategory::WrongType,
            IssueCategory::Typo,
            IssueCategory::ConfusingName,
            IssueCategory::IndescriptiveName,
            IssueCategory::InconsistentName,
            IssueCategory::MinorIssue,
        ]
    }
}

impl fmt::Display for IssueCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IssueCategory::WrongApi => "wrong API",
            IssueCategory::DeprecatedApi => "deprecated API",
            IssueCategory::WrongType => "wrong type",
            IssueCategory::Typo => "typo",
            IssueCategory::ConfusingName => "confusing name",
            IssueCategory::IndescriptiveName => "indescriptive name",
            IssueCategory::InconsistentName => "inconsistent name",
            IssueCategory::MinorIssue => "minor issue",
        })
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::SemanticDefect => "semantic defect",
            Severity::CodeQuality => "code quality issue",
        })
    }
}

/// One injected issue: the ground truth a human inspector would recover.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Injection {
    /// Repository of the affected file.
    pub repo: String,
    /// Path of the affected file.
    pub path: String,
    /// 1-based line of the corrupted statement (the primary report line).
    pub line: u32,
    /// All 1-based lines the injection edited (e.g. an `import` line plus
    /// its usage); reports on any of them count as hits.
    pub lines: Vec<u32>,
    /// The wrong name as written in the corpus.
    pub wrong: String,
    /// The name the idiom calls for.
    pub correct: String,
    /// Category (fixes the severity bucket).
    pub category: IssueCategory,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_match_the_paper() {
        assert_eq!(IssueCategory::WrongApi.severity(), Severity::SemanticDefect);
        assert_eq!(IssueCategory::DeprecatedApi.severity(), Severity::SemanticDefect);
        assert_eq!(IssueCategory::WrongType.severity(), Severity::SemanticDefect);
        assert_eq!(IssueCategory::Typo.severity(), Severity::CodeQuality);
        assert_eq!(IssueCategory::MinorIssue.severity(), Severity::CodeQuality);
    }

    #[test]
    fn all_lists_every_category_once() {
        let all = IssueCategory::all();
        let mut dedup = all.to_vec();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }
}
