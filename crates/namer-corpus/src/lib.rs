//! Synthetic Big Code substrate for the Namer reproduction.
//!
//! The paper evaluates on ~1M Python and ~4M Java GitHub files plus their
//! commit histories, with labels obtained by manual inspection and a
//! 7-developer user study. None of those resources is available here, so
//! this crate builds the closest synthetic equivalents (see `DESIGN.md` §3).
//! Template banks exist for every registered language — Python, Java, and
//! JavaScript — selected by [`generator::CorpusConfig::lang`]:
//!
//! * [`generator`] — repositories of idiomatic template code with
//!   ground-truth naming-issue injection, benign house styles, and
//!   synthesized fix commits;
//! * [`oracle`] — the inspection oracle labelling reports against the
//!   injected ground truth;
//! * [`study`] — a calibrated response model for the Table 7/8 user study;
//! * [`issue`] — the issue taxonomy (semantic defects vs code quality).
//!
//! # Examples
//!
//! ```
//! use namer_corpus::{CorpusConfig, Generator};
//! use namer_syntax::Lang;
//!
//! let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(42);
//! assert!(!corpus.files.is_empty());
//! assert!(!corpus.injections.is_empty());
//! let oracle = corpus.oracle();
//! assert_eq!(oracle.len(), corpus.injections.len());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod idents;
pub mod issue;
pub mod oracle;
pub mod study;
pub mod templates;

pub use generator::{Commit, Corpus, CorpusConfig, Generator};
pub use issue::{Injection, IssueCategory, Severity};
pub use oracle::Oracle;
pub use study::{Acceptance, StudyPanel, STUDY_CATEGORIES};
