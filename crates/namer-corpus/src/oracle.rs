//! The inspection oracle: stands in for the paper's manual report
//! inspection, using the generator's injected ground truth.

use crate::issue::{Injection, IssueCategory};
use namer_syntax::subtoken;
use std::collections::HashMap;

/// Labels reports as true issues (with their category) or false positives.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    by_loc: HashMap<(String, String, u32), Injection>,
    count: usize,
}

impl Oracle {
    /// Builds the oracle from the injected ground truth.
    pub fn new(injections: &[Injection]) -> Oracle {
        let mut by_loc = HashMap::new();
        for i in injections {
            for &line in i.lines.iter().chain(std::iter::once(&i.line)) {
                by_loc.insert((i.repo.clone(), i.path.clone(), line), i.clone());
            }
        }
        Oracle {
            by_loc,
            count: injections.len(),
        }
    }

    /// Number of injected issues known to the oracle.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no issues were injected.
    pub fn is_empty(&self) -> bool {
        self.by_loc.is_empty()
    }

    /// The injection at a location, if any.
    pub fn injection_at(&self, repo: &str, path: &str, line: u32) -> Option<&Injection> {
        self.by_loc
            .get(&(repo.to_owned(), path.to_owned(), line))
    }

    /// Labels one report. Returns the issue category when the report hits an
    /// injected issue (a *true positive* in the paper's inspection), `None`
    /// otherwise (a false positive).
    ///
    /// A report hits an injection when it points at the injected line and
    /// its original/suggested subtokens talk about the injected names —
    /// loose on orientation, since a human inspector accepts a rename
    /// suggestion in either direction.
    pub fn label(
        &self,
        repo: &str,
        path: &str,
        line: u32,
        original: &str,
        suggested: &str,
    ) -> Option<IssueCategory> {
        let inj = self.injection_at(repo, path, line)?;
        let mut vocabulary: Vec<String> = subtoken::split(&inj.wrong);
        vocabulary.extend(subtoken::split(&inj.correct));
        vocabulary.push(inj.wrong.clone());
        vocabulary.push(inj.correct.clone());
        let talks_about = |s: &str| vocabulary.iter().any(|v| v == s);
        if talks_about(original) && talks_about(suggested) && original != suggested {
            Some(inj.category)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Oracle {
        Oracle::new(&[Injection {
            repo: "r".into(),
            path: "f.py".into(),
            line: 4,
            lines: vec![2, 4],
            wrong: "assertTrue".into(),
            correct: "assertEqual".into(),
            category: IssueCategory::WrongApi,
        }])
    }

    #[test]
    fn matching_report_is_true_positive() {
        let o = sample();
        assert_eq!(
            o.label("r", "f.py", 4, "True", "Equal"),
            Some(IssueCategory::WrongApi)
        );
    }

    #[test]
    fn reversed_orientation_is_accepted() {
        let o = sample();
        assert_eq!(
            o.label("r", "f.py", 4, "Equal", "True"),
            Some(IssueCategory::WrongApi)
        );
    }

    #[test]
    fn wrong_line_is_false_positive() {
        let o = sample();
        assert_eq!(o.label("r", "f.py", 5, "True", "Equal"), None);
    }

    #[test]
    fn secondary_edited_lines_also_hit() {
        let o = sample();
        assert_eq!(
            o.label("r", "f.py", 2, "True", "Equal"),
            Some(IssueCategory::WrongApi)
        );
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn unrelated_tokens_are_false_positive() {
        let o = sample();
        assert_eq!(o.label("r", "f.py", 4, "islink", "exists"), None);
    }

    #[test]
    fn wrong_repo_is_false_positive() {
        let o = sample();
        assert_eq!(o.label("other", "f.py", 4, "True", "Equal"), None);
    }

    #[test]
    fn identical_tokens_are_false_positive() {
        let o = sample();
        assert_eq!(o.label("r", "f.py", 4, "True", "True"), None);
    }
}
