//! The user-study response model (Tables 7 and 8 of the paper).
//!
//! The paper showed 5 code-quality reports (one per Table 4 category) to 7
//! professional developers and asked under which conditions they would
//! accept the change. We cannot run a human study, so this module models the
//! responses as a seeded categorical distribution whose per-category
//! acceptance propensities are calibrated to Table 8's shape: typos are
//! worth fixing manually, inconsistent names get accepted via pull requests,
//! minor issues only through frictionless tooling, and a small residue is
//! rejected.

use crate::issue::IssueCategory;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a developer would accept a suggested fix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Acceptance {
    /// Would not accept the change.
    NotAccepted,
    /// Accept if an IDE plugin applies it at coding time.
    WithIdePlugin,
    /// Accept as an automatic pull request.
    WithPullRequest,
    /// Would even fix it manually.
    FixManually,
}

impl Acceptance {
    /// All options in Table 8 column order.
    pub fn all() -> [Acceptance; 4] {
        [
            Acceptance::NotAccepted,
            Acceptance::WithIdePlugin,
            Acceptance::WithPullRequest,
            Acceptance::FixManually,
        ]
    }
}

impl std::fmt::Display for Acceptance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Acceptance::NotAccepted => "not accepted",
            Acceptance::WithIdePlugin => "accepted with IDE plugin",
            Acceptance::WithPullRequest => "accepted with pull request",
            Acceptance::FixManually => "would even fix manually",
        })
    }
}

/// The five study categories (the Table 4 code-quality breakdown).
pub const STUDY_CATEGORIES: [IssueCategory; 5] = [
    IssueCategory::ConfusingName,
    IssueCategory::IndescriptiveName,
    IssueCategory::InconsistentName,
    IssueCategory::MinorIssue,
    IssueCategory::Typo,
];

/// Per-category acceptance propensities, calibrated to Table 8.
/// Order: [NotAccepted, WithIdePlugin, WithPullRequest, FixManually].
fn propensities(category: IssueCategory) -> [f64; 4] {
    match category {
        IssueCategory::ConfusingName => [0.05, 0.40, 0.30, 0.25],
        IssueCategory::IndescriptiveName => [0.05, 0.40, 0.30, 0.25],
        IssueCategory::InconsistentName => [0.25, 0.05, 0.55, 0.15],
        IssueCategory::MinorIssue => [0.30, 0.50, 0.05, 0.15],
        IssueCategory::Typo => [0.15, 0.25, 0.15, 0.45],
        // Semantic defects were not part of the study; developers fix those.
        _ => [0.0, 0.1, 0.2, 0.7],
    }
}

/// One simulated developer panel.
#[derive(Clone, Debug)]
pub struct StudyPanel {
    seed: u64,
    developers: usize,
}

impl StudyPanel {
    /// A panel of `developers` seeded respondents (the paper had 7).
    pub fn new(developers: usize, seed: u64) -> StudyPanel {
        StudyPanel { seed, developers }
    }

    /// Responses of every developer for one issue category.
    pub fn responses(&self, category: IssueCategory) -> Vec<Acceptance> {
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ (category as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let p = propensities(category);
        (0..self.developers)
            .map(|_| {
                let r: f64 = rng.gen();
                let mut acc = 0.0;
                for (i, &pi) in p.iter().enumerate() {
                    acc += pi;
                    if r < acc {
                        return Acceptance::all()[i];
                    }
                }
                Acceptance::FixManually
            })
            .collect()
    }

    /// Table 8: per-category counts in the order of [`Acceptance::all`].
    pub fn tally(&self, category: IssueCategory) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for r in self.responses(category) {
            let idx = Acceptance::all().iter().position(|&a| a == r).expect("known option");
            counts[idx] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_is_deterministic() {
        let a = StudyPanel::new(7, 1).tally(IssueCategory::Typo);
        let b = StudyPanel::new(7, 1).tally(IssueCategory::Typo);
        assert_eq!(a, b);
    }

    #[test]
    fn tallies_sum_to_panel_size() {
        let panel = StudyPanel::new(7, 2);
        for cat in STUDY_CATEGORIES {
            assert_eq!(panel.tally(cat).iter().sum::<usize>(), 7);
        }
    }

    #[test]
    fn most_responses_accept_the_issues() {
        // Table 8: only 5 of 35 responses were "not accepted".
        let panel = StudyPanel::new(7, 3);
        let rejected: usize = STUDY_CATEGORIES.iter().map(|&c| panel.tally(c)[0]).sum();
        assert!(rejected <= 10, "too many rejections: {rejected}");
    }

    #[test]
    fn typos_lean_towards_manual_fixes() {
        // Aggregate over many panels so the propensity shows through.
        let mut manual = 0;
        let mut not = 0;
        for seed in 0..50 {
            let t = StudyPanel::new(7, seed).tally(IssueCategory::Typo);
            manual += t[3];
            not += t[0];
        }
        assert!(manual > not, "manual={manual} not={not}");
    }
}
