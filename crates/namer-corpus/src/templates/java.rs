//! Java idiom templates.

use super::{Emitted, Point};
use crate::idents::{capitalize, pick, pick_distinct, ATTRS, NOUNS, VERBS};
use crate::issue::IssueCategory;
use rand::rngs::SmallRng;
use rand::Rng;

/// One template: instantiates a block (one top-level class) given the RNG.
pub type Template = fn(&mut SmallRng) -> Emitted;

/// The weighted Java template bank.
pub fn bank() -> Vec<(Template, u32)> {
    vec![
        (pojo_setter as Template, 6),
        (classic_for, 5),
        (try_catch, 5),
        (intent_activity, 3),
        (list_printer, 3),
        (json_mapper, 3),
        (progress_dialog, 2),
        (string_builder, 3),
    ]
}

/// Benign house-style variants for Java.
pub fn benign_bank() -> Vec<Template> {
    vec![
        conekta_mapper as Template,
        output_writer,
        throwable_guard,
        index_k_loop,
        delegate_setter,
    ]
}

/// A POJO setter `this.a = a;` with the `publickKey`-style parameter typo
/// (Table 6, example 4) and an inconsistent-name point.
fn pojo_setter(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let picked = pick_distinct(rng, ATTRS, 2);
    let (a, other) = (picked[0], picked[1]);
    let field = format!("{a}Key");
    let cap = capitalize(&field);
    let typo_field = format!("{a}kKey");
    let lines = vec![
        format!("public class {}{} {{", capitalize(noun), "Entity"),
        format!("    private String {field};"),
        format!("    public void set{cap}(String {field}) {{"),
        format!("        this.{field} = {field};"),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![
        Point {
            edits: vec![
                (2, format!("    public void set{cap}(String {typo_field}) {{")),
                (3, format!("        this.{field} = {typo_field};")),
            ],
            report_line: 3,
            wrong: format!("{a}k"),
            correct: (*a).to_owned(),
            category: IssueCategory::Typo,
        },
        Point {
            edits: vec![(3, format!("        this.{other}Key = {field};"))],
            report_line: 3,
            wrong: (*other).to_owned(),
            correct: (*a).to_owned(),
            category: IssueCategory::InconsistentName,
        },
    ];
    Emitted { lines, points }
}

/// A counting loop with the `double` loop-index defect (Table 6, example 2).
fn classic_for(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Counter {{"),
        format!("    public int count{cap}s(int limit) {{"),
        "        int total = 0;".to_owned(),
        "        for (int i = 0; i < limit; i++) {".to_owned(),
        "            total += i;".to_owned(),
        "        }".to_owned(),
        "        return total;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![(3, "        for (double i = 0; i < limit; i++) {".to_owned())],
        report_line: 3,
        wrong: "double".into(),
        correct: "int".into(),
        category: IssueCategory::WrongType,
    }];
    Emitted { lines, points }
}

/// `try { … } catch (Exception e) { e.printStackTrace(); }` with the
/// `Throwable` catch and the `getStackTrace` misuse (Table 6, examples 1 & 3).
fn try_catch(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Runner {{"),
        format!("    public void {verb}{cap}() {{"),
        "        try {".to_owned(),
        format!("            {verb}();"),
        "        } catch (Exception e) {".to_owned(),
        "            e.printStackTrace();".to_owned(),
        "        }".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![
        Point {
            edits: vec![(4, "        } catch (Throwable e) {".to_owned())],
            report_line: 4,
            wrong: "Throwable".into(),
            correct: "Exception".into(),
            category: IssueCategory::WrongApi,
        },
        Point {
            edits: vec![(5, "            e.getStackTrace();".to_owned())],
            report_line: 5,
            wrong: "get".into(),
            correct: "print".into(),
            category: IssueCategory::WrongApi,
        },
    ];
    Emitted { lines, points }
}

/// The Android `Intent`/`startActivity` idiom, with the indescriptive `i`
/// variable (Table 6, example 5).
fn intent_activity(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Activity {{"),
        format!("    public void open{cap}(Context context) {{"),
        "        Intent intent = new Intent();".to_owned(),
        "        context.startActivity(intent);".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![
            (2, "        Intent i = new Intent();".to_owned()),
            (3, "        context.startActivity(i);".to_owned()),
        ],
        report_line: 3,
        wrong: "i".into(),
        correct: "intent".into(),
        category: IssueCategory::IndescriptiveName,
    }];
    Emitted { lines, points }
}

/// Enhanced-for printing — idiom noise.
fn list_printer(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Printer {{"),
        format!("    public void print{cap}s(List<String> names) {{"),
        "        for (String name : names) {".to_owned(),
        "            System.out.println(name);".to_owned(),
        "        }".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// The dominant `JsonObject resource = new JsonObject()` idiom (whose rare
/// `ConektaObject` sibling is the paper's Table 6 FP example 8).
fn json_mapper(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Mapper {{"),
        format!("    public JsonObject map{cap}() {{"),
        "        JsonObject resource = new JsonObject();".to_owned(),
        "        return resource;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// `progressDialog.dismiss()` with the abbreviated `progDialog` name
/// (Table 6, example 6).
fn progress_dialog(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Screen {{"),
        format!("    public void close{cap}(ProgressDialog progressDialog) {{"),
        "        progressDialog.dismiss();".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![
            (1, format!("    public void close{cap}(ProgressDialog progDialog) {{")),
            (2, "        progDialog.dismiss();".to_owned()),
        ],
        report_line: 2,
        wrong: "prog".into(),
        correct: "progress".into(),
        category: IssueCategory::MinorIssue,
    }];
    Emitted { lines, points }
}

/// StringBuilder accumulation — idiom noise.
fn string_builder(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let n = rng.gen_range(2..6);
    let lines = vec![
        format!("public class {cap}Formatter {{"),
        format!("    public String format{cap}(String text) {{"),
        "        StringBuilder builder = new StringBuilder();".to_owned(),
        format!("        for (int i = 0; i < {n}; i++) {{"),
        "            builder.append(text);".to_owned(),
        "        }".to_owned(),
        "        return builder.toString();".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: a reaper thread that legitimately catches `Throwable`.
fn throwable_guard(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Reaper {{"),
        "    public void guard() {".to_owned(),
        "        try {".to_owned(),
        "            dispatch();".to_owned(),
        "        } catch (Throwable fatal) {".to_owned(),
        "            fatal.printStackTrace();".to_owned(),
        "        }".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: a loop legitimately indexed by `k`.
fn index_k_loop(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Walker {{"),
        format!("    public int walk{cap}s(int limit) {{"),
        "        int total = 0;".to_owned(),
        "        for (int k = 0; k < limit; k++) {".to_owned(),
        "            total += k;".to_owned(),
        "        }".to_owned(),
        "        return total;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: a deliberately role-named setter (`this.delegateKey =
/// handlerKey`), the Java sibling of the Python `handler = callback` style.
fn delegate_setter(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Registry {{"),
        "    private String delegateKey;".to_owned(),
        "    public void bind(String handlerKey) {".to_owned(),
        "        this.delegateKey = handlerKey;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign house style: the Conekta SDK's own object type, used consistently.
fn conekta_mapper(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Resource {{"),
        format!("    public ConektaObject load{cap}() {{"),
        "        ConektaObject resource = new ConektaObject();".to_owned(),
        "        return resource;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign house style: a `StringWriter` deliberately named for its role
/// (`outputWriter`), the paper's Table 6 FP example 7.
fn output_writer(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("public class {cap}Exporter {{"),
        format!("    public void export{cap}() {{"),
        "        StringWriter outputWriter = new StringWriter();".to_owned(),
        "        outputWriter.flush();".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_templates_parse_clean_and_injected() {
        let mut rng = SmallRng::seed_from_u64(77);
        for (template, _) in bank() {
            for _ in 0..5 {
                let e = template(&mut rng);
                let src = e.lines.join("\n") + "\n";
                namer_syntax::java::parse(&src)
                    .unwrap_or_else(|err| panic!("clean template failed: {err}\n{src}"));
                for i in 0..e.points.len() {
                    let bad = e.inject(i).join("\n") + "\n";
                    namer_syntax::java::parse(&bad)
                        .unwrap_or_else(|err| panic!("injected template failed: {err}\n{bad}"));
                }
            }
        }
    }

    #[test]
    fn benign_templates_parse() {
        let mut rng = SmallRng::seed_from_u64(78);
        for template in benign_bank() {
            let e = template(&mut rng);
            let src = e.lines.join("\n") + "\n";
            namer_syntax::java::parse(&src).unwrap();
        }
    }

    #[test]
    fn report_lines_carry_the_wrong_token() {
        let mut rng = SmallRng::seed_from_u64(79);
        for (template, _) in bank() {
            let e = template(&mut rng);
            for (i, p) in e.points.iter().enumerate() {
                let bad = e.inject(i);
                assert!(
                    bad[p.report_line].contains(&p.wrong),
                    "{:?} not in {:?}",
                    p.wrong,
                    bad[p.report_line]
                );
            }
        }
    }
}
