//! JavaScript idiom templates.

use super::{Emitted, Point};
use crate::idents::{capitalize, pick, pick_distinct, ATTRS, NOUNS, VERBS};
use crate::issue::IssueCategory;
use rand::rngs::SmallRng;
use rand::Rng;

/// One template: instantiates a block (one top-level class) given the RNG.
pub type Template = fn(&mut SmallRng) -> Emitted;

/// The weighted JavaScript template bank.
pub fn bank() -> Vec<(Template, u32)> {
    vec![
        (class_setter as Template, 6),
        (classic_for, 5),
        (try_catch, 5),
        (event_listener, 3),
        (list_printer, 3),
        (json_mapper, 3),
        (response_fetcher, 2),
        (parts_builder, 3),
    ]
}

/// Benign house-style variants for JavaScript.
pub fn benign_bank() -> Vec<Template> {
    vec![
        legacy_store as Template,
        output_writer,
        fatal_guard,
        index_k_loop,
        delegate_setter,
    ]
}

/// A class setter `this.a = a;` with a `publickKey`-style parameter typo and
/// an inconsistent-name point — the JS sibling of the Java POJO setter.
fn class_setter(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let picked = pick_distinct(rng, ATTRS, 2);
    let (a, other) = (picked[0], picked[1]);
    let field = format!("{a}Key");
    let cap = capitalize(&field);
    let typo_field = format!("{a}kKey");
    let lines = vec![
        format!("class {}{} {{", capitalize(noun), "Entity"),
        format!("    set{cap}({field}) {{"),
        format!("        this.{field} = {field};"),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![
        Point {
            edits: vec![
                (1, format!("    set{cap}({typo_field}) {{")),
                (2, format!("        this.{field} = {typo_field};")),
            ],
            report_line: 2,
            wrong: format!("{a}k"),
            correct: (*a).to_owned(),
            category: IssueCategory::Typo,
        },
        Point {
            edits: vec![(2, format!("        this.{other}Key = {field};"))],
            report_line: 2,
            wrong: (*other).to_owned(),
            correct: (*a).to_owned(),
            category: IssueCategory::InconsistentName,
        },
    ];
    Emitted { lines, points }
}

/// A counting loop over a `count` accumulator, with the paper's curated
/// `cout` misspelling as the injected point. (JS has no declared types, so
/// the Java bank's `double` loop-index defect has no sibling here.)
fn classic_for(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Counter {{"),
        format!("    count{cap}s(limit) {{"),
        "        let count = 0;".to_owned(),
        "        for (let i = 0; i < limit; i++) {".to_owned(),
        "            count += i;".to_owned(),
        "        }".to_owned(),
        "        return count;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![
            (2, "        let cout = 0;".to_owned()),
            (4, "            cout += i;".to_owned()),
            (6, "        return cout;".to_owned()),
        ],
        report_line: 4,
        wrong: "cout".into(),
        correct: "count".into(),
        category: IssueCategory::Typo,
    }];
    Emitted { lines, points }
}

/// `try { … } catch (err) { console.error(err); }` with the indescriptive
/// `e` catch binding and the `console.log` misuse on the error path.
fn try_catch(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Runner {{"),
        format!("    {verb}{cap}() {{"),
        "        try {".to_owned(),
        format!("            {verb}();"),
        "        } catch (err) {".to_owned(),
        "            console.error(err);".to_owned(),
        "        }".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![
        Point {
            edits: vec![
                (4, "        } catch (e) {".to_owned()),
                (5, "            console.error(e);".to_owned()),
            ],
            report_line: 4,
            wrong: "e".into(),
            correct: "err".into(),
            category: IssueCategory::IndescriptiveName,
        },
        Point {
            edits: vec![(5, "            console.log(err);".to_owned())],
            report_line: 5,
            wrong: "log".into(),
            correct: "error".into(),
            category: IssueCategory::WrongApi,
        },
    ];
    Emitted { lines, points }
}

/// The DOM `addEventListener` idiom, with an indescriptive `h` holding the
/// handler — the JS sibling of `Intent i`.
fn event_listener(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}View {{"),
        format!("    open{cap}(element) {{"),
        "        const handler = new EventHandler();".to_owned(),
        "        element.addEventListener(\"click\", handler);".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![
            (2, "        const h = new EventHandler();".to_owned()),
            (3, "        element.addEventListener(\"click\", h);".to_owned()),
        ],
        report_line: 3,
        wrong: "h".into(),
        correct: "handler".into(),
        category: IssueCategory::IndescriptiveName,
    }];
    Emitted { lines, points }
}

/// `for … of` printing — idiom noise.
fn list_printer(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Printer {{"),
        format!("    print{cap}s(names) {{"),
        "        for (const name of names) {".to_owned(),
        "            console.log(name);".to_owned(),
        "        }".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// The dominant `const resource = {}` mapper idiom (whose rare `LegacyStore`
/// sibling is the benign false-positive probe).
fn json_mapper(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Mapper {{"),
        format!("    map{cap}() {{"),
        "        const resource = {};".to_owned(),
        "        return resource;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// `await fetch(…)` held in `response`, with the abbreviated `resp` name —
/// the JS sibling of `progDialog`.
fn response_fetcher(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Client {{"),
        format!("    async fetch{cap}(url) {{"),
        "        const response = await fetch(url);".to_owned(),
        "        return response;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![
            (2, "        const resp = await fetch(url);".to_owned()),
            (3, "        return resp;".to_owned()),
        ],
        report_line: 2,
        wrong: "resp".into(),
        correct: "response".into(),
        category: IssueCategory::MinorIssue,
    }];
    Emitted { lines, points }
}

/// Array accumulation with `push`/`join` — idiom noise.
fn parts_builder(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let n = rng.gen_range(2..6);
    let lines = vec![
        format!("class {cap}Formatter {{"),
        format!("    format{cap}(text) {{"),
        "        const parts = [];".to_owned(),
        format!("        for (let i = 0; i < {n}; i++) {{"),
        "            parts.push(text);".to_owned(),
        "        }".to_owned(),
        "        return parts.join(\"\");".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: a watchdog that legitimately names its error `fatal`.
fn fatal_guard(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Reaper {{"),
        "    guard() {".to_owned(),
        "        try {".to_owned(),
        "            dispatch();".to_owned(),
        "        } catch (fatal) {".to_owned(),
        "            console.error(fatal);".to_owned(),
        "        }".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: a loop legitimately indexed by `k`.
fn index_k_loop(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Walker {{"),
        format!("    walk{cap}s(limit) {{"),
        "        let total = 0;".to_owned(),
        "        for (let k = 0; k < limit; k++) {".to_owned(),
        "            total += k;".to_owned(),
        "        }".to_owned(),
        "        return total;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: a deliberately role-named setter (`this.delegateKey =
/// handlerKey`), matching the Python/Java siblings.
fn delegate_setter(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Registry {{"),
        "    bind(handlerKey) {".to_owned(),
        "        this.delegateKey = handlerKey;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign house style: a legacy vendor store type, used consistently.
fn legacy_store(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Resource {{"),
        format!("    load{cap}() {{"),
        "        const resource = new LegacyStore();".to_owned(),
        "        return resource;".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign house style: a writer deliberately named for its role
/// (`outputWriter`), matching the Java Table 6 FP sibling.
fn output_writer(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let cap = capitalize(noun);
    let lines = vec![
        format!("class {cap}Exporter {{"),
        format!("    export{cap}() {{"),
        "        const outputWriter = createWriter();".to_owned(),
        "        outputWriter.flush();".to_owned(),
        "    }".to_owned(),
        "}".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_templates_parse_clean_and_injected() {
        let mut rng = SmallRng::seed_from_u64(87);
        for (template, _) in bank() {
            for _ in 0..5 {
                let e = template(&mut rng);
                let src = e.lines.join("\n") + "\n";
                namer_syntax::js::parse(&src)
                    .unwrap_or_else(|err| panic!("clean template failed: {err}\n{src}"));
                for i in 0..e.points.len() {
                    let bad = e.inject(i).join("\n") + "\n";
                    namer_syntax::js::parse(&bad)
                        .unwrap_or_else(|err| panic!("injected template failed: {err}\n{bad}"));
                }
            }
        }
    }

    #[test]
    fn benign_templates_parse() {
        let mut rng = SmallRng::seed_from_u64(88);
        for template in benign_bank() {
            let e = template(&mut rng);
            let src = e.lines.join("\n") + "\n";
            namer_syntax::js::parse(&src).unwrap();
        }
    }

    #[test]
    fn report_lines_carry_the_wrong_token() {
        let mut rng = SmallRng::seed_from_u64(89);
        for (template, _) in bank() {
            let e = template(&mut rng);
            for (i, p) in e.points.iter().enumerate() {
                let bad = e.inject(i);
                assert!(
                    bad[p.report_line].contains(&p.wrong),
                    "{:?} not in {:?}",
                    p.wrong,
                    bad[p.report_line]
                );
            }
        }
    }
}
