//! Code templates for the synthetic Big Code generator.
//!
//! Each template instantiates one idiomatic code block (a class, a function,
//! a test case…) and declares its *injection points*: places where the
//! generator can swap the idiomatic name for a realistic mistake, yielding
//! ground-truth naming issues. Templates also come in *benign variants* —
//! legitimate house styles that deviate from the global idiom and exercise
//! the false-positive path (§5.2's `islink`, §5.3's `ConektaObject`).

pub mod java;
pub mod js;
pub mod python;

use crate::issue::IssueCategory;

/// One instantiated code block.
#[derive(Clone, Debug)]
pub struct Emitted {
    /// The block's source lines.
    pub lines: Vec<String>,
    /// Places where a naming issue can be injected.
    pub points: Vec<Point>,
}

/// A candidate injection: which lines change and what the ground truth is.
#[derive(Clone, Debug)]
pub struct Point {
    /// `(0-based line index within the block, replacement line)`.
    pub edits: Vec<(usize, String)>,
    /// 0-based line (within the block) where a detector should report.
    pub report_line: usize,
    /// The wrong subtoken introduced.
    pub wrong: String,
    /// The subtoken the idiom calls for.
    pub correct: String,
    /// Ground-truth category.
    pub category: IssueCategory,
}

impl Emitted {
    /// Applies injection point `i`, returning the buggy lines.
    pub fn inject(&self, i: usize) -> Vec<String> {
        let mut lines = self.lines.clone();
        for (idx, replacement) in &self.points[i].edits {
            lines[*idx] = replacement.clone();
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_applies_all_edits() {
        let e = Emitted {
            lines: vec!["a".into(), "b".into(), "c".into()],
            points: vec![Point {
                edits: vec![(0, "A".into()), (2, "C".into())],
                report_line: 2,
                wrong: "C".into(),
                correct: "c".into(),
                category: IssueCategory::Typo,
            }],
        };
        assert_eq!(e.inject(0), vec!["A", "b", "C"]);
        // The original is untouched.
        assert_eq!(e.lines[0], "a");
    }
}
