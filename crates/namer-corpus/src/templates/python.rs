//! Python idiom templates.

use super::{Emitted, Point};
use crate::idents::{capitalize, pick, pick_distinct, typo_of, ATTRS, NOUNS, VERBS};
use crate::issue::IssueCategory;
use rand::rngs::SmallRng;
use rand::Rng;

/// One template: instantiates a block given the RNG.
pub type Template = fn(&mut SmallRng) -> Emitted;

/// The weighted template bank: `(template, weight)`. Higher-weight idioms
/// dominate the corpus, like their real-world counterparts dominate GitHub.
pub fn bank() -> Vec<(Template, u32)> {
    vec![
        (unittest_assert as Template, 6),
        (ctor_assign, 6),
        (numpy_array, 3),
        (range_loop, 4),
        (kwargs_method, 3),
        (port_server, 2),
        (dict_copy, 3),
        (read_file, 3),
        (path_check, 4),
        (exception_handler, 2),
    ]
}

/// Benign house-style variants used by "benign" repositories — legitimate
/// code that deviates from the global idiom (false-positive pressure).
pub fn benign_bank() -> Vec<Template> {
    vec![
        link_check as Template,
        handler_assign,
        validator,
        counter_loop,
        registry_assign,
    ]
}

/// `class TestX(TestCase): def test_…: self.assertEqual(y.attr, N)` with
/// wrong-API and deprecated-API injection points (Table 3, examples 1 & 3).
fn unittest_assert(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let attr = pick(rng, ATTRS);
    let num = rng.gen_range(1..100);
    let assert_ok = format!("        self.assertEqual({noun}.{attr}, {num})");
    let lines = vec![
        format!("class Test{}(TestCase):", capitalize(noun)),
        format!("    def test_{verb}_{attr}(self):"),
        format!("        {noun} = {verb}_{noun}()"),
        assert_ok,
    ];
    let points = vec![
        Point {
            edits: vec![(3, format!("        self.assertTrue({noun}.{attr}, {num})"))],
            report_line: 3,
            wrong: "True".into(),
            correct: "Equal".into(),
            category: IssueCategory::WrongApi,
        },
        Point {
            edits: vec![(3, format!("        self.assertEquals({noun}.{attr}, {num})"))],
            report_line: 3,
            wrong: "Equals".into(),
            correct: "Equal".into(),
            category: IssueCategory::DeprecatedApi,
        },
    ];
    Emitted { lines, points }
}

/// Constructor field assignments `self.a = a` with inconsistent-name and typo
/// injection points (Table 7's inconsistent-name and typo rows).
fn ctor_assign(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let picked = pick_distinct(rng, ATTRS, 3);
    let (a, b, c) = (picked[0], picked[1], picked[2]);
    let lines = vec![
        format!("class {}:", capitalize(noun)),
        format!("    def __init__(self, {a}, {b}):"),
        format!("        self.{a} = {a}"),
        format!("        self.{b} = {b}"),
    ];
    let typo = typo_of(rng, b);
    let points = vec![
        Point {
            edits: vec![(2, format!("        self.{c} = {a}"))],
            report_line: 2,
            wrong: (*c).to_owned(),
            correct: (*a).to_owned(),
            category: IssueCategory::InconsistentName,
        },
        Point {
            edits: vec![(3, format!("        self.{b} = {typo}"))],
            report_line: 3,
            wrong: typo.clone(),
            correct: (*b).to_owned(),
            category: IssueCategory::Typo,
        },
    ];
    Emitted { lines, points }
}

/// `import numpy as np; … np.array(…)` with the `N` alias as a minor issue
/// (Table 3, example 6).
fn numpy_array(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let lines = vec![
        "import numpy as np".to_owned(),
        format!("def {verb}_{noun}(values):"),
        format!("    {noun} = np.array(values)"),
        format!("    return {noun}"),
    ];
    let points = vec![Point {
        edits: vec![
            (0, "import numpy as N".to_owned()),
            (2, format!("    {noun} = N.array(values)")),
        ],
        report_line: 2,
        wrong: "N".into(),
        correct: "np".into(),
        category: IssueCategory::MinorIssue,
    }];
    Emitted { lines, points }
}

/// `for i in range(n)` with the deprecated `xrange` injection
/// (Table 3, example 2).
fn range_loop(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let n = rng.gen_range(5..50);
    let lines = vec![
        format!("def {verb}_{noun}s(items):"),
        "    total = 0".to_owned(),
        format!("    for i in range({n}):"),
        "        total += i".to_owned(),
        "    return total".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![(2, format!("    for i in xrange({n}):"))],
        report_line: 2,
        wrong: "xrange".into(),
        correct: "range".into(),
        category: IssueCategory::DeprecatedApi,
    }];
    Emitted { lines, points }
}

/// `def m(self, a, **kwargs)` with the `**args` confusion
/// (Table 3, example 5).
fn kwargs_method(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let attr = pick(rng, ATTRS);
    let lines = vec![
        format!("class {}{}:", capitalize(noun), "Options"),
        format!("    def {verb}(self, {attr}, **kwargs):"),
        format!("        self.{attr} = {attr}"),
        "        self.configure(kwargs)".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![
            (1, format!("    def {verb}(self, {attr}, **args):")),
            (3, "        self.configure(args)".to_owned()),
        ],
        report_line: 3,
        wrong: "args".into(),
        correct: "kwargs".into(),
        category: IssueCategory::ConfusingName,
    }];
    Emitted { lines, points }
}

/// The `self.port = por` curated typo (Table 7's typo row).
fn port_server(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let lines = vec![
        format!("class {}Server:", capitalize(noun)),
        "    def __init__(self, port, host):".to_owned(),
        "        self.port = port".to_owned(),
        "        self.host = host".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![(2, "        self.port = por".to_owned())],
        report_line: 2,
        wrong: "por".into(),
        correct: "port".into(),
        category: IssueCategory::Typo,
    }];
    Emitted { lines, points }
}

/// `out[key] = value` over `.items()` with the key/value confusion.
fn dict_copy(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let lines = vec![
        format!("def {verb}_{noun}s(mapping, out):"),
        "    for key, value in mapping.items():".to_owned(),
        "        out[key] = value".to_owned(),
        "    return out".to_owned(),
    ];
    let points = vec![Point {
        edits: vec![(2, "        out[key] = key".to_owned())],
        report_line: 2,
        wrong: "key".into(),
        correct: "value".into(),
        category: IssueCategory::ConfusingName,
    }];
    Emitted { lines, points }
}

/// `with open(path) as f: data = f.read()` — idiom noise, no injections.
fn read_file(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let lines = vec![
        format!("def read_{noun}(path):"),
        "    with open(path) as f:".to_owned(),
        "        data = f.read()".to_owned(),
        "    return data".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// `self.assertTrue(os.path.exists(path))` — the dominant one-argument
/// assertTrue idiom (whose rare `islink` sibling is the paper's FP example).
fn path_check(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let lines = vec![
        format!("class Test{}Path(TestCase):", capitalize(noun)),
        format!("    def test_{noun}_file(self):"),
        "        self.assertTrue(os.path.exists(path))".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// A custom validation API where two-argument `assertTrue` is *correct*:
/// distinguishable from `TestCase` only through the points-to origins, this
/// is what makes the "w/o A" ablation lose precision and recall (Table 2).
fn validator(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let attr = pick(rng, ATTRS);
    let num = rng.gen_range(1..20);
    let lines = vec![
        format!("class {}Validator(Validator):", capitalize(noun)),
        format!("    def validate_{attr}(self, {noun}):"),
        format!("        self.assertTrue({noun}.{attr}, {num})"),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// `try/except ValueError as e` — idiom noise.
fn exception_handler(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let lines = vec![
        format!("def {verb}_{noun}(data):"),
        "    try:".to_owned(),
        "        return parse(data)".to_owned(),
        "    except ValueError as e:".to_owned(),
        "        raise".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign house style: symlink checks instead of existence checks
/// (the paper's Table 3 false-positive example 7).
fn link_check(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let lines = vec![
        format!("class Test{}Link(TestCase):", capitalize(noun)),
        format!("    def test_{noun}_link(self):"),
        "        self.assertTrue(os.path.islink(path))".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: a loop legitimately using `j` as its index where the
/// global idiom overwhelmingly uses `i`.
fn counter_loop(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let verb = pick(rng, VERBS);
    let n = rng.gen_range(5..50);
    let lines = vec![
        format!("def {verb}_{noun}_pairs(items):"),
        "    total = 0".to_owned(),
        format!("    for j in range({n}):"),
        "        total += j".to_owned(),
        "    return total".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign anomaly: another deliberately-mismatched constructor assignment
/// (`self.owner = creator`), same family as [`handler_assign`].
fn registry_assign(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let lines = vec![
        format!("class {}Store:", capitalize(noun)),
        "    def __init__(self, creator):".to_owned(),
        "        self.owner = creator".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

/// Benign house style: `self.<a> = <b>` where the attribute intentionally
/// differs from the value name (the `self._factory = song` shape of Table 7).
fn handler_assign(rng: &mut SmallRng) -> Emitted {
    let noun = pick(rng, NOUNS);
    let lines = vec![
        format!("class {}Registry:", capitalize(noun)),
        "    def __init__(self, callback):".to_owned(),
        "        self.handler = callback".to_owned(),
    ];
    Emitted {
        lines,
        points: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_templates_parse_clean_and_injected() {
        let mut rng = SmallRng::seed_from_u64(99);
        for (template, _) in bank() {
            for _ in 0..5 {
                let e = template(&mut rng);
                let src = e.lines.join("\n") + "\n";
                namer_syntax::python::parse(&src)
                    .unwrap_or_else(|err| panic!("clean template failed: {err}\n{src}"));
                for i in 0..e.points.len() {
                    let bad = e.inject(i).join("\n") + "\n";
                    namer_syntax::python::parse(&bad)
                        .unwrap_or_else(|err| panic!("injected template failed: {err}\n{bad}"));
                }
            }
        }
    }

    #[test]
    fn benign_templates_parse() {
        let mut rng = SmallRng::seed_from_u64(100);
        for template in benign_bank() {
            let e = template(&mut rng);
            let src = e.lines.join("\n") + "\n";
            namer_syntax::python::parse(&src).unwrap();
        }
    }

    #[test]
    fn injection_points_change_the_report_line() {
        let mut rng = SmallRng::seed_from_u64(101);
        for (template, _) in bank() {
            let e = template(&mut rng);
            for (i, p) in e.points.iter().enumerate() {
                let bad = e.inject(i);
                assert_ne!(
                    bad[p.report_line], e.lines[p.report_line],
                    "point {i} must alter its report line"
                );
                assert!(
                    bad[p.report_line].contains(&p.wrong),
                    "wrong token {:?} not on report line {:?}",
                    p.wrong,
                    bad[p.report_line]
                );
            }
        }
    }

    #[test]
    fn templates_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let ea = unittest_assert(&mut a);
        let eb = unittest_assert(&mut b);
        assert_eq!(ea.lines, eb.lines);
    }
}
