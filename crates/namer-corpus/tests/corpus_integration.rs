//! Integration checks on the synthetic Big Code substrate: idiom dominance,
//! anomaly presence, injection structure, and pair-mining coverage.

use namer_corpus::{CorpusConfig, Generator, IssueCategory};
use namer_patterns::ConfusingPairs;
use namer_syntax::{parse_file, Lang, Sym};

#[test]
fn idioms_dominate_violation_sources() {
    // The satisfaction ratio that keeps a pattern alive in pruneUncommon
    // requires idiomatic statements to greatly outnumber deviants: the
    // assertEqual idiom must outnumber assertTrue-with-two-args misuses.
    let corpus = Generator::new(CorpusConfig::medium(Lang::Python)).generate(4);
    let count = |needle: &str| {
        corpus
            .files
            .iter()
            .map(|f| f.text.matches(needle).count())
            .sum::<usize>()
    };
    let good = count("self.assertEqual(");
    // The misuse signature is the *two-argument numeric* assertTrue; the
    // one-argument form (path checks) and the Validator API are legitimate.
    let bad = corpus
        .files
        .iter()
        .flat_map(|f| f.text.lines())
        .filter(|l| {
            l.contains("self.assertTrue(")
                && l.trim_end().ends_with(')')
                && l.rsplit(',')
                    .next()
                    .map(|tail| tail.trim().trim_end_matches(')').parse::<i64>().is_ok())
                    .unwrap_or(false)
                && !l.contains("Validator")
        })
        .count();
    // Figure-2-style misuses must stay rare relative to the idiom, or
    // pruneUncommon (0.8) would kill the pattern that detects them.
    assert!(good >= bad * 4, "assertEqual {good} vs 2-arg assertTrue {bad}");
}

#[test]
fn anomalies_and_house_styles_are_present() {
    let corpus = Generator::new(CorpusConfig::medium(Lang::Python)).generate(5);
    let islink_files = corpus
        .files
        .iter()
        .filter(|f| f.text.contains("islink"))
        .count();
    let validator_files = corpus
        .files
        .iter()
        .filter(|f| f.text.contains("Validator"))
        .count();
    assert!(islink_files > 3, "islink anomalies exist: {islink_files}");
    assert!(validator_files > 3, "validator anomalies exist: {validator_files}");
    // None of these benign blocks are recorded as injections.
    for inj in &corpus.injections {
        assert!(!inj.wrong.contains("islink"));
    }
}

#[test]
fn injections_cover_every_category_at_medium_scale() {
    for (lang, seed) in [(Lang::Python, 6), (Lang::Java, 7)] {
        let corpus = Generator::new(CorpusConfig::medium(lang)).generate(seed);
        let mut seen: Vec<IssueCategory> = corpus.injections.iter().map(|i| i.category).collect();
        seen.sort_by_key(|c| format!("{c}"));
        seen.dedup();
        assert!(
            seen.len() >= 5,
            "{lang}: only {} categories injected: {seen:?}",
            seen.len()
        );
    }
}

#[test]
fn commit_mining_recovers_injected_pairs() {
    let corpus = Generator::new(CorpusConfig::medium(Lang::Python)).generate(8);
    let mut pairs = ConfusingPairs::new();
    for c in &corpus.commits {
        let before = parse_file(&namer_syntax::SourceFile::new("c", "b", c.before.clone(), c.lang));
        let after = parse_file(&namer_syntax::SourceFile::new("c", "a", c.after.clone(), c.lang));
        if let (Ok(b), Ok(a)) = (before, after) {
            pairs.mine_commit(&b, &a);
        }
    }
    // The signature pairs of the paper's Python examples all get mined.
    for (w1, w2) in [("True", "Equal"), ("xrange", "range"), ("args", "kwargs")] {
        assert!(
            pairs.contains(Sym::intern(w1), Sym::intern(w2)),
            "pair ({w1}, {w2}) missing"
        );
    }
}

#[test]
fn every_injection_has_at_least_its_report_line() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(9);
    for inj in &corpus.injections {
        assert!(!inj.lines.is_empty());
        assert!(inj.lines.contains(&inj.line) || !inj.lines.is_empty());
        assert_ne!(inj.wrong, inj.correct);
    }
}

#[test]
fn larger_scales_scale_every_dimension() {
    let small = Generator::new(CorpusConfig::small(Lang::Python)).generate(10);
    let medium = Generator::new(CorpusConfig::medium(Lang::Python)).generate(10);
    assert!(medium.files.len() > small.files.len() * 3);
    assert!(medium.injections.len() > small.injections.len());
    assert!(medium.commits.len() > small.commits.len());
    assert!(medium.repo_count() > small.repo_count());
}

#[test]
fn all_medium_java_files_parse() {
    let corpus = Generator::new(CorpusConfig::medium(Lang::Java)).generate(11);
    let mut failures = 0;
    for f in &corpus.files {
        if parse_file(f).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures} of {} files failed to parse", corpus.files.len());
}
