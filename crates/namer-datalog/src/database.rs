//! Tuple storage with per-relation indices.

use crate::program::RelId;
use std::collections::{HashMap, HashSet};

/// Facts for every relation of a program.
///
/// Tuples are stored append-only; a hash set deduplicates, and the evaluator
/// tracks per-relation *delta* windows (`[delta_start, len)`) for semi-naive
/// iteration. Joins use lazily built indices keyed on bound argument
/// positions; indices are extended incrementally as tuples arrive.
#[derive(Debug, Default)]
pub struct Database {
    relations: Vec<Relation>,
}

#[derive(Debug, Default)]
struct Relation {
    rows: Vec<Vec<u64>>,
    seen: HashSet<Vec<u64>>,
    /// Index: bound-position bitmask → (key values at those positions → row
    /// indices). `indexed_upto` rows have been added to each existing index.
    indices: HashMap<u64, HashMap<Vec<u64>, Vec<usize>>>,
    indexed_upto: usize,
}

impl Database {
    /// Creates an empty database with `n` relations.
    pub fn new(n: usize) -> Database {
        Database {
            relations: (0..n).map(|_| Relation::default()).collect(),
        }
    }

    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, rel: RelId, row: impl Into<Vec<u64>>) -> bool {
        let row = row.into();
        let r = &mut self.relations[rel.index()];
        if r.seen.insert(row.clone()) {
            r.rows.push(row);
            true
        } else {
            false
        }
    }

    /// Returns `true` if the tuple is present.
    pub fn contains(&self, rel: RelId, row: &[u64]) -> bool {
        self.relations[rel.index()].seen.contains(row)
    }

    /// All tuples of `rel`, in insertion order.
    pub fn rows(&self, rel: RelId) -> &[Vec<u64>] {
        &self.relations[rel.index()].rows
    }

    /// Number of tuples in `rel`.
    pub fn len(&self, rel: RelId) -> usize {
        self.relations[rel.index()].rows.len()
    }

    /// Returns `true` if `rel` holds no tuples.
    pub fn is_empty(&self, rel: RelId) -> bool {
        self.relations[rel.index()].rows.is_empty()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.rows.len()).sum()
    }

    /// Row indices of `rel` whose values at `positions` equal `key`,
    /// considering only rows in `[from, to)`.
    ///
    /// `positions` must be sorted and non-empty; `key[i]` is the required
    /// value at `positions[i]`.
    pub(crate) fn probe(
        &mut self,
        rel: RelId,
        positions: &[usize],
        key: &[u64],
        from: usize,
        to: usize,
    ) -> Vec<usize> {
        debug_assert!(!positions.is_empty());
        let r = &mut self.relations[rel.index()];
        let mask = positions.iter().fold(0u64, |m, &p| m | (1 << p));
        // Extend all indices with rows that arrived since the last probe.
        if r.indexed_upto < r.rows.len() {
            let start = r.indexed_upto;
            for (m, index) in r.indices.iter_mut() {
                let ps: Vec<usize> = (0..64).filter(|p| m & (1 << p) != 0).collect();
                for (i, row) in r.rows.iter().enumerate().skip(start) {
                    let k: Vec<u64> = ps.iter().map(|&p| row[p]).collect();
                    index.entry(k).or_default().push(i);
                }
            }
            r.indexed_upto = r.rows.len();
        }
        let index = r.indices.entry(mask).or_insert_with(|| {
            let mut idx: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
            for (i, row) in r.rows.iter().enumerate() {
                let k: Vec<u64> = positions.iter().map(|&p| row[p]).collect();
                idx.entry(k).or_default().push(i);
            }
            idx
        });
        match index.get(key) {
            Some(rows) => rows
                .iter()
                .copied()
                .filter(|&i| i >= from && i < to)
                .collect(),
            None => Vec::new(),
        }
    }

    /// One row by index.
    pub(crate) fn row(&self, rel: RelId, i: usize) -> &[u64] {
        &self.relations[rel.index()].rows[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn setup() -> (Program, RelId, Database) {
        let mut p = Program::new();
        let r = p.relation("r", 3);
        let db = p.database();
        (p, r, db)
    }

    #[test]
    fn insert_deduplicates() {
        let (_p, r, mut db) = setup();
        assert!(db.insert(r, [1, 2, 3]));
        assert!(!db.insert(r, [1, 2, 3]));
        assert_eq!(db.len(r), 1);
    }

    #[test]
    fn contains_and_rows() {
        let (_p, r, mut db) = setup();
        db.insert(r, [1, 2, 3]);
        db.insert(r, [4, 5, 6]);
        assert!(db.contains(r, &[4, 5, 6]));
        assert!(!db.contains(r, &[4, 5, 7]));
        assert_eq!(db.rows(r).len(), 2);
    }

    #[test]
    fn probe_finds_matching_rows() {
        let (_p, r, mut db) = setup();
        db.insert(r, [1, 10, 100]);
        db.insert(r, [1, 20, 200]);
        db.insert(r, [2, 10, 300]);
        let hits = db.probe(r, &[0], &[1], 0, 3);
        assert_eq!(hits.len(), 2);
        let hits = db.probe(r, &[0, 1], &[1, 20], 0, 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(db.row(r, hits[0]), &[1, 20, 200]);
    }

    #[test]
    fn probe_respects_window() {
        let (_p, r, mut db) = setup();
        db.insert(r, [1, 0, 0]);
        db.insert(r, [1, 1, 0]);
        let hits = db.probe(r, &[0], &[1], 1, 2);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn index_extends_after_new_inserts() {
        let (_p, r, mut db) = setup();
        db.insert(r, [1, 0, 0]);
        // Build the index on position 0.
        assert_eq!(db.probe(r, &[0], &[1], 0, 1).len(), 1);
        // Insert more and probe again; the index must see the new row.
        db.insert(r, [1, 9, 9]);
        assert_eq!(db.probe(r, &[0], &[1], 0, 2).len(), 2);
    }

    #[test]
    fn total_tuples_sums_relations() {
        let mut p = Program::new();
        let a = p.relation("a", 1);
        let b = p.relation("b", 1);
        let mut db = p.database();
        db.insert(a, [1]);
        db.insert(b, [1]);
        db.insert(b, [2]);
        assert_eq!(db.total_tuples(), 3);
    }
}
