//! Semi-naive fixpoint evaluation.

use crate::database::Database;
use crate::program::{Program, Rule, Term};

/// Runs `prog` over `db` stratum by stratum until fixpoint.
pub fn run(prog: &Program, mut db: Database, strata: &[Vec<usize>]) -> Database {
    for stratum in strata {
        let rules: Vec<&Rule> = stratum.iter().map(|&i| &prog.rules[i]).collect();
        if rules.is_empty() {
            continue;
        }
        let n = prog.relation_count();
        // Delta window per relation: [old_end, cur_end).
        let mut old_end = vec![0usize; n];
        let mut cur_end: Vec<usize> = (0..n)
            .map(|i| db.len(crate::program::RelId(i as u32)))
            .collect();
        loop {
            for rule in &rules {
                apply_rule(rule, &mut db, &old_end, &cur_end);
            }
            let new_end: Vec<usize> = (0..n)
                .map(|i| db.len(crate::program::RelId(i as u32)))
                .collect();
            if new_end == cur_end {
                break;
            }
            old_end = cur_end;
            cur_end = new_end;
        }
    }
    db
}

fn max_var(rule: &Rule) -> usize {
    let mut m = 0;
    let mut visit = |t: &Term| {
        if let Term::Var(v) = t {
            m = m.max(*v as usize + 1);
        }
    };
    for t in &rule.head.terms {
        visit(t);
    }
    for l in &rule.body {
        for t in &l.atom.terms {
            visit(t);
        }
    }
    m
}

/// Applies one rule semi-naively: one pass per choice of delta literal.
fn apply_rule(rule: &Rule, db: &mut Database, old_end: &[usize], cur_end: &[usize]) {
    let positive: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.negated)
        .map(|(i, _)| i)
        .collect();
    if positive.is_empty() {
        // Fact rule (constant head): derive once.
        let mut env = vec![None; max_var(rule)];
        derive(rule, db, &mut env, old_end, cur_end, usize::MAX, 0);
        return;
    }
    for &delta_pos in &positive {
        // Skip passes whose delta window is empty.
        let rel = rule.body[delta_pos].atom.relation.index();
        if old_end[rel] >= cur_end[rel] {
            continue;
        }
        let mut env = vec![None; max_var(rule)];
        derive(rule, db, &mut env, old_end, cur_end, delta_pos, 0);
    }
}

/// Recursive join over the body, literal by literal.
#[allow(clippy::too_many_arguments)]
fn derive(
    rule: &Rule,
    db: &mut Database,
    env: &mut Vec<Option<u64>>,
    old_end: &[usize],
    cur_end: &[usize],
    delta_pos: usize,
    at: usize,
) {
    if at == rule.body.len() {
        let row: Vec<u64> = rule
            .head
            .terms
            .iter()
            .map(|t| ground(t, env).expect("head variable bound (checked at rule creation)"))
            .collect();
        db.insert(rule.head.relation, row);
        return;
    }
    let lit = &rule.body[at];
    if lit.negated {
        let row: Vec<u64> = lit
            .atom
            .terms
            .iter()
            .map(|t| ground(t, env).expect("negated literal grounded (checked)"))
            .collect();
        if !db.contains(lit.atom.relation, &row) {
            derive(rule, db, env, old_end, cur_end, delta_pos, at + 1);
        }
        return;
    }
    let rel = lit.atom.relation;
    let ri = rel.index();
    // Window for this literal under the semi-naive schedule.
    let (from, to) = if at == delta_pos {
        (old_end[ri], cur_end[ri])
    } else if at < delta_pos {
        (0, cur_end[ri])
    } else {
        (0, old_end[ri])
    };
    // When delta_pos is usize::MAX (fact rules) use the full current window.
    let (from, to) = if delta_pos == usize::MAX {
        (0, cur_end[ri])
    } else {
        (from, to)
    };
    if from >= to {
        return;
    }
    // Bound positions for an index probe.
    let mut positions = Vec::new();
    let mut key = Vec::new();
    for (p, t) in lit.atom.terms.iter().enumerate() {
        if let Some(v) = ground(t, env) {
            positions.push(p);
            key.push(v);
        }
    }
    let candidates: Vec<usize> = if positions.is_empty() {
        (from..to).collect()
    } else {
        db.probe(rel, &positions, &key, from, to)
    };
    for i in candidates {
        let row = db.row(rel, i).to_vec();
        let mut bound_here = Vec::new();
        let mut ok = true;
        for (p, t) in lit.atom.terms.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    if row[p] != *c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match env[*v as usize] {
                    Some(bound) => {
                        if bound != row[p] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[*v as usize] = Some(row[p]);
                        bound_here.push(*v as usize);
                    }
                },
            }
        }
        if ok {
            derive(rule, db, env, old_end, cur_end, delta_pos, at + 1);
        }
        for v in bound_here {
            env[v] = None;
        }
    }
}

fn ground(t: &Term, env: &[Option<u64>]) -> Option<u64> {
    match t {
        Term::Const(c) => Some(*c),
        Term::Var(v) => env[*v as usize],
    }
}

#[cfg(test)]
mod tests {
    use crate::{Program, Term};

    fn vars3() -> (Term, Term, Term) {
        (Term::var(0), Term::var(1), Term::var(2))
    }

    #[test]
    fn transitive_closure() {
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let t = p.relation("t", 2);
        let (x, y, z) = vars3();
        p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
        p.rule(t.atom([x, z]), [e.atom([x, y]).pos(), t.atom([y, z]).pos()]);
        let mut db = p.database();
        for i in 0..20u64 {
            db.insert(e, [i, i + 1]);
        }
        let out = p.eval(db).unwrap();
        assert_eq!(out.len(t), 20 * 21 / 2);
        assert!(out.contains(t, &[0, 20]));
        assert!(!out.contains(t, &[5, 5]));
    }

    #[test]
    fn constants_in_rules() {
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let from_zero = p.relation("from_zero", 1);
        let y = Term::var(0);
        p.rule(from_zero.atom([y]), [e.atom([Term::cst(0), y]).pos()]);
        let mut db = p.database();
        db.insert(e, [0, 7]);
        db.insert(e, [1, 8]);
        let out = p.eval(db).unwrap();
        assert_eq!(out.rows(from_zero), &[vec![7]]);
    }

    #[test]
    fn join_on_shared_variable() {
        let mut p = Program::new();
        let parent = p.relation("parent", 2);
        let grand = p.relation("grand", 2);
        let (x, y, z) = vars3();
        p.rule(
            grand.atom([x, z]),
            [parent.atom([x, y]).pos(), parent.atom([y, z]).pos()],
        );
        let mut db = p.database();
        db.insert(parent, [1, 2]);
        db.insert(parent, [2, 3]);
        db.insert(parent, [2, 4]);
        let out = p.eval(db).unwrap();
        assert!(out.contains(grand, &[1, 3]));
        assert!(out.contains(grand, &[1, 4]));
        assert_eq!(out.len(grand), 2);
    }

    #[test]
    fn stratified_negation() {
        let mut p = Program::new();
        let node = p.relation("node", 1);
        let edge = p.relation("edge", 2);
        let has_out = p.relation("has_out", 1);
        let sink = p.relation("sink", 1);
        let (x, y, _) = vars3();
        p.rule(has_out.atom([x]), [edge.atom([x, y]).pos()]);
        p.rule(sink.atom([x]), [node.atom([x]).pos(), has_out.atom([x]).neg()]);
        let mut db = p.database();
        for i in 1..=3u64 {
            db.insert(node, [i]);
        }
        db.insert(edge, [1, 2]);
        db.insert(edge, [2, 3]);
        let out = p.eval(db).unwrap();
        assert_eq!(out.rows(sink), &[vec![3]]);
    }

    #[test]
    fn repeated_variable_in_atom_filters() {
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let selfloop = p.relation("selfloop", 1);
        let x = Term::var(0);
        p.rule(selfloop.atom([x]), [e.atom([x, x]).pos()]);
        let mut db = p.database();
        db.insert(e, [1, 1]);
        db.insert(e, [1, 2]);
        let out = p.eval(db).unwrap();
        assert_eq!(out.rows(selfloop), &[vec![1]]);
    }

    #[test]
    fn mutual_recursion() {
        let mut p = Program::new();
        let succ = p.relation("succ", 2);
        let even = p.relation("even", 1);
        let odd = p.relation("odd", 1);
        let (x, y, _) = vars3();
        p.rule(even.atom([Term::cst(0)]), [succ.atom([Term::cst(0), Term::var(9)]).pos()]);
        p.rule(odd.atom([y]), [succ.atom([x, y]).pos(), even.atom([x]).pos()]);
        p.rule(even.atom([y]), [succ.atom([x, y]).pos(), odd.atom([x]).pos()]);
        let mut db = p.database();
        for i in 0..10u64 {
            db.insert(succ, [i, i + 1]);
        }
        let out = p.eval(db).unwrap();
        assert!(out.contains(even, &[8]));
        assert!(out.contains(odd, &[9]));
        assert!(!out.contains(even, &[9]));
    }

    #[test]
    fn diamond_dependencies_converge() {
        // path through two alternative routes must deduplicate.
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let t = p.relation("t", 2);
        let (x, y, z) = vars3();
        p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
        p.rule(t.atom([x, z]), [t.atom([x, y]).pos(), t.atom([y, z]).pos()]);
        let mut db = p.database();
        db.insert(e, [0, 1]);
        db.insert(e, [0, 2]);
        db.insert(e, [1, 3]);
        db.insert(e, [2, 3]);
        db.insert(e, [3, 4]);
        let out = p.eval(db).unwrap();
        assert!(out.contains(t, &[0, 4]));
        // 0→{1,2,3,4}, 1→{3,4}, 2→{3,4}, 3→{4}
        assert_eq!(out.len(t), 9);
    }

    #[test]
    fn empty_edb_fixpoint_is_empty() {
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let t = p.relation("t", 2);
        let (x, y, z) = vars3();
        p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
        p.rule(t.atom([x, z]), [e.atom([x, y]).pos(), t.atom([y, z]).pos()]);
        let out = p.eval(p.database()).unwrap();
        assert!(out.is_empty(t));
    }

    #[test]
    fn large_chain_is_fast_enough() {
        // A smoke test that semi-naive + indices keep the quadratic closure
        // tractable (500 nodes → 124 750 path tuples).
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let t = p.relation("t", 2);
        let (x, y, z) = vars3();
        p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
        p.rule(t.atom([x, z]), [e.atom([x, y]).pos(), t.atom([y, z]).pos()]);
        let mut db = p.database();
        for i in 0..500u64 {
            db.insert(e, [i, i + 1]);
        }
        let out = p.eval(db).unwrap();
        assert_eq!(out.len(t), 500 * 501 / 2);
    }
}
