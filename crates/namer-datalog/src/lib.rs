//! A small bottom-up Datalog engine.
//!
//! The Namer paper implements its flow- and context-sensitive Andersen
//! points-to analysis "in Datalog" (§4.1). This crate provides the engine
//! that `namer-analysis` runs on: relations over `u64` constants, Horn rules
//! with stratified negation, and semi-naive fixpoint evaluation with
//! hash-indexed joins.
//!
//! # Examples
//!
//! Transitive closure:
//!
//! ```
//! use namer_datalog::{Program, Term};
//!
//! let mut prog = Program::new();
//! let edge = prog.relation("edge", 2);
//! let path = prog.relation("path", 2);
//! let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
//!
//! prog.rule(path.atom([x, y]), [edge.atom([x, y]).pos()]);
//! prog.rule(
//!     path.atom([x, z]),
//!     [edge.atom([x, y]).pos(), path.atom([y, z]).pos()],
//! );
//!
//! let mut db = prog.database();
//! db.insert(edge, [1, 2]);
//! db.insert(edge, [2, 3]);
//! let out = prog.eval(db)?;
//! assert!(out.contains(path, &[1, 3]));
//! # Ok::<(), namer_datalog::StratifyError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod eval;
mod program;
mod stratify;

pub use database::Database;
pub use program::{Atom, Literal, Program, RelId, Rule, Term};
pub use stratify::StratifyError;
