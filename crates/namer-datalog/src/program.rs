//! Programs: relations, terms, atoms, and rules.

use crate::database::Database;
use crate::eval;
use crate::stratify::{self, StratifyError};
use std::fmt;

/// Handle to a declared relation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub(crate) u32);

impl RelId {
    /// Builds an atom of this relation.
    ///
    /// # Panics
    ///
    /// [`Program::rule`] panics later if the term count does not match the
    /// declared arity.
    pub fn atom(self, terms: impl IntoIterator<Item = Term>) -> Atom {
        Atom {
            relation: self,
            terms: terms.into_iter().collect(),
        }
    }

    /// The dense index of this relation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A rule variable, identified by a small integer.
    Var(u32),
    /// A constant value.
    Const(u64),
}

impl Term {
    /// Shorthand for [`Term::Var`].
    pub fn var(v: u32) -> Term {
        Term::Var(v)
    }

    /// Shorthand for [`Term::Const`].
    pub fn cst(c: u64) -> Term {
        Term::Const(c)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "V{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relation applied to terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// The relation.
    pub relation: RelId,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Wraps the atom as a positive body literal.
    pub fn pos(self) -> Literal {
        Literal {
            atom: self,
            negated: false,
        }
    }

    /// Wraps the atom as a negated body literal.
    ///
    /// Negation is *stratified*: the negated relation must be fully computed
    /// in an earlier stratum, or [`Program::eval`] fails.
    pub fn neg(self) -> Literal {
        Literal {
            atom: self,
            negated: true,
        }
    }
}

/// A body literal: an atom, possibly negated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// `true` for `!atom`.
    pub negated: bool,
}

/// A Horn rule `head :- body`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// Body literals, evaluated left to right.
    pub body: Vec<Literal>,
}

pub(crate) struct RelDecl {
    pub name: String,
    pub arity: usize,
}

/// A Datalog program: declared relations plus rules.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Default)]
pub struct Program {
    pub(crate) relations: Vec<RelDecl>,
    pub(crate) rules: Vec<Rule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Declares a relation with the given name and arity.
    pub fn relation(&mut self, name: &str, arity: usize) -> RelId {
        let id = RelId(u32::try_from(self.relations.len()).expect("too many relations"));
        self.relations.push(RelDecl {
            name: name.to_owned(),
            arity,
        });
        id
    }

    /// Number of declared relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The declared arity of `rel`.
    pub fn arity(&self, rel: RelId) -> usize {
        self.relations[rel.index()].arity
    }

    /// The declared name of `rel`.
    pub fn name(&self, rel: RelId) -> &str {
        &self.relations[rel.index()].name
    }

    /// Adds a rule `head :- body`.
    ///
    /// # Panics
    ///
    /// Panics if any atom's term count does not match its relation's declared
    /// arity, or if a head variable does not occur in a positive body literal
    /// (unsafe rule), or if a negated literal contains a variable that no
    /// positive literal binds.
    pub fn rule(&mut self, head: Atom, body: impl IntoIterator<Item = Literal>) {
        let body: Vec<Literal> = body.into_iter().collect();
        self.check_arity(&head);
        for lit in &body {
            self.check_arity(&lit.atom);
        }
        let bound: Vec<u32> = body
            .iter()
            .filter(|l| !l.negated)
            .flat_map(|l| l.atom.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        for t in &head.terms {
            if let Term::Var(v) = t {
                assert!(
                    bound.contains(v),
                    "unsafe rule: head variable V{v} not bound by a positive body literal"
                );
            }
        }
        for lit in body.iter().filter(|l| l.negated) {
            for t in &lit.atom.terms {
                if let Term::Var(v) = t {
                    assert!(
                        bound.contains(v),
                        "unsafe rule: variable V{v} in negated literal not bound positively"
                    );
                }
            }
        }
        self.rules.push(Rule { head, body });
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Creates an empty database shaped for this program's relations.
    pub fn database(&self) -> Database {
        Database::new(self.relations.len())
    }

    /// Runs the program to fixpoint over `db` and returns the saturated
    /// database.
    ///
    /// # Errors
    ///
    /// Returns [`StratifyError`] if negation is used cyclically.
    pub fn eval(&self, db: Database) -> Result<Database, StratifyError> {
        let strata = stratify::stratify(self)?;
        Ok(eval::run(self, db, &strata))
    }

    fn check_arity(&self, atom: &Atom) {
        let decl = &self.relations[atom.relation.index()];
        assert_eq!(
            atom.terms.len(),
            decl.arity,
            "relation {} has arity {}, atom has {} terms",
            decl.name,
            decl.arity,
            atom.terms.len()
        );
    }
}

impl Program {
    /// Renders one rule in classic Datalog syntax
    /// (`path(V0, V2) :- edge(V0, V1), path(V1, V2).`).
    pub fn rule_to_string(&self, rule: &Rule) -> String {
        let atom = |a: &Atom| {
            let terms: Vec<String> = a.terms.iter().map(|t| t.to_string()).collect();
            format!("{}({})", self.name(a.relation), terms.join(", "))
        };
        let body: Vec<String> = rule
            .body
            .iter()
            .map(|l| {
                if l.negated {
                    format!("!{}", atom(&l.atom))
                } else {
                    atom(&l.atom)
                }
            })
            .collect();
        if body.is_empty() {
            format!("{}.", atom(&rule.head))
        } else {
            format!("{} :- {}.", atom(&rule.head), body.join(", "))
        }
    }

    /// Renders the whole program, one rule per line.
    pub fn to_source(&self) -> String {
        self.rules
            .iter()
            .map(|r| self.rule_to_string(r))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("relations", &self.relations.len())
            .field("rules", &self.rules.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_mismatch_panics() {
        let mut p = Program::new();
        let r = p.relation("r", 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.rule(r.atom([Term::var(0)]), []);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn unsafe_head_variable_panics() {
        let mut p = Program::new();
        let r = p.relation("r", 1);
        let s = p.relation("s", 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.rule(r.atom([Term::var(7)]), [s.atom([Term::var(0)]).pos()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn unsafe_negated_variable_panics() {
        let mut p = Program::new();
        let r = p.relation("r", 1);
        let s = p.relation("s", 1);
        let t = p.relation("t", 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.rule(
                r.atom([Term::var(0)]),
                [s.atom([Term::var(0)]).pos(), t.atom([Term::var(1)]).neg()],
            );
        }));
        assert!(result.is_err());
    }

    #[test]
    fn rules_render_in_datalog_syntax() {
        let mut p = Program::new();
        let e = p.relation("edge", 2);
        let t = p.relation("path", 2);
        let n = p.relation("noedge", 2);
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
        p.rule(
            t.atom([x, z]),
            [e.atom([x, y]).pos(), t.atom([y, z]).pos()],
        );
        p.rule(
            n.atom([x, y]),
            [t.atom([x, y]).pos(), e.atom([x, y]).neg()],
        );
        let src = p.to_source();
        assert!(src.contains("path(V0, V1) :- edge(V0, V1)."), "{src}");
        assert!(src.contains("path(V0, V2) :- edge(V0, V1), path(V1, V2)."), "{src}");
        assert!(src.contains("noedge(V0, V1) :- path(V0, V1), !edge(V0, V1)."), "{src}");
    }

    #[test]
    fn constant_fact_renders_without_body() {
        let mut p = Program::new();
        let e = p.relation("edge", 2);
        p.rule(e.atom([Term::cst(1), Term::cst(2)]), []);
        assert!(p.to_source().contains("edge(1, 2)."));
    }

    #[test]
    fn metadata_accessors() {
        let mut p = Program::new();
        let r = p.relation("edge", 2);
        assert_eq!(p.name(r), "edge");
        assert_eq!(p.arity(r), 2);
        assert_eq!(p.relation_count(), 1);
    }
}
