//! Stratification of programs with negation.

use crate::program::Program;
use std::fmt;

/// Error returned when a program uses negation through recursion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StratifyError {
    /// Name of a relation on the offending cycle.
    pub relation: String,
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program is not stratifiable: relation {} depends negatively on itself",
            self.relation
        )
    }
}

impl std::error::Error for StratifyError {}

/// Assigns each relation a stratum such that positive dependencies stay
/// within the same or an earlier stratum and negative dependencies point
/// strictly to earlier strata. Returns, per stratum, the indices of the rules
/// whose head lives in it.
///
/// Uses the classic iterative relabelling algorithm: start everything at
/// stratum 0 and raise head strata until stable; more than `R` raises of one
/// relation (where `R` is the relation count) means a negative cycle.
pub fn stratify(prog: &Program) -> Result<Vec<Vec<usize>>, StratifyError> {
    let n = prog.relation_count();
    let mut stratum = vec![0usize; n];
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &prog.rules {
            let head = rule.head.relation.index();
            for lit in &rule.body {
                let dep = lit.atom.relation.index();
                let required = if lit.negated {
                    stratum[dep] + 1
                } else {
                    stratum[dep]
                };
                if stratum[head] < required {
                    stratum[head] = required;
                    changed = true;
                    if stratum[head] > n {
                        return Err(StratifyError {
                            relation: prog.name(rule.head.relation).to_owned(),
                        });
                    }
                }
            }
        }
    }
    let max = stratum.iter().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max + 1];
    for (i, rule) in prog.rules.iter().enumerate() {
        strata[stratum[rule.head.relation.index()]].push(i);
    }
    Ok(strata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, Term};

    #[test]
    fn positive_recursion_is_one_stratum() {
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let t = p.relation("t", 2);
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
        p.rule(t.atom([x, z]), [e.atom([x, y]).pos(), t.atom([y, z]).pos()]);
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0], vec![0, 1]);
    }

    #[test]
    fn negation_forces_later_stratum() {
        let mut p = Program::new();
        let base = p.relation("base", 1);
        let bad = p.relation("bad", 1);
        let good = p.relation("good", 1);
        let x = Term::var(0);
        p.rule(bad.atom([x]), [base.atom([x]).pos()]);
        p.rule(good.atom([x]), [base.atom([x]).pos(), bad.atom([x]).neg()]);
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0], vec![0]);
        assert_eq!(strata[1], vec![1]);
    }

    #[test]
    fn negative_cycle_is_rejected() {
        let mut p = Program::new();
        let a = p.relation("a", 1);
        let b = p.relation("b", 1);
        let base = p.relation("base", 1);
        let x = Term::var(0);
        p.rule(a.atom([x]), [base.atom([x]).pos(), b.atom([x]).neg()]);
        p.rule(b.atom([x]), [base.atom([x]).pos(), a.atom([x]).neg()]);
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn empty_program_is_trivially_stratified() {
        let p = Program::new();
        assert_eq!(stratify(&p).unwrap().len(), 1);
    }
}
