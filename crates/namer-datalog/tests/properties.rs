//! Property-based tests: the Datalog engine against reference
//! implementations.

use namer_datalog::{Program, Term};
use proptest::prelude::*;
use std::collections::HashSet;

/// Reference transitive closure by iterated squaring.
fn reference_closure(edges: &[(u64, u64)]) -> HashSet<(u64, u64)> {
    let mut closure: HashSet<(u64, u64)> = edges.iter().copied().collect();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &closure {
            for &(c, d) in &closure {
                if b == c && !closure.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            break;
        }
        closure.extend(added);
    }
    closure
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_matches_reference(edges in proptest::collection::vec((0u64..12, 0u64..12), 0..30)) {
        let mut p = Program::new();
        let e = p.relation("e", 2);
        let t = p.relation("t", 2);
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        p.rule(t.atom([x, y]), [e.atom([x, y]).pos()]);
        p.rule(t.atom([x, z]), [e.atom([x, y]).pos(), t.atom([y, z]).pos()]);
        let mut db = p.database();
        for &(a, b) in &edges {
            db.insert(e, [a, b]);
        }
        let out = p.eval(db).expect("stratified");
        let expected = reference_closure(&edges);
        prop_assert_eq!(out.len(t), expected.len());
        for &(a, b) in &expected {
            prop_assert!(out.contains(t, &[a, b]));
        }
    }

    #[test]
    fn join_matches_nested_loops(
        r_rows in proptest::collection::vec((0u64..8, 0u64..8), 0..20),
        s_rows in proptest::collection::vec((0u64..8, 0u64..8), 0..20),
    ) {
        let mut p = Program::new();
        let r = p.relation("r", 2);
        let s = p.relation("s", 2);
        let j = p.relation("j", 2);
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        p.rule(j.atom([x, z]), [r.atom([x, y]).pos(), s.atom([y, z]).pos()]);
        let mut db = p.database();
        for &(a, b) in &r_rows {
            db.insert(r, [a, b]);
        }
        for &(a, b) in &s_rows {
            db.insert(s, [a, b]);
        }
        let out = p.eval(db).expect("stratified");
        let mut expected = HashSet::new();
        for &(a, b) in &r_rows {
            for &(c, d) in &s_rows {
                if b == c {
                    expected.insert((a, d));
                }
            }
        }
        prop_assert_eq!(out.len(j), expected.len());
        for (a, d) in expected {
            prop_assert!(out.contains(j, &[a, d]));
        }
    }

    #[test]
    fn negation_computes_set_difference(
        base in proptest::collection::hash_set(0u64..20, 0..15),
        bad in proptest::collection::hash_set(0u64..20, 0..15),
    ) {
        let mut p = Program::new();
        let b = p.relation("base", 1);
        let x_rel = p.relation("bad", 1);
        let good = p.relation("good", 1);
        let v = Term::var(0);
        p.rule(good.atom([v]), [b.atom([v]).pos(), x_rel.atom([v]).neg()]);
        let mut db = p.database();
        for &i in &base {
            db.insert(b, [i]);
        }
        for &i in &bad {
            db.insert(x_rel, [i]);
        }
        let out = p.eval(db).expect("stratified");
        let expected: HashSet<u64> = base.difference(&bad).copied().collect();
        prop_assert_eq!(out.len(good), expected.len());
        for i in expected {
            prop_assert!(out.contains(good, &[i]));
        }
    }
}
