//! Binary-classification metrics and cross-validation, matching the
//! evaluation protocol of §5.1–§5.2 (repeated 80/20 splits, model selection
//! across SVM / LogReg / LDA).

use crate::linear::{ModelKind, TrainConfig};
use crate::matrix::Matrix;
use crate::pipeline::{Pipeline, PipelineConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Accuracy / precision / recall / F1 for a binary classifier.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// TP / (TP + FP); `0` when nothing was predicted positive.
    pub precision: f64,
    /// TP / (TP + FN); `0` when there are no positives.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Metrics {
    /// Computes metrics from predictions and gold labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn compute(predicted: &[bool], gold: &[bool]) -> Metrics {
        assert_eq!(predicted.len(), gold.len(), "length mismatch");
        assert!(!gold.is_empty(), "no samples");
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut tn = 0.0;
        let mut fne = 0.0;
        for (&p, &g) in predicted.iter().zip(gold) {
            match (p, g) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, false) => tn += 1.0,
                (false, true) => fne += 1.0,
            }
        }
        let accuracy = (tp + tn) / gold.len() as f64;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fne > 0.0 { tp / (tp + fne) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Metrics {
            accuracy,
            precision,
            recall,
            f1,
        }
    }

    /// Element-wise mean of several metric sets.
    pub fn mean(all: &[Metrics]) -> Metrics {
        let n = all.len().max(1) as f64;
        Metrics {
            accuracy: all.iter().map(|m| m.accuracy).sum::<f64>() / n,
            precision: all.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: all.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: all.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }
}

/// Repeated random-split validation: `repeats` × (80 % train / 20 % test),
/// the protocol of §5.2 ("we randomly took 80 % of labeled samples for
/// training … repeated this 30 times").
pub fn repeated_split_validation(
    kind: ModelKind,
    x: &Matrix,
    y: &[bool],
    repeats: usize,
    train_fraction: f64,
    pipeline_config: &PipelineConfig,
    seed: u64,
) -> Metrics {
    let n = x.rows();
    let n_train = ((n as f64) * train_fraction).round() as usize;
    let n_train = n_train.clamp(1, n.saturating_sub(1).max(1));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut all = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let (train_idx, test_idx) = idx.split_at(n_train);
        let metrics = eval_split(kind, x, y, train_idx, test_idx, pipeline_config);
        all.push(metrics);
    }
    Metrics::mean(&all)
}

/// Plain k-fold cross-validation.
pub fn k_fold_validation(
    kind: ModelKind,
    x: &Matrix,
    y: &[bool],
    k: usize,
    pipeline_config: &PipelineConfig,
    seed: u64,
) -> Metrics {
    let n = x.rows();
    let k = k.clamp(2, n.max(2));
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut all = Vec::with_capacity(k);
    for fold in 0..k {
        let test_idx: Vec<usize> = idx
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, v)| v)
            .collect();
        let train_idx: Vec<usize> = idx
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, v)| v)
            .collect();
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        all.push(eval_split(kind, x, y, &train_idx, &test_idx, pipeline_config));
    }
    Metrics::mean(&all)
}

fn eval_split(
    kind: ModelKind,
    x: &Matrix,
    y: &[bool],
    train_idx: &[usize],
    test_idx: &[usize],
    pipeline_config: &PipelineConfig,
) -> Metrics {
    let train_x = Matrix::from_rows(
        &train_idx
            .iter()
            .map(|&i| x.row(i).to_vec())
            .collect::<Vec<_>>(),
    );
    let train_y: Vec<bool> = train_idx.iter().map(|&i| y[i]).collect();
    let pipeline = Pipeline::train(kind, &train_x, &train_y, pipeline_config);
    let predicted: Vec<bool> = test_idx.iter().map(|&i| pipeline.predict(x.row(i))).collect();
    let gold: Vec<bool> = test_idx.iter().map(|&i| y[i]).collect();
    Metrics::compute(&predicted, &gold)
}

/// Cross-validated model selection over the three candidates of §5.1.
/// Returns `(best kind, its metrics)`, selecting by F1 then accuracy.
pub fn select_model(
    x: &Matrix,
    y: &[bool],
    pipeline_config: &PipelineConfig,
    seed: u64,
) -> (ModelKind, Metrics) {
    let candidates = [ModelKind::SvmLinear, ModelKind::LogReg, ModelKind::Lda];
    let mut best: Option<(ModelKind, Metrics)> = None;
    for kind in candidates {
        let m = k_fold_validation(kind, x, y, 5, pipeline_config, seed);
        let better = match best {
            None => true,
            Some((_, cur)) => {
                m.f1 > cur.f1 + 1e-12 || (m.f1 >= cur.f1 - 1e-12 && m.accuracy > cur.accuracy)
            }
        };
        if better {
            best = Some((kind, m));
        }
    }
    best.expect("at least one candidate")
}

/// Trains the final model on the full labeled set with the given kind.
pub fn train_final(
    kind: ModelKind,
    x: &Matrix,
    y: &[bool],
    pipeline_config: &PipelineConfig,
) -> Pipeline {
    Pipeline::train(kind, x, y, pipeline_config)
}

/// Re-exported for convenience in downstream crates.
pub use crate::linear::TrainConfig as LinearTrainConfig;

#[allow(unused)]
fn _assert_train_config_public(c: TrainConfig) -> TrainConfig {
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let c = if pos { 1.5 } else { -1.5 };
            rows.push(vec![
                c + rng.gen_range(-1.0..1.0),
                c + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            labels.push(pos);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn metrics_on_perfect_predictions() {
        let m = Metrics::compute(&[true, false, true], &[true, false, true]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn metrics_on_all_negative_predictions() {
        let m = Metrics::compute(&[false, false], &[true, false]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn metrics_mixed() {
        // TP=1, FP=1, FN=1, TN=1.
        let m = Metrics::compute(&[true, true, false, false], &[true, false, true, false]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn repeated_split_scores_high_on_separable_data() {
        let (x, y) = blobs(120, 11);
        let m = repeated_split_validation(
            ModelKind::SvmLinear,
            &x,
            &y,
            10,
            0.8,
            &PipelineConfig::default(),
            1,
        );
        assert!(m.accuracy > 0.85, "{m:?}");
    }

    #[test]
    fn k_fold_scores_high_on_separable_data() {
        let (x, y) = blobs(100, 12);
        let m = k_fold_validation(ModelKind::Lda, &x, &y, 5, &PipelineConfig::default(), 2);
        assert!(m.accuracy > 0.85, "{m:?}");
    }

    #[test]
    fn select_model_returns_a_reasonable_candidate() {
        let (x, y) = blobs(100, 13);
        let (kind, metrics) = select_model(&x, &y, &PipelineConfig::default(), 3);
        assert!(metrics.f1 > 0.8, "{kind} {metrics:?}");
    }

    #[test]
    fn validation_is_deterministic() {
        let (x, y) = blobs(80, 14);
        let a = k_fold_validation(ModelKind::LogReg, &x, &y, 4, &PipelineConfig::default(), 5);
        let b = k_fold_validation(ModelKind::LogReg, &x, &y, 4, &PipelineConfig::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn metrics_reject_mismatched_lengths() {
        let _ = Metrics::compute(&[true], &[true, false]);
    }
}
