//! Small-supervision classifier stack for the Namer reproduction.
//!
//! Implements from scratch everything §4.2 / §5.1 of the paper needs:
//!
//! * [`matrix`] — dense matrices, covariance, Jacobi eigendecomposition,
//!   Gauss–Jordan inversion;
//! * [`preprocess`] — feature standardisation and PCA;
//! * [`linear`] — linear-kernel SVM (Pegasos), logistic regression, LDA;
//! * [`pipeline`] — standardise → PCA → linear model, with Table 9-style
//!   interpretable feature weights;
//! * [`cv`] — metrics, k-fold and repeated 80/20 validation, and
//!   cross-validated model selection.
//!
//! # Examples
//!
//! ```
//! use namer_ml::{Matrix, ModelKind, Pipeline, PipelineConfig};
//!
//! let x = Matrix::from_rows(&[
//!     vec![2.0, 2.1], vec![1.8, 2.2], vec![-2.0, -1.9], vec![-2.2, -2.0],
//! ]);
//! let y = [true, true, false, false];
//! let p = Pipeline::train(ModelKind::SvmLinear, &x, &y, &PipelineConfig::default());
//! assert!(p.predict(&[2.0, 2.0]));
//! assert!(!p.predict(&[-2.0, -2.0]));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cv;
pub mod linear;
pub mod matrix;
pub mod pipeline;
pub mod preprocess;

pub use cv::{k_fold_validation, repeated_split_validation, select_model, Metrics};
pub use linear::{LinearModel, ModelKind, TrainConfig};
pub use matrix::Matrix;
pub use pipeline::{Pipeline, PipelineConfig};
pub use preprocess::{Pca, Standardizer};
