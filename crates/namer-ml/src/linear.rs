//! Linear binary classifiers: linear-kernel SVM, logistic regression, and
//! linear discriminant analysis — the three model candidates of §5.1.

use crate::matrix::Matrix;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which linear model to train.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ModelKind {
    /// Support vector machine with the linear kernel (hinge loss + L2),
    /// trained with the Pegasos stochastic subgradient method.
    SvmLinear,
    /// Logistic regression trained by full-batch gradient descent.
    LogReg,
    /// Two-class linear discriminant analysis (closed form).
    Lda,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelKind::SvmLinear => "svm-linear",
            ModelKind::LogReg => "logreg",
            ModelKind::Lda => "lda",
        })
    }
}

/// A trained linear decision function `sign(w·x + b)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// Which trainer produced the model.
    pub kind: ModelKind,
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// L2 regularisation strength (SVM λ; LogReg weight decay).
    pub lambda: f64,
    /// Iterations (SVM steps; LogReg epochs).
    pub iterations: usize,
    /// LogReg learning rate.
    pub learning_rate: f64,
    /// Deterministic RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            lambda: 1e-2,
            iterations: 4000,
            learning_rate: 0.1,
            seed: 7,
        }
    }
}

impl LinearModel {
    /// Trains a model of `kind` on `(x, y)` with `y[i] ∈ {false, true}`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `x.rows() != y.len()`.
    pub fn train(kind: ModelKind, x: &Matrix, y: &[bool], config: &TrainConfig) -> LinearModel {
        assert!(x.rows() > 0, "empty training set");
        assert_eq!(x.rows(), y.len(), "row/label count mismatch");
        match kind {
            ModelKind::SvmLinear => train_svm(x, y, config),
            ModelKind::LogReg => train_logreg(x, y, config),
            ModelKind::Lda => train_lda(x, y),
        }
    }

    /// The decision value `w·x + b`.
    pub fn decision(&self, row: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(row)
            .map(|(w, v)| w * v)
            .sum::<f64>()
            + self.bias
    }

    /// The predicted class.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) > 0.0
    }
}

fn train_svm(x: &Matrix, y: &[bool], config: &TrainConfig) -> LinearModel {
    let d = x.cols();
    let n = x.rows();
    let mut w = vec![0.0; d];
    let mut b = 0.0;
    // Suffix averaging stabilises the stochastic iterates (averaged Pegasos).
    let mut w_avg = vec![0.0; d];
    let mut b_avg = 0.0;
    let mut avg_count = 0u64;
    let avg_start = config.iterations / 2;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let lambda = config.lambda;
    let mut t = 0usize;
    while t < config.iterations {
        order.shuffle(&mut rng);
        for &i in &order {
            t += 1;
            let eta = 1.0 / (lambda * (t as f64 + 1.0));
            let yi = if y[i] { 1.0 } else { -1.0 };
            let margin = yi * (dot(&w, x.row(i)) + b);
            for wj in w.iter_mut() {
                *wj *= 1.0 - eta * lambda;
            }
            if margin < 1.0 {
                for (wj, &xj) in w.iter_mut().zip(x.row(i)) {
                    *wj += eta * yi * xj;
                }
                b += eta * yi * 0.1;
            }
            if t >= avg_start {
                for (a, &wj) in w_avg.iter_mut().zip(&w) {
                    *a += wj;
                }
                b_avg += b;
                avg_count += 1;
            }
            if t >= config.iterations {
                break;
            }
        }
    }
    let c = (avg_count.max(1)) as f64;
    LinearModel {
        weights: w_avg.into_iter().map(|a| a / c).collect(),
        bias: b_avg / c,
        kind: ModelKind::SvmLinear,
    }
}

fn train_logreg(x: &Matrix, y: &[bool], config: &TrainConfig) -> LinearModel {
    let d = x.cols();
    let n = x.rows();
    let mut w = vec![0.0; d];
    let mut b = 0.0;
    for _ in 0..config.iterations {
        let mut gw = vec![0.0; d];
        let mut gb = 0.0;
        for i in 0..n {
            let z = dot(&w, x.row(i)) + b;
            let p = 1.0 / (1.0 + (-z).exp());
            let err = p - if y[i] { 1.0 } else { 0.0 };
            for (g, &xj) in gw.iter_mut().zip(x.row(i)) {
                *g += err * xj;
            }
            gb += err;
        }
        let scale = config.learning_rate / n as f64;
        for (wj, g) in w.iter_mut().zip(&gw) {
            *wj -= scale * g + config.learning_rate * config.lambda * *wj;
        }
        b -= scale * gb;
    }
    LinearModel {
        weights: w,
        bias: b,
        kind: ModelKind::LogReg,
    }
}

fn train_lda(x: &Matrix, y: &[bool]) -> LinearModel {
    let d = x.cols();
    let mut mean_pos = vec![0.0; d];
    let mut mean_neg = vec![0.0; d];
    let (mut npos, mut nneg) = (0usize, 0usize);
    for i in 0..x.rows() {
        let target = if y[i] {
            npos += 1;
            &mut mean_pos
        } else {
            nneg += 1;
            &mut mean_neg
        };
        for (m, &v) in target.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    for m in &mut mean_pos {
        *m /= npos.max(1) as f64;
    }
    for m in &mut mean_neg {
        *m /= nneg.max(1) as f64;
    }
    // Pooled within-class scatter, ridge-regularised.
    let mut scatter = Matrix::zeros(d, d);
    for i in 0..x.rows() {
        let mean = if y[i] { &mean_pos } else { &mean_neg };
        for a in 0..d {
            let da = x[(i, a)] - mean[a];
            for b in 0..d {
                scatter[(a, b)] += da * (x[(i, b)] - mean[b]);
            }
        }
    }
    let denom = (x.rows().saturating_sub(2)).max(1) as f64;
    for a in 0..d {
        for b in 0..d {
            scatter[(a, b)] /= denom;
        }
        scatter[(a, a)] += 1e-6;
    }
    let inv = scatter
        .inverse()
        .expect("ridge-regularised scatter is invertible");
    let diff: Vec<f64> = mean_pos
        .iter()
        .zip(&mean_neg)
        .map(|(p, n)| p - n)
        .collect();
    let w = inv.matvec(&diff);
    // Threshold midway between the projected class means, prior-adjusted.
    let proj_pos = dot(&w, &mean_pos);
    let proj_neg = dot(&w, &mean_neg);
    let prior = ((npos.max(1) as f64) / (nneg.max(1) as f64)).ln();
    let bias = -(proj_pos + proj_neg) / 2.0 + prior;
    LinearModel {
        weights: w,
        bias,
        kind: ModelKind::Lda,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Linearly separable blobs around (±2, ±2).
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let c = if pos { 2.0 } else { -2.0 };
            rows.push(vec![
                c + rng.gen_range(-0.8..0.8),
                c + rng.gen_range(-0.8..0.8),
            ]);
            labels.push(pos);
        }
        (Matrix::from_rows(&rows), labels)
    }

    fn accuracy(model: &LinearModel, x: &Matrix, y: &[bool]) -> f64 {
        let correct = (0..x.rows())
            .filter(|&i| model.predict(x.row(i)) == y[i])
            .count();
        correct as f64 / x.rows() as f64
    }

    #[test]
    fn svm_separates_blobs() {
        let (x, y) = blobs(200, 1);
        let m = LinearModel::train(ModelKind::SvmLinear, &x, &y, &TrainConfig::default());
        assert!(accuracy(&m, &x, &y) > 0.95);
    }

    #[test]
    fn logreg_separates_blobs() {
        let (x, y) = blobs(200, 2);
        let m = LinearModel::train(ModelKind::LogReg, &x, &y, &TrainConfig::default());
        assert!(accuracy(&m, &x, &y) > 0.95);
    }

    #[test]
    fn lda_separates_blobs() {
        let (x, y) = blobs(200, 3);
        let m = LinearModel::train(ModelKind::Lda, &x, &y, &TrainConfig::default());
        assert!(accuracy(&m, &x, &y) > 0.95);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(100, 4);
        let a = LinearModel::train(ModelKind::SvmLinear, &x, &y, &TrainConfig::default());
        let b = LinearModel::train(ModelKind::SvmLinear, &x, &y, &TrainConfig::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn svm_weights_point_towards_positive_class() {
        let (x, y) = blobs(200, 5);
        let m = LinearModel::train(ModelKind::SvmLinear, &x, &y, &TrainConfig::default());
        assert!(m.weights[0] > 0.0 && m.weights[1] > 0.0, "{:?}", m.weights);
    }

    #[test]
    fn noisy_labels_still_learnable() {
        let (x, mut y) = blobs(200, 6);
        let mut rng = SmallRng::seed_from_u64(9);
        for yi in y.iter_mut() {
            if rng.gen_bool(0.05) {
                *yi = !*yi;
            }
        }
        let m = LinearModel::train(ModelKind::SvmLinear, &x, &y, &TrainConfig::default());
        assert!(accuracy(&m, &x, &y) > 0.85);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_panics() {
        let x = Matrix::zeros(0, 2);
        let _ = LinearModel::train(ModelKind::Lda, &x, &[], &TrainConfig::default());
    }
}
