//! Dense row-major matrices and the linear algebra the classifier stack
//! needs: products, covariance, symmetric eigendecomposition (cyclic
//! Jacobi), and Gauss–Jordan inversion.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Sample covariance of the rows (features in columns), with `ridge`
    /// added on the diagonal for conditioning.
    pub fn covariance(&self, ridge: f64) -> Matrix {
        let n = self.rows.max(1) as f64;
        let d = self.cols;
        let mut mean = vec![0.0; d];
        for i in 0..self.rows {
            for (j, m) in mean.iter_mut().enumerate() {
                *m += self[(i, j)];
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut cov = Matrix::zeros(d, d);
        for i in 0..self.rows {
            for a in 0..d {
                let da = self[(i, a)] - mean[a];
                for b in a..d {
                    cov[(a, b)] += da * (self[(i, b)] - mean[b]);
                }
            }
        }
        let denom = (n - 1.0).max(1.0);
        for a in 0..d {
            for b in a..d {
                let v = cov[(a, b)] / denom;
                cov[(a, b)] = v;
                cov[(b, a)] = v;
            }
        }
        for a in 0..d {
            cov[(a, a)] += ridge;
        }
        cov
    }

    /// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
    ///
    /// Returns `(eigenvalues, eigenvectors)` sorted by decreasing eigenvalue;
    /// eigenvectors are the *columns* of the returned matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(self.rows, self.cols, "matrix must be square");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        for _sweep in 0..100 {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off < 1e-20 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-15 {
                        continue;
                    }
                    let theta = (a[(q, q)] - a[(p, p)]) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| a[(j, j)].partial_cmp(&a[(i, i)]).expect("finite eigenvalues"));
        let values: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for k in 0..n {
                vectors[(k, new_col)] = v[(k, old_col)];
            }
        }
        (values, vectors)
    }

    /// Inverse via Gauss–Jordan elimination with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "matrix must be square");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&i, &j| {
                    a[(i, col)]
                        .abs()
                        .partial_cmp(&a[(j, col)].abs())
                        .expect("finite entries")
                })
                .expect("non-empty range");
            if a[(pivot, col)].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    a.data.swap(pivot * n + j, col * n + j);
                    inv.data.swap(pivot * n + j, col * n + j);
                }
            }
            let d = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= d;
                inv[(col, j)] /= d;
            }
            for i in 0..n {
                if i == col {
                    continue;
                }
                let f = a[(i, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(i, j)] -= f * a[(col, j)];
                    inv[(i, j)] -= f * inv[(col, j)];
                }
            }
        }
        Some(inv)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert!(approx(c[(0, 0)], 19.0) && approx(c[(1, 1)], 50.0));
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn covariance_of_perfectly_correlated_features() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 4.0],
            vec![3.0, 6.0],
        ]);
        let c = m.covariance(0.0);
        assert!(approx(c[(0, 0)], 1.0));
        assert!(approx(c[(0, 1)], 2.0));
        assert!(approx(c[(1, 1)], 4.0));
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (vals, _) = m.symmetric_eigen();
        assert!(approx(vals[0], 3.0) && approx(vals[1], 1.0));
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = m.symmetric_eigen();
        // A = V Λ Vᵀ
        let mut lam = Matrix::zeros(2, 2);
        lam[(0, 0)] = vals[0];
        lam[(1, 1)] = vals[1];
        let rec = vecs.matmul(&lam).matmul(&vecs.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(rec[(i, j)], m[(i, j)]), "{rec}");
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        let m = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.inverse().is_none());
    }
}
