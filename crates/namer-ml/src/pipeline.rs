//! The full classifier pipeline of §5.1: standardisation → PCA → linear
//! model, with interpretable per-feature weights (Table 9).

use crate::linear::{LinearModel, ModelKind, TrainConfig};
use crate::matrix::Matrix;
use crate::preprocess::{Pca, Standardizer};
use serde::{Deserialize, Serialize};

/// Pipeline hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Apply PCA after standardisation (paper: yes).
    pub use_pca: bool,
    /// Variance fraction PCA must retain.
    pub pca_variance: f64,
    /// Linear-model training parameters.
    pub train: TrainConfig,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            use_pca: true,
            pca_variance: 0.99,
            train: TrainConfig::default(),
        }
    }
}

/// A trained standardise → (PCA) → linear-model pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pipeline {
    standardizer: Standardizer,
    pca: Option<Pca>,
    model: LinearModel,
}

impl Pipeline {
    /// Fits the preprocessing on `x` and trains the final model.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or labels mismatch rows.
    pub fn train(kind: ModelKind, x: &Matrix, y: &[bool], config: &PipelineConfig) -> Pipeline {
        let standardizer = Standardizer::fit(x);
        let xs = standardizer.transform(x);
        let (pca, xt) = if config.use_pca {
            let pca = Pca::fit(&xs, config.pca_variance);
            let xt = pca.transform(&xs);
            (Some(pca), xt)
        } else {
            (None, xs)
        };
        let model = LinearModel::train(kind, &xt, y, &config.train);
        Pipeline {
            standardizer,
            pca,
            model,
        }
    }

    /// Decision value for one raw (unpreprocessed) feature row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        let mut r = row.to_vec();
        self.standardizer.transform_row(&mut r);
        match &self.pca {
            Some(p) => self.model.decision(&p.transform_row(&r)),
            None => self.model.decision(&r),
        }
    }

    /// Predicted class for one raw feature row.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) > 0.0
    }

    /// Model weights expressed in *standardised original feature* space —
    /// PCA weights are back-projected so each original feature keeps an
    /// interpretable weight, as the paper reads them in Table 9.
    pub fn feature_weights(&self) -> Vec<f64> {
        match &self.pca {
            Some(p) => p.back_project(&self.model.weights),
            None => self.model.weights.clone(),
        }
    }

    /// The trained model kind.
    pub fn kind(&self) -> ModelKind {
        self.model.kind
    }

    /// Number of raw input features.
    pub fn input_dim(&self) -> usize {
        self.standardizer.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let c = if pos { 2.0 } else { -2.0 };
            // Feature scales differ wildly; standardisation must cope.
            rows.push(vec![
                100.0 * (c + rng.gen_range(-0.5..0.5)),
                0.01 * (c + rng.gen_range(-0.5..0.5)),
            ]);
            labels.push(pos);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn pipeline_classifies_despite_scale_differences() {
        let (x, y) = blobs(200, 21);
        let p = Pipeline::train(ModelKind::SvmLinear, &x, &y, &PipelineConfig::default());
        let correct = (0..x.rows()).filter(|&i| p.predict(x.row(i)) == y[i]).count();
        assert!(correct as f64 / x.rows() as f64 > 0.95);
    }

    #[test]
    fn pipeline_without_pca_also_works() {
        let (x, y) = blobs(200, 22);
        let config = PipelineConfig {
            use_pca: false,
            ..PipelineConfig::default()
        };
        let p = Pipeline::train(ModelKind::LogReg, &x, &y, &config);
        let correct = (0..x.rows()).filter(|&i| p.predict(x.row(i)) == y[i]).count();
        assert!(correct as f64 / x.rows() as f64 > 0.95);
    }

    #[test]
    fn feature_weights_have_input_dimension() {
        let (x, y) = blobs(100, 23);
        let p = Pipeline::train(ModelKind::SvmLinear, &x, &y, &PipelineConfig::default());
        assert_eq!(p.feature_weights().len(), 2);
        assert_eq!(p.input_dim(), 2);
    }

    #[test]
    fn both_informative_features_get_positive_weight() {
        let (x, y) = blobs(300, 24);
        let p = Pipeline::train(ModelKind::Lda, &x, &y, &PipelineConfig::default());
        let w = p.feature_weights();
        assert!(w[0] > 0.0 && w[1] > 0.0, "{w:?}");
    }
}
