//! Feature preprocessing: standardisation and principal component analysis,
//! used as the paper uses them (§5.1: "feature standardization and principal
//! component analysis as a preprocessing step").

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-feature standardisation to zero mean, unit variance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations on `x` (features in columns).
    pub fn fit(x: &Matrix) -> Standardizer {
        let n = x.rows().max(1) as f64;
        let d = x.cols();
        let mut mean = vec![0.0; d];
        for i in 0..x.rows() {
            for (j, m) in mean.iter_mut().enumerate() {
                *m += x[(i, j)];
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for i in 0..x.rows() {
            for (j, v) in var.iter_mut().enumerate() {
                let d = x[(i, j)] - mean[j];
                *v += d * d;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    /// Transforms one feature row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - self.mean[j]) / self.std[j];
        }
    }

    /// Transforms a whole matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                out[(i, j)] = (out[(i, j)] - self.mean[j]) / self.std[j];
            }
        }
        out
    }

    /// Number of features the standardizer was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

/// Principal component analysis by eigendecomposition of the covariance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pca {
    /// Projection matrix: columns are the retained components.
    components: Matrix,
    /// Variance explained per retained component.
    explained: Vec<f64>,
}

impl Pca {
    /// Fits a PCA keeping enough components to explain `variance_target`
    /// (e.g. `0.99`) of the variance, with at least one component.
    pub fn fit(x: &Matrix, variance_target: f64) -> Pca {
        let cov = x.covariance(1e-9);
        let (values, vectors) = cov.symmetric_eigen();
        let total: f64 = values.iter().map(|v| v.max(0.0)).sum();
        let mut keep = 0;
        let mut cum = 0.0;
        for &v in &values {
            keep += 1;
            cum += v.max(0.0);
            if total > 0.0 && cum / total >= variance_target {
                break;
            }
        }
        let keep = keep.max(1);
        let mut components = Matrix::zeros(x.cols(), keep);
        for j in 0..keep {
            for i in 0..x.cols() {
                components[(i, j)] = vectors[(i, j)];
            }
        }
        Pca {
            components,
            explained: values.into_iter().take(keep).collect(),
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Variance explained per retained component, in order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// Projects one row into component space.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        self.components.transpose().matvec(row)
    }

    /// Projects a whole matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.components)
    }

    /// Maps component-space weights back to original-feature weights
    /// (`w_orig = V · w_pca`) so linear-model weights remain interpretable
    /// per original feature (Table 9 of the paper).
    pub fn back_project(&self, weights: &[f64]) -> Vec<f64> {
        self.components.matvec(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_centres_and_scales() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        for j in 0..2 {
            let mean: f64 = (0..3).map(|i| t[(i, j)]).sum::<f64>() / 3.0;
            let var: f64 = (0..3).map(|i| t[(i, j)] * t[(i, j)]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_do_not_divide_by_zero() {
        let x = Matrix::from_rows(&[vec![2.0], vec![2.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        assert!(t[(0, 0)].is_finite());
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the diagonal: one component explains everything.
        let x = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
        ]);
        let pca = Pca::fit(&x, 0.99);
        assert_eq!(pca.n_components(), 1);
        let c = &pca.transform(&x);
        // Projections preserve the ordering along the diagonal.
        assert!(c[(0, 0)] < c[(3, 0)] || c[(0, 0)] > c[(3, 0)]);
    }

    #[test]
    fn pca_keeps_all_components_when_needed() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
            vec![0.0, -1.0],
        ]);
        let pca = Pca::fit(&x, 0.999);
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn back_projection_dimensions() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.1],
            vec![3.0, 6.0, 9.2],
            vec![4.0, 8.1, 12.0],
        ]);
        let pca = Pca::fit(&x, 0.9);
        let w = vec![1.0; pca.n_components()];
        assert_eq!(pca.back_project(&w).len(), 3);
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 1.0],
            vec![5.0, 7.0],
        ]);
        let pca = Pca::fit(&x, 0.999);
        let whole = pca.transform(&x);
        let row = pca.transform_row(x.row(1));
        for j in 0..pca.n_components() {
            assert!((whole[(1, j)] - row[j]).abs() < 1e-9);
        }
    }
}
