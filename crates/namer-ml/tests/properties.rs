//! Property-based tests for the linear-algebra and classifier stack.

use namer_ml::{Matrix, Metrics, ModelKind, Pipeline, PipelineConfig, Standardizer};
use proptest::prelude::*;

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(
        proptest::collection::vec(-5.0f64..5.0, n),
        n,
    )
    .prop_map(|rows| Matrix::from_rows(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inverse_round_trips_when_it_exists(m in small_matrix(3)) {
        if let Some(inv) = m.inverse() {
            let prod = m.matmul(&inv);
            for i in 0..3 {
                for j in 0..3 {
                    let want = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((prod[(i, j)] - want).abs() < 1e-6,
                        "prod[{i},{j}] = {}", prod[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn transpose_is_involutive(rows in proptest::collection::vec(
        proptest::collection::vec(-10.0f64..10.0, 4), 1..6)) {
        let m = Matrix::from_rows(&rows);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(m in small_matrix(3)) {
        // Symmetrise.
        let mt = m.transpose();
        let mut s = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                s[(i, j)] = (m[(i, j)] + mt[(i, j)]) / 2.0;
            }
        }
        let (vals, vecs) = s.symmetric_eigen();
        let mut lam = Matrix::zeros(3, 3);
        for (i, &v) in vals.iter().enumerate() {
            lam[(i, i)] = v;
        }
        let rec = vecs.matmul(&lam).matmul(&vecs.transpose());
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((rec[(i, j)] - s[(i, j)]).abs() < 1e-6);
            }
        }
        // Eigenvalues come sorted descending.
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn standardizer_output_is_centred(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0f64..100.0, 3), 2..20)) {
        let m = Matrix::from_rows(&rows);
        let s = Standardizer::fit(&m);
        let t = s.transform(&m);
        for j in 0..3 {
            let mean: f64 = (0..t.rows()).map(|i| t[(i, j)]).sum::<f64>() / t.rows() as f64;
            prop_assert!(mean.abs() < 1e-6, "column {j} mean {mean}");
        }
    }

    #[test]
    fn metrics_are_bounded(pred in proptest::collection::vec(any::<bool>(), 1..50),
                           gold_seed in any::<u64>()) {
        let gold: Vec<bool> = pred
            .iter()
            .enumerate()
            .map(|(i, _)| (gold_seed >> (i % 64)) & 1 == 1)
            .collect();
        let m = Metrics::compute(&pred, &gold);
        for v in [m.accuracy, m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn separable_blobs_are_learned_by_every_model(shift in 2.0f64..4.0, n in 20usize..40) {
        let rows: Vec<Vec<f64>> = (0..n * 2)
            .map(|i| {
                let c = if i % 2 == 0 { shift } else { -shift };
                // Deterministic jitter.
                let j = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                vec![c + j, c - j]
            })
            .collect();
        let y: Vec<bool> = (0..n * 2).map(|i| i % 2 == 0).collect();
        let x = Matrix::from_rows(&rows);
        for kind in [ModelKind::SvmLinear, ModelKind::LogReg, ModelKind::Lda] {
            let p = Pipeline::train(kind, &x, &y, &PipelineConfig::default());
            let correct = (0..x.rows()).filter(|&i| p.predict(x.row(i)) == y[i]).count();
            prop_assert!(correct as f64 / x.rows() as f64 > 0.9, "{kind} failed");
        }
    }
}
