//! A minimal define-by-run autograd engine over row-major `f32` matrices.
//!
//! Purpose-built for the GGNN / GREAT baselines of §5.6: dense matmul,
//! element-wise nonlinearities, row gather / segment-sum (message passing),
//! row softmax, and cross-entropy. Gradients are checked numerically in the
//! tests.

/// Handle to a tape node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Val(usize);

#[derive(Clone, Debug)]
enum Op {
    Leaf { param: Option<usize> },
    MatMul(Val, Val),
    Add(Val, Val),
    AddRow(Val, Val),
    Mul(Val, Val),
    Sub(Val, Val),
    Scale(Val, f32),
    Sigmoid(Val),
    Tanh(Val),
    Relu(Val),
    RowGather(Val, Vec<usize>),
    SegmentSum(Val, Vec<usize>),
    RowSoftmax(Val),
    Concat(Val, Val),
    MeanPoolRows(Val),
    Transpose(Val),
    MulScalar(Val, Val),
    RowNormalize(Val),
}

struct Node {
    value: Vec<f32>,
    grad: Vec<f32>,
    rows: usize,
    cols: usize,
    op: Op,
}

/// Learnable parameter storage shared across tapes.
#[derive(Clone, Debug, Default)]
pub struct Params {
    data: Vec<Vec<f32>>,
    shapes: Vec<(usize, usize)>,
    grads: Vec<Vec<f32>>,
    /// Adam moments.
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    step: u64,
}

impl Params {
    /// Creates empty storage.
    pub fn new() -> Params {
        Params::default()
    }

    /// Allocates a `(rows × cols)` parameter initialised from `init`.
    pub fn alloc(&mut self, rows: usize, cols: usize, init: impl FnMut() -> f32) -> usize {
        let mut init = init;
        let id = self.data.len();
        self.data
            .push((0..rows * cols).map(|_| init()).collect());
        self.shapes.push((rows, cols));
        self.grads.push(vec![0.0; rows * cols]);
        self.m.push(vec![0.0; rows * cols]);
        self.v.push(vec![0.0; rows * cols]);
        id
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing was allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access to one parameter tensor.
    pub fn get(&self, id: usize) -> &[f32] {
        &self.data[id]
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grads {
            g.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// One Adam step with learning rate `lr`.
    pub fn adam_step(&mut self, lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - B1.powf(t);
        let bias2 = 1.0 - B2.powf(t);
        for p in 0..self.data.len() {
            for i in 0..self.data[p].len() {
                let g = self.grads[p][i];
                self.m[p][i] = B1 * self.m[p][i] + (1.0 - B1) * g;
                self.v[p][i] = B2 * self.v[p][i] + (1.0 - B2) * g * g;
                let mhat = self.m[p][i] / bias1;
                let vhat = self.v[p][i] / bias2;
                self.data[p][i] -= lr * mhat / (vhat.sqrt() + EPS);
            }
        }
    }
}

/// One forward/backward tape.
pub struct Tape {
    nodes: Vec<Node>,
}

impl Default for Tape {
    fn default() -> Tape {
        Tape::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Tape {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, value: Vec<f32>, rows: usize, cols: usize, op: Op) -> Val {
        debug_assert_eq!(value.len(), rows * cols);
        let grad = vec![0.0; value.len()];
        self.nodes.push(Node {
            value,
            grad,
            rows,
            cols,
            op,
        });
        Val(self.nodes.len() - 1)
    }

    /// A constant input.
    pub fn input(&mut self, value: Vec<f32>, rows: usize, cols: usize) -> Val {
        self.push(value, rows, cols, Op::Leaf { param: None })
    }

    /// A view of parameter `id` (gradients flow back into `params`).
    pub fn param(&mut self, params: &Params, id: usize) -> Val {
        let (r, c) = params.shapes[id];
        self.push(params.data[id].clone(), r, c, Op::Leaf { param: Some(id) })
    }

    /// Shape of a node.
    pub fn shape(&self, v: Val) -> (usize, usize) {
        (self.nodes[v.0].rows, self.nodes[v.0].cols)
    }

    /// Value of a node.
    pub fn value(&self, v: Val) -> &[f32] {
        &self.nodes[v.0].value
    }

    /// `a × b`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&mut self, a: Val, b: Val) -> Val {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, br, "matmul dimension mismatch");
        let mut out = vec![0.0; ar * bc];
        {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            for i in 0..ar {
                for k in 0..ac {
                    let x = av[i * ac + k];
                    if x == 0.0 {
                        continue;
                    }
                    for j in 0..bc {
                        out[i * bc + j] += x * bv[k * bc + j];
                    }
                }
            }
        }
        self.push(out, ar, bc, Op::MatMul(a, b))
    }

    /// Element-wise sum (same shape).
    pub fn add(&mut self, a: Val, b: Val) -> Val {
        assert_eq!(self.shape(a), self.shape(b), "add shape mismatch");
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x + y)
            .collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::Add(a, b))
    }

    /// Adds a `1 × c` row vector to every row of `a`.
    pub fn add_row(&mut self, a: Val, row: Val) -> Val {
        let (r, c) = self.shape(a);
        assert_eq!(self.shape(row), (1, c), "add_row shape mismatch");
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..r {
            for j in 0..c {
                v[i * c + j] += self.nodes[row.0].value[j];
            }
        }
        self.push(v, r, c, Op::AddRow(a, row))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Val, b: Val) -> Val {
        assert_eq!(self.shape(a), self.shape(b), "mul shape mismatch");
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x * y)
            .collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::Mul(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Val, b: Val) -> Val {
        assert_eq!(self.shape(a), self.shape(b), "sub shape mismatch");
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x - y)
            .collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::Sub(a, b))
    }

    /// Multiplication by a constant.
    pub fn scale(&mut self, a: Val, k: f32) -> Val {
        let v: Vec<f32> = self.nodes[a.0].value.iter().map(|x| x * k).collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::Scale(a, k))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Val) -> Val {
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .map(|x| 1.0 / (1.0 + (-x).exp()))
            .collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::Sigmoid(a))
    }

    /// Element-wise tanh.
    pub fn tanh(&mut self, a: Val) -> Val {
        let v: Vec<f32> = self.nodes[a.0].value.iter().map(|x| x.tanh()).collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::Tanh(a))
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, a: Val) -> Val {
        let v: Vec<f32> = self.nodes[a.0].value.iter().map(|x| x.max(0.0)).collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::Relu(a))
    }

    /// Gathers rows: `out[i] = a[idx[i]]`.
    pub fn row_gather(&mut self, a: Val, idx: &[usize]) -> Val {
        let (_, c) = self.shape(a);
        let mut v = Vec::with_capacity(idx.len() * c);
        for &i in idx {
            v.extend_from_slice(&self.nodes[a.0].value[i * c..(i + 1) * c]);
        }
        self.push(v, idx.len(), c, Op::RowGather(a, idx.to_vec()))
    }

    /// Segment sum: `out[seg[i]] += a[i]` over `n_out` output rows.
    pub fn segment_sum(&mut self, a: Val, seg: &[usize], n_out: usize) -> Val {
        let (r, c) = self.shape(a);
        assert_eq!(seg.len(), r, "segment index per input row");
        let mut v = vec![0.0; n_out * c];
        for (i, &s) in seg.iter().enumerate() {
            for j in 0..c {
                v[s * c + j] += self.nodes[a.0].value[i * c + j];
            }
        }
        self.push(v, n_out, c, Op::SegmentSum(a, seg.to_vec()))
    }

    /// Row-wise softmax.
    pub fn row_softmax(&mut self, a: Val) -> Val {
        let (r, c) = self.shape(a);
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..r {
            let row = &mut v[i * c..(i + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(v, r, c, Op::RowSoftmax(a))
    }

    /// Horizontal concatenation (same row count).
    pub fn concat(&mut self, a: Val, b: Val) -> Val {
        let (ra, ca) = self.shape(a);
        let (rb, cb) = self.shape(b);
        assert_eq!(ra, rb, "concat row mismatch");
        let mut v = Vec::with_capacity(ra * (ca + cb));
        for i in 0..ra {
            v.extend_from_slice(&self.nodes[a.0].value[i * ca..(i + 1) * ca]);
            v.extend_from_slice(&self.nodes[b.0].value[i * cb..(i + 1) * cb]);
        }
        self.push(v, ra, ca + cb, Op::Concat(a, b))
    }

    /// Mean over rows → `1 × c`.
    pub fn mean_pool_rows(&mut self, a: Val) -> Val {
        let (r, c) = self.shape(a);
        let mut v = vec![0.0; c];
        for i in 0..r {
            for j in 0..c {
                v[j] += self.nodes[a.0].value[i * c + j];
            }
        }
        for x in &mut v {
            *x /= r.max(1) as f32;
        }
        self.push(v, 1, c, Op::MeanPoolRows(a))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Val) -> Val {
        let (r, c) = self.shape(a);
        let mut v = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                v[j * r + i] = self.nodes[a.0].value[i * c + j];
            }
        }
        self.push(v, c, r, Op::Transpose(a))
    }

    /// Multiplies every element of `a` by the scalar node `s` (shape 1 × 1),
    /// with gradients flowing into both.
    pub fn mul_scalar(&mut self, a: Val, s: Val) -> Val {
        assert_eq!(self.shape(s), (1, 1), "scalar must be 1×1");
        let k = self.nodes[s.0].value[0];
        let v: Vec<f32> = self.nodes[a.0].value.iter().map(|x| x * k).collect();
        let (r, c) = self.shape(a);
        self.push(v, r, c, Op::MulScalar(a, s))
    }

    /// Normalises every row to unit L2 norm (a parameter-free LayerNorm
    /// stand-in that keeps transformer residual streams bounded).
    pub fn row_normalize(&mut self, a: Val) -> Val {
        let (r, c) = self.shape(a);
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..r {
            let row = &mut v[i * c..(i + 1) * c];
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
        self.push(v, r, c, Op::RowNormalize(a))
    }

    /// Cross-entropy of a softmax distribution row (as produced by
    /// [`Tape::row_softmax`]) against `target`; seeds the backward pass.
    ///
    /// Returns the loss value. Must be called before [`Tape::backward`];
    /// the softmax-CE gradient `p - 1{target}` is planted directly.
    pub fn nll_of_softmax_row(&mut self, softmax: Val, row: usize, target: usize) -> f32 {
        let (_, c) = self.shape(softmax);
        let p = self.nodes[softmax.0].value[row * c + target].max(1e-9);
        // ∂L/∂softmax_in is handled analytically in backward via RowSoftmax;
        // here we seed ∂L/∂softmax_out = -1/p at the target position.
        self.nodes[softmax.0].grad[row * c + target] += -1.0 / p;
        -p.ln()
    }

    /// Binary cross-entropy on a single sigmoid output; seeds backward.
    pub fn bce_of_sigmoid(&mut self, sig: Val, index: usize, target: bool) -> f32 {
        let p = self.nodes[sig.0].value[index].clamp(1e-6, 1.0 - 1e-6);
        let t = if target { 1.0 } else { 0.0 };
        self.nodes[sig.0].grad[index] += (p - t) / (p * (1.0 - p));
        -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
    }

    /// Seeds a raw gradient on a node (advanced use).
    pub fn seed_grad(&mut self, v: Val, grad: &[f32]) {
        for (g, &x) in self.nodes[v.0].grad.iter_mut().zip(grad) {
            *g += x;
        }
    }

    /// Reverse pass: propagates all seeded gradients back to the leaves and
    /// accumulates parameter gradients into `params`.
    pub fn backward(&mut self, params: &mut Params) {
        for i in (0..self.nodes.len()).rev() {
            let op = self.nodes[i].op.clone();
            let grad = self.nodes[i].grad.clone();
            if grad.iter().all(|&g| g == 0.0) {
                continue;
            }
            let (rows, cols) = (self.nodes[i].rows, self.nodes[i].cols);
            match op {
                Op::Leaf { param } => {
                    if let Some(pid) = param {
                        for (g, &x) in params.grads[pid].iter_mut().zip(&grad) {
                            *g += x;
                        }
                    }
                }
                Op::MatMul(a, b) => {
                    let (ar, ac) = self.shape(a);
                    let (_, bc) = self.shape(b);
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    // dA = dOut × Bᵀ
                    for i2 in 0..ar {
                        for k in 0..ac {
                            let mut s = 0.0;
                            for j in 0..bc {
                                s += grad[i2 * bc + j] * bv[k * bc + j];
                            }
                            self.nodes[a.0].grad[i2 * ac + k] += s;
                        }
                    }
                    // dB = Aᵀ × dOut
                    for k in 0..ac {
                        for j in 0..bc {
                            let mut s = 0.0;
                            for i2 in 0..ar {
                                s += av[i2 * ac + k] * grad[i2 * bc + j];
                            }
                            self.nodes[b.0].grad[k * bc + j] += s;
                        }
                    }
                }
                Op::Add(a, b) => {
                    for (g, &x) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += x;
                    }
                    for (g, &x) in self.nodes[b.0].grad.iter_mut().zip(&grad) {
                        *g += x;
                    }
                }
                Op::AddRow(a, row) => {
                    for (g, &x) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += x;
                    }
                    for i2 in 0..rows {
                        for j in 0..cols {
                            self.nodes[row.0].grad[j] += grad[i2 * cols + j];
                        }
                    }
                }
                Op::Mul(a, b) => {
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    for (k, &g) in grad.iter().enumerate() {
                        self.nodes[a.0].grad[k] += g * bv[k];
                        self.nodes[b.0].grad[k] += g * av[k];
                    }
                }
                Op::Sub(a, b) => {
                    for (g, &x) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += x;
                    }
                    for (g, &x) in self.nodes[b.0].grad.iter_mut().zip(&grad) {
                        *g -= x;
                    }
                }
                Op::Scale(a, k) => {
                    for (g, &x) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += k * x;
                    }
                }
                Op::Sigmoid(a) => {
                    let out = self.nodes[i].value.clone();
                    for (k, &g) in grad.iter().enumerate() {
                        self.nodes[a.0].grad[k] += g * out[k] * (1.0 - out[k]);
                    }
                }
                Op::Tanh(a) => {
                    let out = self.nodes[i].value.clone();
                    for (k, &g) in grad.iter().enumerate() {
                        self.nodes[a.0].grad[k] += g * (1.0 - out[k] * out[k]);
                    }
                }
                Op::Relu(a) => {
                    let inp = self.nodes[a.0].value.clone();
                    for (k, &g) in grad.iter().enumerate() {
                        if inp[k] > 0.0 {
                            self.nodes[a.0].grad[k] += g;
                        }
                    }
                }
                Op::RowGather(a, idx) => {
                    let (_, c) = self.shape(a);
                    for (out_row, &src_row) in idx.iter().enumerate() {
                        for j in 0..c {
                            self.nodes[a.0].grad[src_row * c + j] += grad[out_row * c + j];
                        }
                    }
                }
                Op::SegmentSum(a, seg) => {
                    let (_, c) = self.shape(a);
                    for (in_row, &s) in seg.iter().enumerate() {
                        for j in 0..c {
                            self.nodes[a.0].grad[in_row * c + j] += grad[s * c + j];
                        }
                    }
                }
                Op::RowSoftmax(a) => {
                    let out = self.nodes[i].value.clone();
                    for r2 in 0..rows {
                        let row_out = &out[r2 * cols..(r2 + 1) * cols];
                        let row_grad = &grad[r2 * cols..(r2 + 1) * cols];
                        let dot: f32 = row_out
                            .iter()
                            .zip(row_grad)
                            .map(|(&p, &g)| p * g)
                            .sum();
                        for j in 0..cols {
                            self.nodes[a.0].grad[r2 * cols + j] +=
                                row_out[j] * (row_grad[j] - dot);
                        }
                    }
                }
                Op::Concat(a, b) => {
                    let (_, ca) = self.shape(a);
                    let (_, cb) = self.shape(b);
                    for r2 in 0..rows {
                        for j in 0..ca {
                            self.nodes[a.0].grad[r2 * ca + j] += grad[r2 * (ca + cb) + j];
                        }
                        for j in 0..cb {
                            self.nodes[b.0].grad[r2 * cb + j] += grad[r2 * (ca + cb) + ca + j];
                        }
                    }
                }
                Op::MeanPoolRows(a) => {
                    let (ra, _) = self.shape(a);
                    let inv = 1.0 / ra.max(1) as f32;
                    for r2 in 0..ra {
                        for j in 0..cols {
                            self.nodes[a.0].grad[r2 * cols + j] += grad[j] * inv;
                        }
                    }
                }
                Op::Transpose(a) => {
                    // out is (cols=r_a) × (rows here = c_a); out[i,j] = a[j,i].
                    let (ar, ac) = self.shape(a);
                    for i2 in 0..rows {
                        for j in 0..cols {
                            // rows == ac, cols == ar
                            self.nodes[a.0].grad[j * ac + i2] += grad[i2 * cols + j];
                        }
                    }
                    let _ = (ar,);
                }
                Op::RowNormalize(a) => {
                    // y = x/‖x‖ ⇒ dx = (g − y·(y·g)) / ‖x‖.
                    let out = self.nodes[i].value.clone();
                    let inp = self.nodes[a.0].value.clone();
                    for r2 in 0..rows {
                        let y = &out[r2 * cols..(r2 + 1) * cols];
                        let x = &inp[r2 * cols..(r2 + 1) * cols];
                        let gr = &grad[r2 * cols..(r2 + 1) * cols];
                        let norm = x.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
                        let dot: f32 = y.iter().zip(gr).map(|(&a2, &b2)| a2 * b2).sum();
                        for j in 0..cols {
                            self.nodes[a.0].grad[r2 * cols + j] += (gr[j] - y[j] * dot) / norm;
                        }
                    }
                }
                Op::MulScalar(a, s) => {
                    let k = self.nodes[s.0].value[0];
                    let av = self.nodes[a.0].value.clone();
                    let mut ds = 0.0;
                    for (idx, &g) in grad.iter().enumerate() {
                        self.nodes[a.0].grad[idx] += g * k;
                        ds += g * av[idx];
                    }
                    self.nodes[s.0].grad[0] += ds;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check for a scalar-valued function of one
    /// parameter tensor.
    fn grad_check(
        rows: usize,
        cols: usize,
        f: impl Fn(&mut Tape, Val) -> f32,
    ) {
        let mut params = Params::new();
        let mut k = 0u32;
        let pid = params.alloc(rows, cols, || {
            k += 1;
            ((k * 37 % 17) as f32 - 8.0) / 10.0
        });
        // Analytic gradient.
        params.zero_grad();
        let mut tape = Tape::new();
        let p = tape.param(&params, pid);
        let _ = f(&mut tape, p);
        tape.backward(&mut params);
        let analytic = params.grads[pid].clone();
        // Numerical gradient.
        let eps = 1e-3f32;
        for i in 0..rows * cols {
            let orig = params.data[pid][i];
            params.data[pid][i] = orig + eps;
            let mut t1 = Tape::new();
            let p1 = t1.param(&params, pid);
            let l1 = f(&mut t1, p1);
            params.data[pid][i] = orig - eps;
            let mut t2 = Tape::new();
            let p2 = t2.param(&params, pid);
            let l2 = f(&mut t2, p2);
            params.data[pid][i] = orig;
            let numeric = (l1 - l2) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "grad mismatch at {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn matmul_softmax_ce_gradients() {
        grad_check(2, 3, |tape, p| {
            let x = tape.input(vec![0.5, -0.2, 1.0, 0.3, 0.8, -0.5], 2, 3);
            let xt = tape.mul(x, p);
            let sm = tape.row_softmax(xt);
            tape.nll_of_softmax_row(sm, 0, 1) + tape.nll_of_softmax_row(sm, 1, 2)
        });
    }

    #[test]
    fn dense_layer_gradients() {
        grad_check(3, 2, |tape, w| {
            let x = tape.input(vec![1.0, 0.5, -0.3, 0.2, 0.9, -1.0], 2, 3);
            let h = tape.matmul(x, w);
            let a = tape.tanh(h);
            let sm = tape.row_softmax(a);
            tape.nll_of_softmax_row(sm, 0, 0)
        });
    }

    #[test]
    fn sigmoid_bce_gradients() {
        grad_check(1, 4, |tape, w| {
            let x = tape.input(vec![0.3, -0.7, 0.2, 0.9], 1, 4);
            let z = tape.mul(x, w);
            let pooled = tape.mean_pool_rows(z);
            let s = tape.sigmoid(pooled);
            tape.bce_of_sigmoid(s, 0, true) + tape.bce_of_sigmoid(s, 2, false)
        });
    }

    #[test]
    fn gather_segment_gradients() {
        grad_check(3, 2, |tape, p| {
            let gathered = tape.row_gather(p, &[2, 0, 2]);
            let summed = tape.segment_sum(gathered, &[0, 1, 1], 2);
            let act = tape.relu(summed);
            let sm = tape.row_softmax(act);
            tape.nll_of_softmax_row(sm, 0, 1)
        });
    }

    #[test]
    fn concat_and_add_row_gradients() {
        grad_check(1, 3, |tape, row| {
            let x = tape.input(vec![0.2, -0.4, 0.6, 0.1, 0.5, -0.2], 2, 3);
            let shifted = tape.add_row(x, row);
            let both = tape.concat(shifted, x);
            let s = tape.sigmoid(both);
            let pooled = tape.mean_pool_rows(s);
            tape.bce_of_sigmoid(pooled, 1, false)
        });
    }

    #[test]
    fn adam_reduces_simple_loss() {
        let mut params = Params::new();
        let pid = params.alloc(1, 2, || 2.0);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            params.zero_grad();
            let mut tape = Tape::new();
            let p = tape.param(&params, pid);
            // loss = sigmoid(p) → push towards 0 via BCE target=false.
            let s = tape.sigmoid(p);
            let loss = tape.bce_of_sigmoid(s, 0, false) + tape.bce_of_sigmoid(s, 1, false);
            tape.backward(&mut params);
            params.adam_step(0.1);
            last = loss;
        }
        assert!(last < 0.2, "loss did not decrease: {last}");
    }

    #[test]
    fn transpose_and_mul_scalar_gradients() {
        grad_check(2, 3, |tape, p| {
            let pt = tape.transpose(p);
            let x = tape.input(vec![0.4, -0.1, 0.7, 0.2, -0.6, 0.3], 2, 3);
            let scores = tape.matmul(x, pt); // 2×2
            let sm = tape.row_softmax(scores);
            tape.nll_of_softmax_row(sm, 0, 1)
        });
        grad_check(1, 1, |tape, s| {
            let x = tape.input(vec![0.5, -0.2, 0.3, 0.8], 2, 2);
            let scaled = tape.mul_scalar(x, s);
            let sm = tape.row_softmax(scaled);
            tape.nll_of_softmax_row(sm, 1, 0)
        });
    }

    #[test]
    fn row_normalize_gradients() {
        grad_check(2, 3, |tape, p| {
            let n = tape.row_normalize(p);
            let sm = tape.row_softmax(n);
            tape.nll_of_softmax_row(sm, 0, 2) + tape.nll_of_softmax_row(sm, 1, 0)
        });
    }

    #[test]
    fn values_and_shapes_are_exposed() {
        let mut tape = Tape::new();
        let x = tape.input(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(tape.shape(x), (2, 2));
        let y = tape.scale(x, 2.0);
        assert_eq!(tape.value(y), &[2.0, 4.0, 6.0, 8.0]);
    }
}
