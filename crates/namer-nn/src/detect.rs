//! Running the trained baselines over *real* (uncorrupted) code — the §5.6
//! experiment that exposes the synthetic/real distribution mismatch.

use crate::graph::Vocab;
use crate::inject::file_graphs;
use crate::model::Model;
use namer_syntax::{SourceFile, Sym};

/// One issue report produced by a baseline model.
#[derive(Clone, Debug)]
pub struct NnReport {
    /// Index into the scanned file slice.
    pub file_idx: usize,
    /// 1-based line of the flagged identifier use.
    pub line: u32,
    /// The name the model thinks is misused.
    pub original: Sym,
    /// The model's suggested replacement.
    pub suggested: Sym,
    /// Model confidence (classification × localization probability).
    pub confidence: f32,
}

/// Scans every file, producing at most one report per file (the model's
/// most confident flagged use, if it beats the no-bug slot and has a
/// repair suggestion).
pub fn scan(model: &Model, files: &[SourceFile], vocab: &Vocab) -> Vec<NnReport> {
    let graphs = file_graphs(files, vocab, model.max_nodes());
    let mut out = Vec::new();
    for (file_idx, graph) in graphs {
        let p = model.predict(&graph);
        let (Some(slot), Some(suggested)) = (p.bug_slot, p.repair_sym) else {
            continue;
        };
        let node = graph.ident_nodes[slot];
        out.push(NnReport {
            file_idx,
            line: graph.lines[node],
            original: graph.syms[node],
            suggested,
            confidence: p.cls * p.loc[slot + 1],
        });
    }
    out.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).expect("finite confidence"));
    out
}

/// Keeps the `n` most confident reports — how §5.6 tunes the baselines'
/// confidence threshold to a target report count.
pub fn top_reports(mut reports: Vec<NnReport>, n: usize) -> Vec<NnReport> {
    reports.truncate(n);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{build_vocab, make_samples};
    use crate::model::{Arch, Model, ModelConfig};
    use namer_syntax::Lang;

    fn files() -> Vec<SourceFile> {
        (0..6)
            .map(|i| {
                SourceFile::new(
                    "r",
                    format!("f{i}.py"),
                    "def mix(alpha, beta):\n    total = alpha + beta\n    return total\n",
                    Lang::Python,
                )
            })
            .collect()
    }

    #[test]
    fn scan_produces_sorted_reports() {
        let fs = files();
        let vocab = build_vocab(&fs, 64);
        let config = ModelConfig {
            epochs: 2,
            ..ModelConfig::default()
        };
        let train = make_samples(&fs, &vocab, 60, 0.5, config.max_nodes, 4);
        let mut model = Model::new(Arch::Ggnn, vocab.size(), config);
        model.train(&train);
        let reports = scan(&model, &fs, &vocab);
        for w in reports.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
        for r in &reports {
            assert_ne!(r.original, r.suggested);
            assert!(r.file_idx < fs.len());
        }
    }

    #[test]
    fn top_reports_truncates() {
        let fs = files();
        let vocab = build_vocab(&fs, 64);
        let config = ModelConfig {
            epochs: 1,
            ..ModelConfig::default()
        };
        let train = make_samples(&fs, &vocab, 30, 0.5, config.max_nodes, 5);
        let mut model = Model::new(Arch::Great, vocab.size(), config);
        model.train(&train);
        let reports = scan(&model, &fs, &vocab);
        let top = top_reports(reports.clone(), 2);
        assert!(top.len() <= 2);
    }
}
