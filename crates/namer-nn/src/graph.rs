//! Program graphs for the deep-learning baselines.
//!
//! Following Allamanis et al. (GGNN) and Hellendoorn et al. (GREAT), a file
//! is encoded as a graph over its AST nodes with syntactic and dataflow-ish
//! edges: `Child`/`Parent`, `NextToken`/`PrevToken` over the terminal
//! sequence, and `LastUse`/`NextUse` linking repeated identifier uses.

use namer_syntax::{Ast, NameRole, NodeId, Sym};
use std::collections::HashMap;

/// Number of edge types.
pub const EDGE_TYPES: usize = 6;

/// Edge type indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeType {
    /// AST parent → child.
    Child = 0,
    /// AST child → parent.
    Parent = 1,
    /// Terminal i → terminal i+1.
    NextToken = 2,
    /// Terminal i+1 → terminal i.
    PrevToken = 3,
    /// Identifier use → previous use of the same name.
    LastUse = 4,
    /// Identifier use → next use of the same name.
    NextUse = 5,
}

/// Token vocabulary with id 0 reserved for unknown tokens.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    map: HashMap<Sym, usize>,
}

impl Vocab {
    /// Builds a vocabulary from symbol frequency, keeping the `max_size - 1`
    /// most frequent symbols (id 0 = UNK).
    pub fn build(counts: &HashMap<Sym, u64>, max_size: usize) -> Vocab {
        let mut by_freq: Vec<(Sym, u64)> = counts.iter().map(|(&s, &c)| (s, c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let map = by_freq
            .into_iter()
            .take(max_size.saturating_sub(1))
            .enumerate()
            .map(|(i, (s, _))| (s, i + 1))
            .collect();
        Vocab { map }
    }

    /// Vocabulary size including UNK.
    pub fn size(&self) -> usize {
        self.map.len() + 1
    }

    /// The id of `sym` (0 for unknown).
    pub fn id(&self, sym: Sym) -> usize {
        self.map.get(&sym).copied().unwrap_or(0)
    }
}

/// A program graph.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Vocabulary id per node.
    pub labels: Vec<usize>,
    /// Original symbol per node.
    pub syms: Vec<Sym>,
    /// 1-based source line per node (0 = unknown).
    pub lines: Vec<u32>,
    /// Edges `(src, dst, edge type)`.
    pub edges: Vec<(usize, usize, usize)>,
    /// Graph-node indices of identifier terminals (variable-use candidates).
    pub ident_nodes: Vec<usize>,
}

impl Graph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Builds the program graph of a parsed file, truncated to `max_nodes`.
pub fn build(ast: &Ast, vocab: &Vocab, max_nodes: usize) -> Graph {
    let mut labels = Vec::new();
    let mut syms = Vec::new();
    let mut lines = Vec::new();
    let mut edges = Vec::new();
    let mut ident_nodes = Vec::new();
    let mut index_of: HashMap<NodeId, usize> = HashMap::new();
    let mut terminals: Vec<usize> = Vec::new();
    let mut last_use: HashMap<Sym, usize> = HashMap::new();

    let Some(root) = ast.try_root() else {
        return Graph {
            labels,
            syms,
            lines,
            edges,
            ident_nodes,
        };
    };
    for node in ast.preorder(root) {
        if labels.len() >= max_nodes {
            break;
        }
        let idx = labels.len();
        index_of.insert(node, idx);
        let sym = ast.value(node);
        labels.push(vocab.id(sym));
        syms.push(sym);
        lines.push(ast.line(node));
        if ast.is_terminal(node) {
            if let Some(&prev) = terminals.last() {
                edges.push((prev, idx, EdgeType::NextToken as usize));
                edges.push((idx, prev, EdgeType::PrevToken as usize));
            }
            terminals.push(idx);
            if ast.role(node) == NameRole::Object {
                ident_nodes.push(idx);
                if let Some(&prev) = last_use.get(&sym) {
                    edges.push((idx, prev, EdgeType::LastUse as usize));
                    edges.push((prev, idx, EdgeType::NextUse as usize));
                }
                last_use.insert(sym, idx);
            }
        }
    }
    // Child/Parent edges for nodes that survived truncation.
    for (&node, &idx) in &index_of {
        for &c in ast.children(node) {
            if let Some(&ci) = index_of.get(&c) {
                edges.push((idx, ci, EdgeType::Child as usize));
                edges.push((ci, idx, EdgeType::Parent as usize));
            }
        }
    }
    Graph {
        labels,
        syms,
        lines,
        edges,
        ident_nodes,
    }
}

/// Counts terminal/non-terminal symbols of a file for vocabulary building.
pub fn count_symbols(ast: &Ast, counts: &mut HashMap<Sym, u64>) {
    if let Some(root) = ast.try_root() {
        for node in ast.preorder(root) {
            *counts.entry(ast.value(node)).or_default() += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::python;

    fn graph_of(src: &str) -> Graph {
        let ast = python::parse(src).unwrap();
        let mut counts = HashMap::new();
        count_symbols(&ast, &mut counts);
        let vocab = Vocab::build(&counts, 64);
        build(&ast, &vocab, 200)
    }

    #[test]
    fn graph_has_nodes_and_edges() {
        let g = graph_of("x = compute(y)\nz = x\n");
        assert!(g.len() > 5);
        assert!(!g.edges.is_empty());
    }

    #[test]
    fn ident_nodes_are_object_terminals() {
        let g = graph_of("x = compute(y)\n");
        // x and y are object uses; `compute` is a function name.
        let names: Vec<&str> = g
            .ident_nodes
            .iter()
            .map(|&i| g.syms[i].as_str())
            .collect();
        assert!(names.contains(&"x") && names.contains(&"y"), "{names:?}");
        assert!(!names.contains(&"compute"), "{names:?}");
    }

    #[test]
    fn last_use_edges_link_same_names() {
        let g = graph_of("x = load()\ny = x\n");
        let has_use_edge = g
            .edges
            .iter()
            .any(|&(s, d, t)| t == EdgeType::LastUse as usize && g.syms[s] == g.syms[d]);
        assert!(has_use_edge);
    }

    #[test]
    fn next_token_edges_follow_terminal_order() {
        let g = graph_of("a = 1\n");
        let nt: Vec<(usize, usize)> = g
            .edges
            .iter()
            .filter(|&&(_, _, t)| t == EdgeType::NextToken as usize)
            .map(|&(s, d, _)| (s, d))
            .collect();
        assert!(!nt.is_empty());
        for (s, d) in nt {
            assert!(s < d, "preorder terminals come in order");
        }
    }

    #[test]
    fn truncation_caps_node_count() {
        let big: String = (0..100).map(|i| format!("v{i} = f{i}(a{i})\n")).collect();
        let ast = python::parse(&big).unwrap();
        let vocab = Vocab::default();
        let g = build(&ast, &vocab, 50);
        assert_eq!(g.len(), 50);
        for &(s, d, _) in &g.edges {
            assert!(s < 50 && d < 50);
        }
    }

    #[test]
    fn vocab_keeps_most_frequent() {
        let mut counts = HashMap::new();
        counts.insert(Sym::intern("common"), 100);
        counts.insert(Sym::intern("rare"), 1);
        let v = Vocab::build(&counts, 2);
        assert_eq!(v.size(), 2);
        assert_eq!(v.id(Sym::intern("common")), 1);
        assert_eq!(v.id(Sym::intern("rare")), 0);
    }
}
