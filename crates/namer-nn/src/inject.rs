//! Synthetic variable-misuse injection (the training-data recipe of GGNN and
//! GREAT, §5.6: "introduce synthetic changes to the programs in our
//! datasets").

use crate::graph::{count_symbols, build, Graph, Vocab};
use namer_syntax::{parse_file, SourceFile, Sym};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One training/evaluation sample.
#[derive(Clone, Debug)]
pub struct Sample {
    /// The (possibly corrupted) program graph.
    pub graph: Graph,
    /// Index into `graph.ident_nodes` of the corrupted use, `None` for
    /// bug-free samples.
    pub bug: Option<usize>,
    /// The original (correct) symbol of the corrupted node.
    pub repair: Option<Sym>,
}

/// Builds a vocabulary over a corpus of files.
pub fn build_vocab(files: &[SourceFile], max_size: usize) -> Vocab {
    let mut counts = HashMap::new();
    for f in files {
        if let Ok(ast) = parse_file(f) {
            count_symbols(&ast, &mut counts);
        }
    }
    Vocab::build(&counts, max_size)
}

/// Generates `n` samples from `files`: with probability `bug_rate` a random
/// identifier use is replaced by another in-file identifier (the classic
/// VarMisuse corruption); otherwise the graph is left intact.
pub fn make_samples(
    files: &[SourceFile],
    vocab: &Vocab,
    n: usize,
    bug_rate: f64,
    max_nodes: usize,
    seed: u64,
) -> Vec<Sample> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graphs: Vec<Graph> = files
        .iter()
        .filter_map(|f| parse_file(f).ok())
        .map(|ast| build(&ast, vocab, max_nodes))
        .filter(|g| g.ident_nodes.len() >= 2)
        .collect();
    if graphs.is_empty() {
        return Vec::new();
    }
    (0..n)
        .map(|_| {
            let g = &graphs[rng.gen_range(0..graphs.len())];
            if rng.gen_bool(bug_rate) {
                corrupt(g, vocab, &mut rng)
            } else {
                Sample {
                    graph: g.clone(),
                    bug: None,
                    repair: None,
                }
            }
        })
        .collect()
}

/// Builds the clean evaluation graph of each file (for real-issue scanning).
pub fn file_graphs(files: &[SourceFile], vocab: &Vocab, max_nodes: usize) -> Vec<(usize, Graph)> {
    files
        .iter()
        .enumerate()
        .filter_map(|(i, f)| parse_file(f).ok().map(|ast| (i, build(&ast, vocab, max_nodes))))
        .filter(|(_, g)| g.ident_nodes.len() >= 2)
        .collect()
}

/// Corrupts one identifier use: swap its symbol for a different identifier
/// appearing in the same graph.
fn corrupt(g: &Graph, vocab: &Vocab, rng: &mut SmallRng) -> Sample {
    let mut graph = g.clone();
    for _ in 0..16 {
        let slot = rng.gen_range(0..graph.ident_nodes.len());
        let node = graph.ident_nodes[slot];
        let original = graph.syms[node];
        let other = graph.ident_nodes[rng.gen_range(0..graph.ident_nodes.len())];
        let replacement = graph.syms[other];
        if replacement != original {
            graph.syms[node] = replacement;
            graph.labels[node] = vocab.id(replacement);
            return Sample {
                graph,
                bug: Some(slot),
                repair: Some(original),
            };
        }
    }
    // No two distinct identifiers; fall back to a clean sample.
    Sample {
        graph,
        bug: None,
        repair: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::Lang;

    fn files() -> Vec<SourceFile> {
        (0..5)
            .map(|i| {
                SourceFile::new(
                    "r",
                    format!("f{i}.py"),
                    "def use(alpha, beta):\n    gamma = alpha + beta\n    return gamma\n",
                    Lang::Python,
                )
            })
            .collect()
    }

    #[test]
    fn samples_have_requested_count() {
        let fs = files();
        let vocab = build_vocab(&fs, 64);
        let samples = make_samples(&fs, &vocab, 20, 0.5, 100, 1);
        assert_eq!(samples.len(), 20);
    }

    #[test]
    fn buggy_samples_record_slot_and_repair() {
        let fs = files();
        let vocab = build_vocab(&fs, 64);
        let samples = make_samples(&fs, &vocab, 40, 1.0, 100, 2);
        let buggy = samples.iter().filter(|s| s.bug.is_some()).count();
        assert!(buggy >= 30, "only {buggy} corrupted");
        for s in samples.iter().filter(|s| s.bug.is_some()) {
            let slot = s.bug.unwrap();
            let node = s.graph.ident_nodes[slot];
            // The written symbol differs from the recorded repair.
            assert_ne!(Some(s.graph.syms[node]), s.repair);
        }
    }

    #[test]
    fn clean_rate_respected() {
        let fs = files();
        let vocab = build_vocab(&fs, 64);
        let samples = make_samples(&fs, &vocab, 50, 0.0, 100, 3);
        assert!(samples.iter().all(|s| s.bug.is_none()));
    }

    #[test]
    fn generation_is_deterministic() {
        let fs = files();
        let vocab = build_vocab(&fs, 64);
        let a = make_samples(&fs, &vocab, 10, 0.5, 100, 7);
        let b = make_samples(&fs, &vocab, 10, 0.5, 100, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bug, y.bug);
            assert_eq!(x.graph.labels, y.graph.labels);
        }
    }
}
