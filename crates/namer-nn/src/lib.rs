//! Deep-learning baselines for the §5.6 comparison of the Namer paper.
//!
//! The paper evaluates two state-of-the-art neural variable-misuse
//! detectors — **GGNN** (Allamanis et al., ICLR'18) and **GREAT**
//! (Hellendoorn et al., ICLR'20) — trained on synthetically injected bugs,
//! and shows that despite high synthetic-test accuracy they achieve very low
//! precision on real naming issues (distribution mismatch). This crate
//! reproduces that pipeline from scratch on CPU:
//!
//! * [`autograd`] — a small define-by-run tape with numerically checked
//!   gradients;
//! * [`graph`] — program graphs (AST + token + use-def edges) and the token
//!   vocabulary;
//! * [`inject`] — synthetic VarMisuse corruption for training/test data;
//! * [`model`] — the GGNN and GREAT encoders with the shared
//!   classification / localization / repair heads;
//! * [`detect`] — scanning real (uncorrupted) files for issue reports.
//!
//! The models are width/depth-reduced relative to the originals (they must
//! train in seconds, not GPU-days), but keep the architectures and — most
//! importantly — the training distribution, which is what the §5.6 result
//! is about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autograd;
pub mod detect;
pub mod graph;
pub mod inject;
pub mod model;

pub use detect::{scan, top_reports, NnReport};
pub use graph::{Graph, Vocab, EDGE_TYPES};
pub use inject::{build_vocab, file_graphs, make_samples, Sample};
pub use model::{Accuracy, Arch, Model, ModelConfig, Prediction};
