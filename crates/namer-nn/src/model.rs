//! The GGNN and GREAT baselines (§5.6 of the Namer paper).
//!
//! Both models share the VarMisuse heads of the original papers:
//!
//! * **classification** — is the program buggy? (graph-level sigmoid);
//! * **localization** — which identifier use is wrong? (softmax over a
//!   no-bug slot plus every candidate use);
//! * **repair** — which in-scope name should replace it? (pointer softmax
//!   over the other identifier uses).
//!
//! They differ in the encoder: GGNN runs gated message passing over typed
//! edges; GREAT runs self-attention with learned per-edge-type relational
//! biases (a compact single-head variant of the relational transformer).

use crate::autograd::{Params, Tape, Val};
use crate::graph::{Graph, EDGE_TYPES};
use crate::inject::Sample;
use namer_syntax::Sym;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which baseline architecture to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arch {
    /// Gated graph neural network (Allamanis et al., ICLR'18).
    Ggnn,
    /// Global relational transformer (Hellendoorn et al., ICLR'20).
    Great,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Arch::Ggnn => "GGNN",
            Arch::Great => "GREAT",
        })
    }
}

/// Model hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Hidden width.
    pub dim: usize,
    /// Message-passing steps (GGNN) / attention layers (GREAT).
    pub depth: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs over the sample set.
    pub epochs: usize,
    /// Maximum graph size (nodes).
    pub max_nodes: usize,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> ModelConfig {
        ModelConfig {
            dim: 24,
            depth: 2,
            lr: 5e-3,
            epochs: 3,
            max_nodes: 120,
            seed: 11,
        }
    }
}

struct Ids {
    emb: usize,
    // GGNN
    edge_w: Vec<usize>,
    gru_z: usize,
    gru_c: usize,
    gru_bz: usize,
    gru_bc: usize,
    // GREAT
    wq: Vec<usize>,
    wk: Vec<usize>,
    wv: Vec<usize>,
    wo: Vec<usize>,
    edge_bias: Vec<usize>,
    ff1: Vec<usize>,
    ff2: Vec<usize>,
    // heads
    u_loc: usize,
    u_null: usize,
    w_cls: usize,
    w_rep: usize,
}

/// A trainable VarMisuse baseline.
pub struct Model {
    /// Architecture of the encoder.
    pub arch: Arch,
    config: ModelConfig,
    params: Params,
    ids: Ids,
}

/// Model output for one graph.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// P(buggy) from the classification head.
    pub cls: f32,
    /// Localization distribution: index 0 is the no-bug slot, index `1 + i`
    /// is candidate `graph.ident_nodes[i]`.
    pub loc: Vec<f32>,
    /// For the arg-max candidate: repair scores per other candidate slot.
    pub repair: Vec<f32>,
    /// Index (into `ident_nodes`) of the most likely bug, if any beats the
    /// no-bug slot.
    pub bug_slot: Option<usize>,
    /// Suggested replacement symbol for the predicted bug.
    pub repair_sym: Option<Sym>,
}

/// Accuracy triple in the style of §5.6.
#[derive(Clone, Copy, Debug, Default)]
pub struct Accuracy {
    /// Buggy-vs-clean classification accuracy.
    pub classification: f64,
    /// Localization accuracy over buggy samples.
    pub localization: f64,
    /// Repair accuracy over buggy samples.
    pub repair: f64,
}

impl Model {
    /// Creates an untrained model for `vocab_size` tokens.
    pub fn new(arch: Arch, vocab_size: usize, config: ModelConfig) -> Model {
        let mut params = Params::new();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let d = config.dim;
        let mut init = |params: &mut Params, r: usize, c: usize| {
            let scale = (2.0 / (r + c) as f32).sqrt();
            params.alloc(r, c, || (rng.gen::<f32>() * 2.0 - 1.0) * scale)
        };
        let emb = init(&mut params, vocab_size, d);
        let edge_w = (0..EDGE_TYPES).map(|_| init(&mut params, d, d)).collect();
        let gru_z = init(&mut params, 2 * d, d);
        let gru_c = init(&mut params, 2 * d, d);
        let gru_bz = init(&mut params, 1, d);
        let gru_bc = init(&mut params, 1, d);
        let depth = config.depth;
        let wq = (0..depth).map(|_| init(&mut params, d, d)).collect();
        let wk = (0..depth).map(|_| init(&mut params, d, d)).collect();
        let wv = (0..depth).map(|_| init(&mut params, d, d)).collect();
        let wo = (0..depth).map(|_| init(&mut params, d, d)).collect();
        let edge_bias = (0..EDGE_TYPES).map(|_| init(&mut params, 1, 1)).collect();
        let ff1 = (0..depth).map(|_| init(&mut params, d, d)).collect();
        let ff2 = (0..depth).map(|_| init(&mut params, d, d)).collect();
        let u_loc = init(&mut params, d, 1);
        // The no-bug slot is a single learned logit, like the dedicated
        // slot-0 state in the original VarMisuse heads.
        let u_null = init(&mut params, 1, 1);
        let w_cls = init(&mut params, d, 1);
        let w_rep = init(&mut params, d, d);
        Model {
            arch,
            config,
            params,
            ids: Ids {
                emb,
                edge_w,
                gru_z,
                gru_c,
                gru_bz,
                gru_bc,
                wq,
                wk,
                wv,
                wo,
                edge_bias,
                ff1,
                ff2,
                u_loc,
                u_null,
                w_cls,
                w_rep,
            },
        }
    }

    /// The configured maximum graph size.
    pub fn max_nodes(&self) -> usize {
        self.config.max_nodes
    }

    fn encode(&self, tape: &mut Tape, g: &Graph) -> Val {
        let emb = tape.param(&self.params, self.ids.emb);
        let mut h = tape.row_gather(emb, &g.labels);
        let n = g.len();
        match self.arch {
            Arch::Ggnn => {
                // Pre-bucket edges per type.
                let mut by_type: Vec<(Vec<usize>, Vec<usize>)> =
                    vec![(Vec::new(), Vec::new()); EDGE_TYPES];
                for &(s, dst, t) in &g.edges {
                    by_type[t].0.push(s);
                    by_type[t].1.push(dst);
                }
                for _ in 0..self.config.depth {
                    let mut msg: Option<Val> = None;
                    for (t, (srcs, dsts)) in by_type.iter().enumerate() {
                        if srcs.is_empty() {
                            continue;
                        }
                        let w = tape.param(&self.params, self.ids.edge_w[t]);
                        let gathered = tape.row_gather(h, srcs);
                        let transformed = tape.matmul(gathered, w);
                        let agg = tape.segment_sum(transformed, dsts, n);
                        msg = Some(match msg {
                            Some(m) => tape.add(m, agg),
                            None => agg,
                        });
                    }
                    let m = msg.unwrap_or_else(|| tape.input(vec![0.0; n * self.config.dim], n, self.config.dim));
                    let hm = tape.concat(h, m);
                    let wz = tape.param(&self.params, self.ids.gru_z);
                    let wc = tape.param(&self.params, self.ids.gru_c);
                    let bz = tape.param(&self.params, self.ids.gru_bz);
                    let bc = tape.param(&self.params, self.ids.gru_bc);
                    let z_lin = tape.matmul(hm, wz);
                    let z_lin = tape.add_row(z_lin, bz);
                    let z = tape.sigmoid(z_lin);
                    let c_lin = tape.matmul(hm, wc);
                    let c_lin = tape.add_row(c_lin, bc);
                    let c = tape.tanh(c_lin);
                    let ones = tape.input(vec![1.0; n * self.config.dim], n, self.config.dim);
                    let keep = tape.sub(ones, z);
                    let kept = tape.mul(keep, h);
                    let new = tape.mul(z, c);
                    h = tape.add(kept, new);
                }
                h
            }
            Arch::Great => {
                // Per-type adjacency masks as constant inputs.
                let masks: Vec<Option<Vec<f32>>> = {
                    let mut ms: Vec<Option<Vec<f32>>> = vec![None; EDGE_TYPES];
                    for &(s, dst, t) in &g.edges {
                        let m = ms[t].get_or_insert_with(|| vec![0.0; n * n]);
                        m[s * n + dst] = 1.0;
                    }
                    ms
                };
                let inv_sqrt_d = 1.0 / (self.config.dim as f32).sqrt();
                for l in 0..self.config.depth {
                    let wq = tape.param(&self.params, self.ids.wq[l]);
                    let wk = tape.param(&self.params, self.ids.wk[l]);
                    let wv = tape.param(&self.params, self.ids.wv[l]);
                    let wo = tape.param(&self.params, self.ids.wo[l]);
                    let q = tape.matmul(h, wq);
                    let k = tape.matmul(h, wk);
                    let v = tape.matmul(h, wv);
                    let kt = tape.transpose(k);
                    let scores = tape.matmul(q, kt);
                    let mut logits = tape.scale(scores, inv_sqrt_d);
                    for (t, mask) in masks.iter().enumerate() {
                        if let Some(m) = mask {
                            let mask_in = tape.input(m.clone(), n, n);
                            let bias = tape.param(&self.params, self.ids.edge_bias[t]);
                            let biased = tape.mul_scalar(mask_in, bias);
                            logits = tape.add(logits, biased);
                        }
                    }
                    let attn = tape.row_softmax(logits);
                    let ctx = tape.matmul(attn, v);
                    let proj = tape.matmul(ctx, wo);
                    let res = tape.add(h, proj);
                    h = tape.row_normalize(res);
                    let w1 = tape.param(&self.params, self.ids.ff1[l]);
                    let w2 = tape.param(&self.params, self.ids.ff2[l]);
                    let f = tape.matmul(h, w1);
                    let f = tape.relu(f);
                    let f = tape.matmul(f, w2);
                    let res = tape.add(h, f);
                    h = tape.row_normalize(res);
                    // Rescale so the pooled classification signal keeps
                    // magnitude comparable to the GGNN path.
                    h = tape.scale(h, (self.config.dim as f32).sqrt());
                }
                h
            }
        }
    }

    /// Forward pass producing head outputs.
    ///
    /// Returns `(cls, loc_softmax, cand_states, pooled)` tape values.
    fn heads(&self, tape: &mut Tape, g: &Graph) -> (Val, Val, Val) {
        let h = self.encode(tape, g);
        let pooled = tape.mean_pool_rows(h);
        let cands = tape.row_gather(h, &g.ident_nodes);
        let u = tape.param(&self.params, self.ids.u_loc);
        let u0 = tape.param(&self.params, self.ids.u_null);
        let cand_scores = tape.matmul(cands, u); // k×1
        let cand_row = tape.transpose(cand_scores); // 1×k
        let logits = tape.concat(u0, cand_row); // 1×(1+k), u0 = no-bug logit
        let loc = tape.row_softmax(logits);
        let wc = tape.param(&self.params, self.ids.w_cls);
        let cls_lin = tape.matmul(pooled, wc);
        let cls = tape.sigmoid(cls_lin);
        (cls, loc, cands)
    }

    fn repair_softmax(&self, tape: &mut Tape, cands: Val, slot: usize) -> Val {
        let bug_state = tape.row_gather(cands, &[slot]); // 1×d
        let wr = tape.param(&self.params, self.ids.w_rep);
        let projected = tape.matmul(bug_state, wr); // 1×d
        let cand_t = tape.transpose(cands); // d×k
        let scores = tape.matmul(projected, cand_t); // 1×k
        tape.row_softmax(scores)
    }

    /// Trains on `samples` with Adam; returns the mean loss of the final
    /// epoch.
    pub fn train(&mut self, samples: &[Sample]) -> f32 {
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5eed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_epoch_loss = 0.0;
        for _epoch in 0..self.config.epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                let s = &samples[i];
                if s.graph.ident_nodes.is_empty() {
                    continue;
                }
                self.params.zero_grad();
                let mut tape = Tape::new();
                let (cls, loc, cands) = self.heads(&mut tape, &s.graph);
                let mut loss = tape.bce_of_sigmoid(cls, 0, s.bug.is_some());
                match s.bug {
                    Some(slot) => {
                        loss += tape.nll_of_softmax_row(loc, 0, slot + 1);
                        // Repair target: a candidate carrying the original
                        // symbol.
                        if let Some(repair_sym) = s.repair {
                            let target = s
                                .graph
                                .ident_nodes
                                .iter()
                                .position(|&n| s.graph.syms[n] == repair_sym);
                            if let Some(t) = target {
                                let rep = self.repair_softmax(&mut tape, cands, slot);
                                loss += tape.nll_of_softmax_row(rep, 0, t);
                            }
                        }
                    }
                    None => {
                        loss += tape.nll_of_softmax_row(loc, 0, 0);
                    }
                }
                tape.backward(&mut self.params);
                self.params.adam_step(self.config.lr);
                total += loss;
            }
            last_epoch_loss = total / samples.len().max(1) as f32;
        }
        last_epoch_loss
    }

    /// Runs the heads on one graph.
    pub fn predict(&self, g: &Graph) -> Prediction {
        let mut tape = Tape::new();
        let (cls, loc, cands) = self.heads(&mut tape, g);
        let loc_p = tape.value(loc).to_vec();
        // Pointer-style classification, as in the original papers: the
        // program is buggy iff probability mass leaves the no-bug slot. The
        // sigmoid head is averaged in as an auxiliary signal.
        let cls_p = 0.5 * (1.0 - loc_p[0]) + 0.5 * tape.value(cls)[0];
        let bug_slot = loc_p
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i - 1)
            .filter(|&slot| loc_p[slot + 1] > loc_p[0]);
        let (repair, repair_sym) = match bug_slot {
            Some(slot) => {
                let rep = self.repair_softmax(&mut tape, cands, slot);
                let rp = tape.value(rep).to_vec();
                let bug_sym = g.syms[g.ident_nodes[slot]];
                let best = rp
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| g.syms[g.ident_nodes[j]] != bug_sym)
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                    .map(|(j, _)| g.syms[g.ident_nodes[j]]);
                (rp, best)
            }
            None => (Vec::new(), None),
        };
        Prediction {
            cls: cls_p,
            loc: loc_p,
            repair,
            bug_slot,
            repair_sym,
        }
    }

    /// §5.6-style accuracy on held-out samples.
    pub fn accuracy(&self, samples: &[Sample]) -> Accuracy {
        let mut cls_ok = 0usize;
        let mut loc_ok = 0usize;
        let mut rep_ok = 0usize;
        let mut buggy = 0usize;
        for s in samples {
            let p = self.predict(&s.graph);
            let predicted_buggy = p.cls > 0.5;
            if predicted_buggy == s.bug.is_some() {
                cls_ok += 1;
            }
            if let Some(slot) = s.bug {
                buggy += 1;
                if p.bug_slot == Some(slot) {
                    loc_ok += 1;
                }
                if p.repair_sym == s.repair {
                    rep_ok += 1;
                }
            }
        }
        Accuracy {
            classification: cls_ok as f64 / samples.len().max(1) as f64,
            localization: loc_ok as f64 / buggy.max(1) as f64,
            repair: rep_ok as f64 / buggy.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{build_vocab, make_samples};
    use namer_syntax::{Lang, SourceFile};

    fn training_files() -> Vec<SourceFile> {
        let mut files = Vec::new();
        let bodies = [
            "def add(alpha, beta):\n    total = alpha + beta\n    return total\n",
            "def scale(value, factor):\n    result = value * factor\n    return result\n",
            "def greet(name, title):\n    label = title + name\n    return label\n",
        ];
        for (i, b) in bodies.iter().enumerate() {
            for j in 0..4 {
                files.push(SourceFile::new("r", format!("f{i}_{j}.py"), *b, Lang::Python));
            }
        }
        files
    }

    fn train_model_uncached(arch: Arch) -> (Model, Vec<Sample>) {
        let files = training_files();
        let vocab = build_vocab(&files, 128);
        // Transformers want a gentler learning rate than the GGNN.
        let lr = match arch {
            Arch::Ggnn => 5e-3,
            Arch::Great => 3e-3,
        };
        let config = ModelConfig {
            epochs: 8,
            lr,
            ..ModelConfig::default()
        };
        let train = make_samples(&files, &vocab, 160, 0.5, config.max_nodes, 1);
        let test = make_samples(&files, &vocab, 60, 0.5, config.max_nodes, 2);
        let mut model = Model::new(arch, vocab.size(), config);
        model.train(&train);
        (model, test)
    }

    /// Trained models are expensive; share them across tests.
    fn train_model(arch: Arch) -> &'static (Model, Vec<Sample>) {
        use std::sync::OnceLock;
        static GGNN: OnceLock<(Model, Vec<Sample>)> = OnceLock::new();
        static GREAT: OnceLock<(Model, Vec<Sample>)> = OnceLock::new();
        match arch {
            Arch::Ggnn => GGNN.get_or_init(|| train_model_uncached(Arch::Ggnn)),
            Arch::Great => GREAT.get_or_init(|| train_model_uncached(Arch::Great)),
        }
    }

    #[test]
    fn ggnn_learns_synthetic_misuse_above_chance() {
        let (model, test) = train_model(Arch::Ggnn);
        let acc = model.accuracy(test);
        assert!(acc.classification > 0.6, "{acc:?}");
        // Chance localization is ~1/(1+k) with k≈6 candidates.
        assert!(acc.localization > 0.25, "{acc:?}");
    }

    #[test]
    fn great_learns_synthetic_misuse_above_chance() {
        let (model, test) = train_model(Arch::Great);
        let acc = model.accuracy(test);
        assert!(acc.localization > 0.25, "{acc:?}");
        assert!(acc.classification >= 0.5, "{acc:?}");
    }

    #[test]
    fn prediction_shapes_are_consistent() {
        let (model, test) = train_model(Arch::Ggnn);
        let s = &test[0];
        let p = model.predict(&s.graph);
        assert_eq!(p.loc.len(), s.graph.ident_nodes.len() + 1);
        let sum: f32 = p.loc.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "loc sums to {sum}");
    }

    #[test]
    fn repair_never_suggests_the_buggy_name_itself() {
        let (model, test) = train_model(Arch::Ggnn);
        let test = &test[..];
        for s in test.iter().take(20) {
            let p = model.predict(&s.graph);
            if let (Some(slot), Some(rep)) = (p.bug_slot, p.repair_sym) {
                assert_ne!(s.graph.syms[s.graph.ident_nodes[slot]], rep);
            }
        }
    }

    #[test]
    fn training_loss_decreases() {
        let files = training_files();
        let vocab = build_vocab(&files, 128);
        let config = ModelConfig::default();
        let train = make_samples(&files, &vocab, 100, 0.5, config.max_nodes, 3);
        let mut m1 = Model::new(Arch::Ggnn, vocab.size(), ModelConfig { epochs: 1, ..config });
        let first = m1.train(&train);
        let mut m6 = Model::new(Arch::Ggnn, vocab.size(), ModelConfig { epochs: 6, ..config });
        let last = m6.train(&train);
        assert!(last < first, "loss {last} vs {first}");
    }
}
