//! Integration tests for program-graph construction and sample generation.

use namer_nn::{build_vocab, file_graphs, make_samples, EDGE_TYPES};
use namer_syntax::{Lang, SourceFile};

fn files() -> Vec<SourceFile> {
    vec![
        SourceFile::new(
            "r",
            "a.py",
            "def mix(alpha, beta):\n    total = alpha + beta\n    return total\n",
            Lang::Python,
        ),
        SourceFile::new(
            "r",
            "b.py",
            "class Box:\n    def __init__(self, width, height):\n        self.width = width\n        self.height = height\n",
            Lang::Python,
        ),
    ]
}

#[test]
fn graphs_cover_all_parsable_files() {
    let fs = files();
    let vocab = build_vocab(&fs, 128);
    let graphs = file_graphs(&fs, &vocab, 200);
    assert_eq!(graphs.len(), 2);
    for (_, g) in &graphs {
        assert!(!g.is_empty());
        assert!(!g.edges.is_empty());
        for &(s, d, t) in &g.edges {
            assert!(s < g.len() && d < g.len());
            assert!(t < EDGE_TYPES);
        }
    }
}

#[test]
fn ident_nodes_reference_object_uses() {
    let fs = files();
    let vocab = build_vocab(&fs, 128);
    let graphs = file_graphs(&fs, &vocab, 200);
    let (_, g) = &graphs[0];
    let names: Vec<&str> = g.ident_nodes.iter().map(|&i| g.syms[i].as_str()).collect();
    assert!(names.contains(&"alpha") && names.contains(&"beta") && names.contains(&"total"),
        "{names:?}");
}

#[test]
fn lines_allow_report_mapping() {
    let fs = files();
    let vocab = build_vocab(&fs, 128);
    let graphs = file_graphs(&fs, &vocab, 200);
    let (_, g) = &graphs[0];
    for &i in &g.ident_nodes {
        assert!(g.lines[i] >= 1, "identifier nodes carry source lines");
        assert!(g.lines[i] <= 3);
    }
}

#[test]
fn corruption_respects_vocab_consistency() {
    let fs = files();
    let vocab = build_vocab(&fs, 128);
    let samples = make_samples(&fs, &vocab, 50, 1.0, 200, 9);
    for s in &samples {
        for (i, &label) in s.graph.labels.iter().enumerate() {
            assert_eq!(label, vocab.id(s.graph.syms[i]), "labels track syms after corruption");
        }
        if let (Some(slot), Some(repair)) = (s.bug, s.repair) {
            let node = s.graph.ident_nodes[slot];
            assert_ne!(s.graph.syms[node], repair, "corrupted name differs from repair");
            // The repair name exists elsewhere in the graph (it was swapped in
            // from another identifier or is the original still used nearby).
            assert!(
                s.graph.syms.contains(&repair),
                "repair target present in graph"
            );
        }
    }
}

#[test]
fn unparsable_files_are_skipped() {
    let mut fs = files();
    fs.push(SourceFile::new("r", "broken.py", "def broken(:\n", Lang::Python));
    let vocab = build_vocab(&fs, 128);
    let graphs = file_graphs(&fs, &vocab, 200);
    assert_eq!(graphs.len(), 2, "the broken file is skipped");
}

#[test]
fn vocab_size_is_bounded() {
    let fs = files();
    let vocab = build_vocab(&fs, 8);
    assert!(vocab.size() <= 8);
    // Unknown tokens map to id 0.
    assert_eq!(vocab.id(namer_syntax::Sym::intern("never_seen_symbol_xyz")), 0);
}
