//! Pipeline observability for Namer (DESIGN.md §10).
//!
//! Every stage of the mine/scan pipeline reports into a [`MetricsSink`]:
//! monotonic [`Counter`]s, per-[`Phase`] wall-clock timings (recorded by
//! RAII [`PhaseGuard`]s), per-phase worker busy time, and per-pattern-shard
//! busy time. Instrumented code holds an [`Observer`] — a `Copy` handle that
//! is either a live borrow of a sink or inert — so uninstrumented callers
//! pay one branch per event and no allocation ever.
//!
//! The default collector is [`PipelineMetrics`]: lock-free atomic arrays,
//! shared across worker threads by reference, snapshotted into the
//! serialisable [`MetricsSnapshot`] after a run.
//!
//! # Determinism contract
//!
//! Counter totals are **deterministic-sum invariant**: instrumentation
//! points are placed so every counted event is attributed exactly once no
//! matter how work is scheduled, so totals are identical at any
//! file-threads × pattern-shards combination (and between full, cached, and
//! sharded scans of the same warmth). Timings and per-shard busy splits are
//! scheduling-dependent by nature and carry no such guarantee.
//!
//! ```
//! use namer_observe::{Counter, Observer, Phase, PipelineMetrics};
//!
//! let metrics = PipelineMetrics::new();
//! let obs = metrics.observer();
//! {
//!     let _guard = obs.phase(Phase::Scan);
//!     obs.add(Counter::StatementsScanned, 42);
//! }
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter(Counter::StatementsScanned), 42);
//! assert_eq!(snap.phase(Phase::Scan).calls, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Version of the [`MetricsSnapshot`] JSON schema (the `--metrics-out`
/// format). Bumped whenever a key is renamed or removed; adding keys keeps
/// the version.
pub const SCHEMA_VERSION: u32 = 1;

/// Pattern-shard busy-time slots tracked by [`PipelineMetrics`]. Shard
/// indices beyond the last slot fold into it (plans that wide are far past
/// the useful range — see DESIGN.md §9).
pub const MAX_TRACKED_SHARDS: usize = 32;

/// Monotonic event counters, each attributed exactly once per event (the
/// deterministic half of the metrics — see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Files that parsed and preprocessed successfully.
    FilesProcessed,
    /// Files skipped because they failed to parse.
    ParseFailures,
    /// Statements extracted by preprocessing.
    StatementsProcessed,
    /// Confusing word pairs mined from commit histories.
    PairsMined,
    /// Candidate patterns emitted by the FP-tree walk (before
    /// `pruneUncommon`).
    PatternCandidates,
    /// Patterns surviving `pruneUncommon` (the detector's final set).
    PatternsMined,
    /// Files covered by scan assembly (cached + fresh).
    FilesScanned,
    /// Statements covered by scan assembly (cached + fresh).
    StatementsScanned,
    /// Pattern matches (condition held) across the scanned corpus.
    PatternMatches,
    /// Pattern satisfactions (condition and deduction held).
    PatternSatisfactions,
    /// Violations before per-location deduplication.
    ViolationsRaw,
    /// Report candidates after deduplication.
    ViolationsDeduped,
    /// Reports the classifier let through.
    ReportsEmitted,
    /// Input files served from pre-existing scan-cache entries.
    CacheHits,
    /// Input files that missed the scan cache and scanned fresh.
    CacheMisses,
    /// Input files recorded (now or previously) as unparsable in the cache.
    CacheParseFailures,
    /// Runs whose on-disk cache degraded to a cold scan (corrupt, version
    /// mismatch, or fingerprint mismatch).
    CacheDegradedCold,
    /// Transient I/O errors recovered by the bounded-retry policy
    /// (DESIGN.md §11).
    IoRetries,
    /// Input files quarantined during ingestion (unreadable, non-UTF-8,
    /// or symlink-cycle skips; DESIGN.md §11).
    QuarantinedFiles,
    /// Model-registry lookups served from an already-resident model
    /// (DESIGN.md §12).
    RegistryHits,
    /// Model-registry lookups that had to load the model from disk.
    RegistryMisses,
    /// Models evicted from the registry to stay under its memory budget.
    RegistryEvictions,
    /// JSON-RPC requests the detection daemon accepted for execution
    /// (answered with a result *or* a typed error — rejections are counted
    /// separately; DESIGN.md §13).
    ServeRequests,
    /// JSON-RPC requests rejected with the typed `server_busy` error
    /// because the daemon's bounded request queue was full (DESIGN.md §13).
    ServeRejectedBusy,
    /// Statements whose match outcomes were spliced from a cached statement
    /// region instead of re-matched (DESIGN.md §14).
    StmtCacheHits,
    /// Statements re-matched because no cached region covered their paths.
    StmtCacheMisses,
    /// Findings-change events pushed to watchers (`namer watch` diffs and
    /// `file.findings` notifications; DESIGN.md §14).
    WatchEvents,
}

impl Counter {
    /// Every counter, in declaration order (= snapshot key order modulo the
    /// alphabetical `BTreeMap` sort).
    pub const ALL: [Counter; 27] = [
        Counter::FilesProcessed,
        Counter::ParseFailures,
        Counter::StatementsProcessed,
        Counter::PairsMined,
        Counter::PatternCandidates,
        Counter::PatternsMined,
        Counter::FilesScanned,
        Counter::StatementsScanned,
        Counter::PatternMatches,
        Counter::PatternSatisfactions,
        Counter::ViolationsRaw,
        Counter::ViolationsDeduped,
        Counter::ReportsEmitted,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheParseFailures,
        Counter::CacheDegradedCold,
        Counter::IoRetries,
        Counter::QuarantinedFiles,
        Counter::RegistryHits,
        Counter::RegistryMisses,
        Counter::RegistryEvictions,
        Counter::ServeRequests,
        Counter::ServeRejectedBusy,
        Counter::StmtCacheHits,
        Counter::StmtCacheMisses,
        Counter::WatchEvents,
    ];

    /// Stable snake_case name used as the snapshot/JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FilesProcessed => "files_processed",
            Counter::ParseFailures => "parse_failures",
            Counter::StatementsProcessed => "statements_processed",
            Counter::PairsMined => "pairs_mined",
            Counter::PatternCandidates => "pattern_candidates",
            Counter::PatternsMined => "patterns_mined",
            Counter::FilesScanned => "files_scanned",
            Counter::StatementsScanned => "statements_scanned",
            Counter::PatternMatches => "pattern_matches",
            Counter::PatternSatisfactions => "pattern_satisfactions",
            Counter::ViolationsRaw => "violations_raw",
            Counter::ViolationsDeduped => "violations_deduped",
            Counter::ReportsEmitted => "reports_emitted",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheParseFailures => "cache_parse_failures",
            Counter::CacheDegradedCold => "cache_degraded_cold",
            Counter::IoRetries => "io_retries",
            Counter::QuarantinedFiles => "quarantined_files",
            Counter::RegistryHits => "registry_hits",
            Counter::RegistryMisses => "registry_misses",
            Counter::RegistryEvictions => "registry_evictions",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeRejectedBusy => "serve_rejected_busy",
            Counter::StmtCacheHits => "stmt_cache_hits",
            Counter::StmtCacheMisses => "stmt_cache_misses",
            Counter::WatchEvents => "watch_events",
        }
    }
}

/// Timed pipeline phases. Wall-clock comes from one [`PhaseGuard`] around
/// the phase; busy time is the sum each worker thread contributes inside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// One whole `DetectSession` run (wraps everything below).
    Detect,
    /// One whole training run (process + mine + scan + classifier fit).
    Train,
    /// Preprocessing: parse → analyses → statements → name paths.
    Process,
    /// Parsing alone (busy time only; nested inside `Process`).
    Parse,
    /// All of mining (wraps the three `Mine*` sub-phases).
    Mine,
    /// Confusing-pair mining from commit histories.
    MinePairs,
    /// FP-tree growth and the candidate-generating tree walk.
    MineCandidates,
    /// The `pruneUncommon` recount and filter.
    MinePrune,
    /// The per-file scan pass (file chunks × pattern shards).
    Scan,
    /// Scan assembly: repo aggregates, features, deduplication.
    Assemble,
    /// Filtering violations through the defect classifier.
    Classify,
    /// Scan-cache partitioning and per-file state lookup.
    CacheLookup,
    /// Pruning and saving the scan cache back to disk.
    CacheSave,
    /// Loading (reading + decoding) a persisted model, in either format.
    ModelLoad,
    /// One executed daemon request: params decode, detection, and result
    /// assembly. Envelope rendering and the response write happen outside
    /// the span (DESIGN.md §13).
    Serve,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 15] = [
        Phase::Detect,
        Phase::Train,
        Phase::Process,
        Phase::Parse,
        Phase::Mine,
        Phase::MinePairs,
        Phase::MineCandidates,
        Phase::MinePrune,
        Phase::Scan,
        Phase::Assemble,
        Phase::Classify,
        Phase::CacheLookup,
        Phase::CacheSave,
        Phase::ModelLoad,
        Phase::Serve,
    ];

    /// Stable snake_case name used as the snapshot/JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::Train => "train",
            Phase::Process => "process",
            Phase::Parse => "parse",
            Phase::Mine => "mine",
            Phase::MinePairs => "mine_pairs",
            Phase::MineCandidates => "mine_candidates",
            Phase::MinePrune => "mine_prune",
            Phase::Scan => "scan",
            Phase::Assemble => "assemble",
            Phase::Classify => "classify",
            Phase::CacheLookup => "cache_lookup",
            Phase::CacheSave => "cache_save",
            Phase::ModelLoad => "model_load",
            Phase::Serve => "serve",
        }
    }
}

/// Where instrumented code reports. Implementations must be cheap and
/// thread-safe: events arrive concurrently from worker threads, pre-batched
/// per chunk (see DESIGN.md §10's overhead budget).
pub trait MetricsSink: Send + Sync {
    /// Adds `n` to `counter`.
    fn add(&self, counter: Counter, n: u64);
    /// Records one completed span of `phase` taking `wall_nanos`.
    fn time(&self, phase: Phase, wall_nanos: u64);
    /// Adds `nanos` of worker busy time to `phase`.
    fn busy(&self, phase: Phase, nanos: u64);
    /// Adds `nanos` of busy time to pattern shard `shard`.
    fn shard_busy(&self, shard: usize, nanos: u64);
}

/// A `Copy` handle threaded through the pipeline: either a live borrow of a
/// [`MetricsSink`] or inert ([`Observer::none`]), in which case every method
/// is a single branch.
#[derive(Clone, Copy, Default)]
pub struct Observer<'a> {
    sink: Option<&'a dyn MetricsSink>,
}

impl<'a> Observer<'a> {
    /// An inert observer: all events are dropped.
    pub fn none() -> Observer<'a> {
        Observer { sink: None }
    }

    /// An observer reporting into `sink`.
    pub fn new(sink: &'a dyn MetricsSink) -> Observer<'a> {
        Observer { sink: Some(sink) }
    }

    /// `true` when events actually land somewhere. Workers use this to skip
    /// clock reads entirely on the inert path.
    pub fn is_active(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `n` to `counter`.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(sink) = self.sink {
            sink.add(counter, n);
        }
    }

    /// Adds `nanos` of worker busy time to `phase`.
    pub fn busy(&self, phase: Phase, nanos: u64) {
        if let Some(sink) = self.sink {
            sink.busy(phase, nanos);
        }
    }

    /// Adds `nanos` of busy time to pattern shard `shard`.
    pub fn shard_busy(&self, shard: usize, nanos: u64) {
        if let Some(sink) = self.sink {
            sink.shard_busy(shard, nanos);
        }
    }

    /// Starts timing `phase`; the returned guard records the wall time when
    /// dropped. Inert observers return an inert guard (no clock read).
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'a> {
        PhaseGuard {
            span: self.sink.map(|sink| (sink, phase, Instant::now())),
        }
    }
}

/// RAII wall-clock timer for one [`Phase`] span; created by
/// [`Observer::phase`], reports on drop.
pub struct PhaseGuard<'a> {
    span: Option<(&'a dyn MetricsSink, Phase, Instant)>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((sink, phase, start)) = self.span.take() {
            sink.time(phase, start.elapsed().as_nanos() as u64);
        }
    }
}

/// The default lock-free collector: fixed atomic arrays, one relaxed
/// fetch-add per event. Share it across threads by reference (or via the
/// observer it hands out) and [`PipelineMetrics::snapshot`] when done.
#[derive(Debug)]
pub struct PipelineMetrics {
    counters: [AtomicU64; Counter::ALL.len()],
    wall: [AtomicU64; Phase::ALL.len()],
    busy: [AtomicU64; Phase::ALL.len()],
    calls: [AtomicU64; Phase::ALL.len()],
    shard_busy: [AtomicU64; MAX_TRACKED_SHARDS],
    shards_seen: AtomicU64,
}

impl Default for PipelineMetrics {
    fn default() -> PipelineMetrics {
        PipelineMetrics::new()
    }
}

impl PipelineMetrics {
    /// A zeroed collector.
    pub fn new() -> PipelineMetrics {
        PipelineMetrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            wall: std::array::from_fn(|_| AtomicU64::new(0)),
            busy: std::array::from_fn(|_| AtomicU64::new(0)),
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            shard_busy: std::array::from_fn(|_| AtomicU64::new(0)),
            shards_seen: AtomicU64::new(0),
        }
    }

    /// An observer reporting into this collector.
    pub fn observer(&self) -> Observer<'_> {
        Observer::new(self)
    }

    /// Current total of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Freezes the current totals into a serialisable snapshot. Every
    /// counter and phase key is present (zeros included), so consumers can
    /// validate against the full key set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_owned(), self.counter(c)))
            .collect();
        let phases = Phase::ALL
            .iter()
            .map(|&p| {
                let i = p as usize;
                (
                    p.name().to_owned(),
                    PhaseStat {
                        calls: self.calls[i].load(Ordering::Relaxed),
                        wall_nanos: self.wall[i].load(Ordering::Relaxed),
                        busy_nanos: self.busy[i].load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        let seen = (self.shards_seen.load(Ordering::Relaxed) as usize).min(MAX_TRACKED_SHARDS);
        let shard_busy_nanos: Vec<u64> = self.shard_busy[..seen]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            counters,
            phases,
            shard_imbalance: imbalance(&shard_busy_nanos),
            shard_busy_nanos,
        }
    }
}

impl MetricsSink for PipelineMetrics {
    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn time(&self, phase: Phase, wall_nanos: u64) {
        self.wall[phase as usize].fetch_add(wall_nanos, Ordering::Relaxed);
        self.calls[phase as usize].fetch_add(1, Ordering::Relaxed);
    }

    fn busy(&self, phase: Phase, nanos: u64) {
        self.busy[phase as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    fn shard_busy(&self, shard: usize, nanos: u64) {
        let slot = shard.min(MAX_TRACKED_SHARDS - 1);
        self.shard_busy[slot].fetch_add(nanos, Ordering::Relaxed);
        self.shards_seen
            .fetch_max(slot as u64 + 1, Ordering::Relaxed);
    }
}

/// Fans every event out to two sinks — how a session feeds its own
/// per-run collector *and* a user-supplied sink at once.
pub struct Tee<'a>(
    /// First recipient.
    pub &'a dyn MetricsSink,
    /// Second recipient.
    pub &'a dyn MetricsSink,
);

impl MetricsSink for Tee<'_> {
    fn add(&self, counter: Counter, n: u64) {
        self.0.add(counter, n);
        self.1.add(counter, n);
    }

    fn time(&self, phase: Phase, wall_nanos: u64) {
        self.0.time(phase, wall_nanos);
        self.1.time(phase, wall_nanos);
    }

    fn busy(&self, phase: Phase, nanos: u64) {
        self.0.busy(phase, nanos);
        self.1.busy(phase, nanos);
    }

    fn shard_busy(&self, shard: usize, nanos: u64) {
        self.0.shard_busy(shard, nanos);
        self.1.shard_busy(shard, nanos);
    }
}

/// Aggregated timings of one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Completed spans (guard drops).
    pub calls: u64,
    /// Total wall-clock nanoseconds across spans.
    pub wall_nanos: u64,
    /// Total worker busy nanoseconds contributed inside the phase.
    pub busy_nanos: u64,
}

/// A frozen, serialisable view of a [`PipelineMetrics`] collector — the
/// payload of `DetectOutcome::metrics` and the CLI's `--metrics-out` JSON.
///
/// All [`Counter`] and [`Phase`] keys are always present (zeros included);
/// `BTreeMap`s keep the JSON key order stable.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Counter totals by [`Counter::name`].
    pub counters: BTreeMap<String, u64>,
    /// Phase timings by [`Phase::name`].
    pub phases: BTreeMap<String, PhaseStat>,
    /// Busy nanoseconds per pattern shard (empty when no sharded scan ran).
    pub shard_busy_nanos: Vec<u64>,
    /// Shard imbalance ratio: max shard busy / mean shard busy (`0.0`
    /// without shard data; `1.0` is perfectly balanced).
    pub shard_imbalance: f64,
}

impl MetricsSnapshot {
    /// Total of `counter` (`0` when absent, which only happens for
    /// snapshots deserialised from a newer writer).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.get(counter.name()).copied().unwrap_or(0)
    }

    /// Timings of `phase` (zeros when absent).
    pub fn phase(&self, phase: Phase) -> PhaseStat {
        self.phases.get(phase.name()).copied().unwrap_or_default()
    }

    /// Wall-clock seconds of `phase`.
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        self.phase(phase).wall_nanos as f64 / 1e9
    }

    /// Serialises to pretty-printed JSON (the `--metrics-out` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot always serialises")
    }

    /// Zeroes every scheduling-dependent value — phase wall/busy nanos and
    /// per-shard busy splits — leaving only the deterministic half of the
    /// snapshot (counters, span calls, the full key set). The detection
    /// daemon applies this in deterministic mode so recorded wire
    /// transcripts can be diffed byte-exactly (DESIGN.md §13).
    pub fn scrub_timings(&mut self) {
        for stat in self.phases.values_mut() {
            stat.wall_nanos = 0;
            stat.busy_nanos = 0;
        }
        for busy in &mut self.shard_busy_nanos {
            *busy = 0;
        }
        self.shard_imbalance = 0.0;
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<MetricsSnapshot, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Human-readable summary (the CLI's `--timings` output): phases with
    /// any activity, then non-zero counters, then the shard balance line.
    pub fn render_human(&self) -> String {
        let mut out = String::from("── timings ──────────────────────────────\n");
        for &p in &Phase::ALL {
            let stat = self.phase(p);
            if stat.calls == 0 && stat.busy_nanos == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:>16}  {:>9.3}s wall  {:>9.3}s busy  ({} span{})\n",
                p.name(),
                stat.wall_nanos as f64 / 1e9,
                stat.busy_nanos as f64 / 1e9,
                stat.calls,
                if stat.calls == 1 { "" } else { "s" },
            ));
        }
        out.push_str("── counters ─────────────────────────────\n");
        for &c in &Counter::ALL {
            let n = self.counter(c);
            if n > 0 {
                out.push_str(&format!("{:>24}  {n}\n", c.name()));
            }
        }
        if !self.shard_busy_nanos.is_empty() {
            out.push_str(&format!(
                "── shards ───────────────────────────────\n\
                 {:>16}  {:?} busy ns, imbalance {:.2}\n",
                format!("{} shard(s)", self.shard_busy_nanos.len()),
                self.shard_busy_nanos,
                self.shard_imbalance,
            ));
        }
        out
    }
}

/// Max/mean ratio of per-shard busy time (`0.0` for empty or all-idle
/// shards).
fn imbalance(busy: &[u64]) -> f64 {
    if busy.is_empty() {
        return 0.0;
    }
    let max = busy.iter().copied().max().unwrap_or(0);
    let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
    if mean <= 0.0 {
        0.0
    } else {
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = PipelineMetrics::new();
        let obs = m.observer();
        obs.add(Counter::PatternMatches, 3);
        obs.add(Counter::PatternMatches, 4);
        assert_eq!(m.counter(Counter::PatternMatches), 7);
        let snap = m.snapshot();
        assert_eq!(snap.counter(Counter::PatternMatches), 7);
        assert_eq!(snap.counter(Counter::CacheHits), 0);
    }

    #[test]
    fn phase_guard_records_wall_time_and_calls() {
        let m = PipelineMetrics::new();
        {
            let _g = m.observer().phase(Phase::Mine);
            std::hint::black_box(0);
        }
        {
            let _g = m.observer().phase(Phase::Mine);
        }
        let stat = m.snapshot().phase(Phase::Mine);
        assert_eq!(stat.calls, 2);
        // Wall time is monotone-clock based; two guard drops always record
        // a non-negative (and on any real clock, positive) total.
        assert!(stat.wall_nanos > 0);
    }

    #[test]
    fn inert_observer_records_nothing() {
        let m = PipelineMetrics::new();
        let obs = Observer::none();
        assert!(!obs.is_active());
        obs.add(Counter::FilesScanned, 5);
        obs.busy(Phase::Scan, 100);
        obs.shard_busy(0, 100);
        drop(obs.phase(Phase::Scan));
        let snap = m.snapshot();
        assert_eq!(snap.counter(Counter::FilesScanned), 0);
        assert_eq!(snap.phase(Phase::Scan), PhaseStat::default());
    }

    #[test]
    fn shard_busy_tracks_slots_and_imbalance() {
        let m = PipelineMetrics::new();
        let obs = m.observer();
        obs.shard_busy(0, 300);
        obs.shard_busy(1, 100);
        // Out-of-range shard folds into the last slot instead of panicking.
        obs.shard_busy(MAX_TRACKED_SHARDS + 7, 1);
        let snap = m.snapshot();
        assert_eq!(snap.shard_busy_nanos.len(), MAX_TRACKED_SHARDS);
        assert_eq!(snap.shard_busy_nanos[0], 300);
        assert_eq!(snap.shard_busy_nanos[1], 100);
        assert_eq!(*snap.shard_busy_nanos.last().unwrap(), 1);
        assert!(snap.shard_imbalance > 1.0);
    }

    #[test]
    fn tee_fans_out_to_both_sinks() {
        let a = PipelineMetrics::new();
        let b = PipelineMetrics::new();
        let tee = Tee(&a, &b);
        let obs = Observer::new(&tee);
        obs.add(Counter::ReportsEmitted, 2);
        obs.busy(Phase::Scan, 9);
        obs.shard_busy(1, 5);
        drop(obs.phase(Phase::Detect));
        for m in [&a, &b] {
            let snap = m.snapshot();
            assert_eq!(snap.counter(Counter::ReportsEmitted), 2);
            assert_eq!(snap.phase(Phase::Scan).busy_nanos, 9);
            assert_eq!(snap.phase(Phase::Detect).calls, 1);
            assert_eq!(snap.shard_busy_nanos[1], 5);
        }
    }

    #[test]
    fn snapshot_contains_every_key_and_round_trips() {
        let m = PipelineMetrics::new();
        m.observer().add(Counter::StatementsScanned, 11);
        drop(m.observer().phase(Phase::Detect));
        let snap = m.snapshot();
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        for c in Counter::ALL {
            assert!(snap.counters.contains_key(c.name()), "missing {}", c.name());
        }
        for p in Phase::ALL {
            assert!(snap.phases.contains_key(p.name()), "missing {}", p.name());
        }
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("round trip parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn human_rendering_mentions_active_entries_only() {
        let m = PipelineMetrics::new();
        m.observer().add(Counter::CacheHits, 3);
        drop(m.observer().phase(Phase::Scan));
        let text = m.snapshot().render_human();
        assert!(text.contains("cache_hits"));
        assert!(text.contains("scan"));
        assert!(!text.contains("mine_prune"));
        assert!(!text.contains("violations_raw"));
    }

    #[test]
    fn scrub_timings_keeps_only_deterministic_values() {
        let m = PipelineMetrics::new();
        let obs = m.observer();
        obs.add(Counter::ServeRequests, 2);
        obs.busy(Phase::Scan, 999);
        obs.shard_busy(1, 123);
        drop(obs.phase(Phase::Serve));
        let mut snap = m.snapshot();
        snap.scrub_timings();
        assert_eq!(snap.counter(Counter::ServeRequests), 2);
        assert_eq!(snap.phase(Phase::Serve).calls, 1);
        assert_eq!(snap.phase(Phase::Serve).wall_nanos, 0);
        assert_eq!(snap.phase(Phase::Scan).busy_nanos, 0);
        assert!(snap.shard_busy_nanos.iter().all(|&b| b == 0));
        assert_eq!(snap.shard_imbalance, 0.0);
    }

    #[test]
    fn names_are_unique() {
        let counters: std::collections::HashSet<_> =
            Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(counters.len(), Counter::ALL.len());
        let phases: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(phases.len(), Phase::ALL.len());
    }
}
