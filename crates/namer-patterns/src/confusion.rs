//! Confusing word pairs, mined from commit histories (§3.2).
//!
//! A confusing word pair `⟨w1, w2⟩` records that some commit replaced the
//! subtoken `w1` by `w2`. Pairs are discovered by running a tree-diff
//! matching algorithm over the ASTs of a file before and after a commit
//! (following Paletov et al.'s crypto-API diff approach the paper cites):
//! matched terminal nodes whose names differ in exactly one subtoken
//! contribute that subtoken pair.

use namer_syntax::{subtoken, Ast, NodeId, Sym};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The mined set of confusing word pairs with occurrence counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(from = "PairList", into = "PairList")]
pub struct ConfusingPairs {
    counts: HashMap<(Sym, Sym), u64>,
    /// All correct words `w2` — the deduction-end candidates for
    /// confusing-word mining.
    pub correct_words: HashSet<Sym>,
}

/// JSON-friendly representation: a flat `(mistaken, correct, count)` list
/// (JSON object keys must be strings, so the tuple-keyed map cannot be
/// serialised directly).
#[derive(Serialize, Deserialize)]
struct PairList(Vec<(Sym, Sym, u64)>);

impl From<PairList> for ConfusingPairs {
    fn from(list: PairList) -> ConfusingPairs {
        let mut out = ConfusingPairs::new();
        for (w1, w2, n) in list.0 {
            out.insert_count(w1, w2, n);
        }
        out
    }
}

impl From<ConfusingPairs> for PairList {
    fn from(pairs: ConfusingPairs) -> PairList {
        let mut list: Vec<(Sym, Sym, u64)> = pairs
            .counts
            .into_iter()
            .map(|((a, b), n)| (a, b, n))
            .collect();
        list.sort();
        PairList(list)
    }
}

impl ConfusingPairs {
    /// Creates an empty set.
    pub fn new() -> ConfusingPairs {
        ConfusingPairs::default()
    }

    /// Records one observation of `⟨mistaken, correct⟩`.
    pub fn insert(&mut self, mistaken: Sym, correct: Sym) {
        self.insert_count(mistaken, correct, 1);
    }

    /// Records `count` observations of `⟨mistaken, correct⟩` at once (bulk
    /// decode from a persisted pair list).
    pub fn insert_count(&mut self, mistaken: Sym, correct: Sym, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry((mistaken, correct)).or_default() += count;
        self.correct_words.insert(correct);
    }

    /// Whether `⟨mistaken, correct⟩` was ever observed.
    pub fn contains(&self, mistaken: Sym, correct: Sym) -> bool {
        self.counts.contains_key(&(mistaken, correct))
    }

    /// Observation count of a pair.
    pub fn count(&self, mistaken: Sym, correct: Sym) -> u64 {
        self.counts.get(&(mistaken, correct)).copied().unwrap_or(0)
    }

    /// Number of distinct pairs.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when no pair was mined.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `((mistaken, correct), count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(Sym, Sym), &u64)> {
        self.counts.iter()
    }

    /// Extends this set with all pairs extracted from one commit's
    /// before/after trees.
    pub fn mine_commit(&mut self, before: &Ast, after: &Ast) {
        for (w1, w2) in diff_word_pairs(before, after) {
            self.insert(w1, w2);
        }
    }
}

/// Extracts confusing subtoken pairs from a before/after tree pair.
///
/// The matcher walks both trees top-down. Nodes match when their values and
/// shapes agree; children lists of equal length match pairwise, and unequal
/// lists are aligned greedily by structural digest. For every pair of
/// matched terminals with different identifier values, the names are split
/// into subtokens, and if exactly one subtoken position differs, that pair is
/// reported (whole names count as one subtoken when unsplittable).
pub fn diff_word_pairs(before: &Ast, after: &Ast) -> Vec<(Sym, Sym)> {
    let mut out = Vec::new();
    match (before.try_root(), after.try_root()) {
        (Some(a), Some(b)) => match_nodes(before, a, after, b, &mut out),
        _ => {}
    }
    out
}

fn match_nodes(ta: &Ast, a: NodeId, tb: &Ast, b: NodeId, out: &mut Vec<(Sym, Sym)>) {
    match (ta.is_terminal(a), tb.is_terminal(b)) {
        (true, true) => {
            let (va, vb) = (ta.value(a), tb.value(b));
            if va != vb {
                if let Some(pair) = subtoken_pair(va, vb) {
                    out.push(pair);
                }
            }
        }
        (false, false) => {
            if ta.value(a) != tb.value(b) {
                return;
            }
            let ca = ta.children(a);
            let cb = tb.children(b);
            if ca.len() == cb.len() {
                for (&x, &y) in ca.iter().zip(cb.iter()) {
                    match_nodes(ta, x, tb, y, out);
                }
            } else {
                align_by_digest(ta, ca, tb, cb, out);
            }
        }
        _ => {}
    }
}

/// Greedy alignment of unequal child lists: children with equal digests
/// pair up in order; leftovers are matched positionally when unambiguous.
fn align_by_digest(
    ta: &Ast,
    ca: &[NodeId],
    tb: &Ast,
    cb: &[NodeId],
    out: &mut Vec<(Sym, Sym)>,
) {
    let da: Vec<u64> = ca.iter().map(|&n| ta.digest(n)).collect();
    let db: Vec<u64> = cb.iter().map(|&n| tb.digest(n)).collect();
    let mut used_b = vec![false; cb.len()];
    let mut unmatched_a = Vec::new();
    for (i, &a) in ca.iter().enumerate() {
        let mut hit = None;
        for (j, &b) in cb.iter().enumerate() {
            if !used_b[j] && da[i] == db[j] {
                hit = Some((j, b));
                break;
            }
        }
        match hit {
            Some((j, _)) => used_b[j] = true,
            None => unmatched_a.push(a),
        }
    }
    // Second pass: align leftovers in order by node kind (value + shape
    // class), skipping inserted/deleted children of other kinds.
    let mut next_b = 0usize;
    for &x in &unmatched_a {
        let mut matched = None;
        for (j, &y) in cb.iter().enumerate().skip(next_b) {
            if used_b[j] {
                continue;
            }
            if ta.is_terminal(x) == tb.is_terminal(y) && ta.value(x) == tb.value(y) {
                matched = Some((j, y));
                break;
            }
            // Terminal-vs-terminal of differing value still aligns when both
            // are leaves (a rename); non-terminals must share their kind.
            if ta.is_terminal(x) && tb.is_terminal(y) {
                matched = Some((j, y));
                break;
            }
        }
        if let Some((j, y)) = matched {
            used_b[j] = true;
            next_b = j + 1;
            match_nodes(ta, x, tb, y, out);
        }
    }
}

/// If `a` and `b` differ in exactly one subtoken, returns that pair.
fn subtoken_pair(a: Sym, b: Sym) -> Option<(Sym, Sym)> {
    let sa = subtoken::split(a.as_str());
    let sb = subtoken::split(b.as_str());
    if sa.len() != sb.len() {
        // Whole-name replacement when both are single subtokens of different
        // shapes is still a pair; otherwise skip.
        if sa.len() == 1 && sb.len() == 1 {
            return Some((a, b));
        }
        return None;
    }
    let mut diff = None;
    for (x, y) in sa.iter().zip(sb.iter()) {
        if x != y {
            if diff.is_some() {
                return None;
            }
            diff = Some((Sym::intern(x), Sym::intern(y)));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::python;

    fn pairs(before: &str, after: &str) -> Vec<(String, String)> {
        let a = python::parse(before).unwrap();
        let b = python::parse(after).unwrap();
        diff_word_pairs(&a, &b)
            .into_iter()
            .map(|(x, y)| (x.as_str().to_owned(), y.as_str().to_owned()))
            .collect()
    }

    #[test]
    fn paper_example_true_equal() {
        let p = pairs(
            "self.assertTrue(vec, 4)\n",
            "self.assertEqual(vec, 4)\n",
        );
        assert_eq!(p, [("True".to_owned(), "Equal".to_owned())]);
    }

    #[test]
    fn whole_name_rename() {
        let p = pairs("x = name\n", "x = key\n");
        assert_eq!(p, [("name".to_owned(), "key".to_owned())]);
    }

    #[test]
    fn one_subtoken_in_snake_case() {
        let p = pairs("num_or_process = 3\n", "num_of_process = 3\n");
        assert_eq!(p, [("or".to_owned(), "of".to_owned())]);
    }

    #[test]
    fn multi_subtoken_changes_are_skipped() {
        let p = pairs("a = get_file_name()\n", "a = set_dir_path()\n");
        assert!(p.is_empty());
    }

    #[test]
    fn unchanged_trees_produce_nothing() {
        let p = pairs("x = compute(y)\n", "x = compute(y)\n");
        assert!(p.is_empty());
    }

    #[test]
    fn added_statement_does_not_derail_matching() {
        let p = pairs(
            "a = 1\nx = min_count\n",
            "a = 1\nsetup()\nx = max_count\n",
        );
        assert_eq!(p, [("min".to_owned(), "max".to_owned())]);
    }

    #[test]
    fn counts_accumulate_across_commits() {
        let mut cp = ConfusingPairs::new();
        let before = python::parse("self.assertTrue(v, 1)\n").unwrap();
        let after = python::parse("self.assertEqual(v, 1)\n").unwrap();
        cp.mine_commit(&before, &after);
        cp.mine_commit(&before, &after);
        assert_eq!(cp.count(Sym::intern("True"), Sym::intern("Equal")), 2);
        assert!(cp.correct_words.contains(&Sym::intern("Equal")));
        assert!(cp.contains(Sym::intern("True"), Sym::intern("Equal")));
    }

    #[test]
    fn serde_round_trip() {
        let mut cp = ConfusingPairs::new();
        cp.insert(Sym::intern("True"), Sym::intern("Equal"));
        cp.insert(Sym::intern("True"), Sym::intern("Equal"));
        cp.insert(Sym::intern("min"), Sym::intern("max"));
        let json = serde_json::to_string(&cp).unwrap();
        let back: ConfusingPairs = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count(Sym::intern("True"), Sym::intern("Equal")), 2);
        assert_eq!(back.count(Sym::intern("min"), Sym::intern("max")), 1);
        assert!(back.correct_words.contains(&Sym::intern("Equal")));
    }

    #[test]
    fn structural_changes_of_different_kind_are_ignored() {
        let p = pairs("x = f(a)\n", "x = a.f()\n");
        assert!(p.is_empty());
    }
}
