//! Flat fixed-width pattern layout for the binary model format
//! (DESIGN.md §12).
//!
//! The binary container in `namer-core::binfmt` stores patterns, name
//! paths, and confusing word pairs as flat little-endian arrays over an
//! interned symbol table, so a loader touches only the pages it reads and
//! never walks a recursive serde structure. This module owns the
//! byte-level encoding of those blocks; the container composes them into
//! sections and guards them with a digest.
//!
//! Layout, all integers little-endian:
//!
//! * **Symbol table** — `count: u32`, then `count + 1` cumulative byte
//!   offsets (`u32`), then the concatenated UTF-8 string blob. Symbols are
//!   referenced everywhere else by their `u32` index in this table.
//!   [`Sym`] ids are process-local interning handles, so files store the
//!   strings and re-intern on load.
//! * **Prefix pool** — `(sym: u32, child_index: u32)` pairs, 8 bytes each;
//!   the concatenated prefixes of every encoded path.
//! * **Path records** — `(prefix_off: u32, prefix_len: u32, end: u32)`,
//!   12 bytes each, `end == u32::MAX` encoding the symbolic `ϵ`.
//! * **Pattern records** — [`PATTERN_RECORD_BYTES`]-byte records holding
//!   the pattern type, condition/deduction ranges into the path records,
//!   and the three mining counters.
//! * **Pair records** — `(mistaken: u32, correct: u32, count: u64)`,
//!   16 bytes each, sorted by the interned strings so the encoding is
//!   stable across processes.

use crate::confusion::ConfusingPairs;
use crate::pattern::{NamePattern, PatternType};
use namer_syntax::namepath::NamePath;
use namer_syntax::Sym;
use std::collections::HashMap;
use std::fmt;

/// Sentinel symbol index encoding the symbolic end node `ϵ`.
pub const EPSILON: u32 = u32::MAX;

/// Bytes per prefix-pool element: `(sym, child_index)`.
pub const PREFIX_ELEM_BYTES: usize = 8;

/// Bytes per path record: `(prefix_off, prefix_len, end)`.
pub const PATH_RECORD_BYTES: usize = 12;

/// Bytes per pattern record: type, condition range, deduction range
/// (5 × `u32` + 4 padding bytes), then support/matches/satisfactions
/// (3 × `u64`).
pub const PATTERN_RECORD_BYTES: usize = 48;

/// Bytes per confusing-pair record: `(mistaken, correct, count)`.
pub const PAIR_RECORD_BYTES: usize = 16;

/// A malformed flat block: an out-of-range index, a bad length, or an
/// invalid enum tag. Carries a human-readable description of the defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatError(pub String);

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed flat block: {}", self.0)
    }
}

impl std::error::Error for FlatError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FlatError> {
    Err(FlatError(msg.into()))
}

// ----- primitive readers ------------------------------------------------------

/// Reads the little-endian `u32` at byte offset `at`.
pub fn read_u32(bytes: &[u8], at: usize) -> Result<u32, FlatError> {
    match bytes.get(at..at + 4) {
        Some(b) => Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice"))),
        None => err(format!("u32 read past end (offset {at}, len {})", bytes.len())),
    }
}

/// Reads the little-endian `u64` at byte offset `at`.
pub fn read_u64(bytes: &[u8], at: usize) -> Result<u64, FlatError> {
    match bytes.get(at..at + 8) {
        Some(b) => Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice"))),
        None => err(format!("u64 read past end (offset {at}, len {})", bytes.len())),
    }
}

// ----- symbol table -----------------------------------------------------------

/// Builds the file-local symbol table: deduplicates the [`Sym`]s an
/// encoder touches and assigns dense `u32` ids in first-use order (which
/// makes the encoding deterministic given a deterministic visit order).
#[derive(Default)]
pub struct SymTableBuilder {
    ids: HashMap<Sym, u32>,
    order: Vec<Sym>,
}

impl SymTableBuilder {
    /// An empty table.
    pub fn new() -> SymTableBuilder {
        SymTableBuilder::default()
    }

    /// The file-local id of `sym`, interning it on first use.
    pub fn id(&mut self, sym: Sym) -> u32 {
        if let Some(&id) = self.ids.get(&sym) {
            return id;
        }
        let id = u32::try_from(self.order.len()).expect("symbol table overflow");
        self.ids.insert(sym, id);
        self.order.push(sym);
        id
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no symbol was interned.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Encodes the table: count, cumulative offsets, string blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        let mut cum = 0u32;
        out.extend_from_slice(&cum.to_le_bytes());
        for &sym in &self.order {
            cum = cum
                .checked_add(sym.as_str().len() as u32)
                .expect("symbol blob overflow");
            out.extend_from_slice(&cum.to_le_bytes());
        }
        for &sym in &self.order {
            out.extend_from_slice(sym.as_str().as_bytes());
        }
        out
    }
}

/// A decoded symbol table: file-local ids resolved back to process-wide
/// [`Sym`]s (strings are re-interned once at decode time).
pub struct SymTable {
    syms: Vec<Sym>,
}

impl SymTable {
    /// Decodes a table encoded by [`SymTableBuilder::encode`].
    ///
    /// # Errors
    ///
    /// [`FlatError`] when the block is truncated, offsets are not
    /// monotonic, or the blob is not UTF-8.
    pub fn decode(bytes: &[u8]) -> Result<SymTable, FlatError> {
        let count = read_u32(bytes, 0)? as usize;
        let offsets_end = 4usize
            .checked_add((count + 1) * 4)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| FlatError("symbol offsets past end".into()))?;
        let blob = &bytes[offsets_end..];
        let mut syms = Vec::with_capacity(count);
        let mut prev = read_u32(bytes, 4)?;
        if prev != 0 {
            return err("symbol offsets must start at 0");
        }
        for i in 0..count {
            let next = read_u32(bytes, 4 + (i + 1) * 4)?;
            if next < prev || next as usize > blob.len() {
                return err(format!("symbol offset {next} out of range"));
            }
            let s = std::str::from_utf8(&blob[prev as usize..next as usize])
                .map_err(|e| FlatError(format!("symbol blob is not UTF-8: {e}")))?;
            syms.push(Sym::intern(s));
            prev = next;
        }
        Ok(SymTable { syms })
    }

    /// Number of symbols in the table.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// `true` when the table holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Resolves a file-local id.
    ///
    /// # Errors
    ///
    /// [`FlatError`] when `id` is out of range.
    pub fn sym(&self, id: u32) -> Result<Sym, FlatError> {
        match self.syms.get(id as usize) {
            Some(&s) => Ok(s),
            None => err(format!("symbol id {id} out of range ({})", self.syms.len())),
        }
    }
}

// ----- paths ------------------------------------------------------------------

/// Accumulates name paths into the flat prefix pool + path records.
/// Patterns reference paths by the dense index [`PathsBuilder::push`]
/// returns.
#[derive(Default)]
pub struct PathsBuilder {
    records: Vec<u8>,
    prefix_pool: Vec<u8>,
    count: u32,
}

impl PathsBuilder {
    /// An empty builder.
    pub fn new() -> PathsBuilder {
        PathsBuilder::default()
    }

    /// Appends `path`, returning its record index.
    pub fn push(&mut self, path: &NamePath, syms: &mut SymTableBuilder) -> u32 {
        let prefix_off = (self.prefix_pool.len() / PREFIX_ELEM_BYTES) as u32;
        for &(sym, idx) in &path.prefix {
            self.prefix_pool.extend_from_slice(&syms.id(sym).to_le_bytes());
            self.prefix_pool.extend_from_slice(&idx.to_le_bytes());
        }
        let end = match path.end {
            Some(sym) => syms.id(sym),
            None => EPSILON,
        };
        self.records.extend_from_slice(&prefix_off.to_le_bytes());
        self.records
            .extend_from_slice(&(path.prefix.len() as u32).to_le_bytes());
        self.records.extend_from_slice(&end.to_le_bytes());
        let idx = self.count;
        self.count += 1;
        idx
    }

    /// Paths pushed so far.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// `true` when no path was pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `(path records, prefix pool)` blocks.
    pub fn finish(self) -> (Vec<u8>, Vec<u8>) {
        (self.records, self.prefix_pool)
    }
}

/// Read-side view over the path records and prefix pool; paths decode on
/// demand by record index.
pub struct PathsView<'a> {
    records: &'a [u8],
    prefix_pool: &'a [u8],
}

impl<'a> PathsView<'a> {
    /// Validates block sizes and wraps the borrowed sections.
    ///
    /// # Errors
    ///
    /// [`FlatError`] when either block length is not a whole number of
    /// records/elements.
    pub fn parse(records: &'a [u8], prefix_pool: &'a [u8]) -> Result<PathsView<'a>, FlatError> {
        if records.len() % PATH_RECORD_BYTES != 0 {
            return err(format!("path records length {} not a record multiple", records.len()));
        }
        if prefix_pool.len() % PREFIX_ELEM_BYTES != 0 {
            return err(format!("prefix pool length {} not an element multiple", prefix_pool.len()));
        }
        Ok(PathsView { records, prefix_pool })
    }

    /// Number of path records.
    pub fn len(&self) -> u32 {
        (self.records.len() / PATH_RECORD_BYTES) as u32
    }

    /// `true` when there are no path records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Decodes the path at record `idx`.
    ///
    /// # Errors
    ///
    /// [`FlatError`] for out-of-range record, prefix, or symbol indices.
    pub fn get(&self, idx: u32, syms: &SymTable) -> Result<NamePath, FlatError> {
        if idx >= self.len() {
            return err(format!("path index {idx} out of range ({})", self.len()));
        }
        let at = idx as usize * PATH_RECORD_BYTES;
        let prefix_off = read_u32(self.records, at)? as usize;
        let prefix_len = read_u32(self.records, at + 4)? as usize;
        let end = read_u32(self.records, at + 8)?;
        let pool_elems = self.prefix_pool.len() / PREFIX_ELEM_BYTES;
        if prefix_off.checked_add(prefix_len).is_none_or(|e| e > pool_elems) {
            return err(format!("prefix range {prefix_off}+{prefix_len} out of pool ({pool_elems})"));
        }
        let mut prefix = Vec::with_capacity(prefix_len);
        for i in 0..prefix_len {
            let at = (prefix_off + i) * PREFIX_ELEM_BYTES;
            let sym = syms.sym(read_u32(self.prefix_pool, at)?)?;
            let idx = read_u32(self.prefix_pool, at + 4)?;
            prefix.push((sym, idx));
        }
        Ok(match end {
            EPSILON => NamePath::symbolic(prefix),
            id => NamePath::concrete(prefix, syms.sym(id)?),
        })
    }
}

// ----- patterns ---------------------------------------------------------------

/// Encodes `patterns` into fixed-width records, pushing their paths into
/// `paths` (condition paths first, then deduction paths, per pattern, so
/// each pattern's ranges are contiguous).
pub fn encode_patterns(
    patterns: &[NamePattern],
    paths: &mut PathsBuilder,
    syms: &mut SymTableBuilder,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(patterns.len() * PATTERN_RECORD_BYTES);
    for p in patterns {
        let ty: u32 = match p.ty {
            PatternType::Consistency => 0,
            PatternType::ConfusingWord => 1,
        };
        let cond_off = paths.len();
        for c in &p.condition {
            paths.push(c, syms);
        }
        let ded_off = paths.len();
        for d in &p.deduction {
            paths.push(d, syms);
        }
        out.extend_from_slice(&ty.to_le_bytes());
        out.extend_from_slice(&cond_off.to_le_bytes());
        out.extend_from_slice(&(p.condition.len() as u32).to_le_bytes());
        out.extend_from_slice(&ded_off.to_le_bytes());
        out.extend_from_slice(&(p.deduction.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // padding to 8-byte counters
        out.extend_from_slice(&p.support.to_le_bytes());
        out.extend_from_slice(&p.matches.to_le_bytes());
        out.extend_from_slice(&p.satisfactions.to_le_bytes());
    }
    out
}

/// Decodes pattern records written by [`encode_patterns`].
///
/// # Errors
///
/// [`FlatError`] for truncated records, unknown pattern types, or path
/// ranges that violate the type's symbolic/concrete deduction invariant
/// (which the in-memory constructors enforce with assertions — the decoder
/// must reject such bytes rather than panic).
pub fn decode_patterns(
    bytes: &[u8],
    paths: &PathsView<'_>,
    syms: &SymTable,
) -> Result<Vec<NamePattern>, FlatError> {
    if bytes.len() % PATTERN_RECORD_BYTES != 0 {
        return err(format!("pattern block length {} not a record multiple", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / PATTERN_RECORD_BYTES);
    for at in (0..bytes.len()).step_by(PATTERN_RECORD_BYTES) {
        let ty = match read_u32(bytes, at)? {
            0 => PatternType::Consistency,
            1 => PatternType::ConfusingWord,
            other => return err(format!("unknown pattern type tag {other}")),
        };
        let cond_off = read_u32(bytes, at + 4)?;
        let cond_len = read_u32(bytes, at + 8)?;
        let ded_off = read_u32(bytes, at + 12)?;
        let ded_len = read_u32(bytes, at + 16)?;
        let range = |off: u32, len: u32| -> Result<Vec<NamePath>, FlatError> {
            let mut v = Vec::with_capacity(len as usize);
            for i in 0..len {
                let idx = off
                    .checked_add(i)
                    .ok_or_else(|| FlatError("path range overflow".into()))?;
                v.push(paths.get(idx, syms)?);
            }
            Ok(v)
        };
        let condition = range(cond_off, cond_len)?;
        let deduction = range(ded_off, ded_len)?;
        match ty {
            PatternType::Consistency => {
                if deduction.len() != 2 || deduction.iter().any(NamePath::is_concrete) {
                    return err("consistency pattern needs two symbolic deductions");
                }
            }
            PatternType::ConfusingWord => {
                if deduction.len() != 1 || !deduction[0].is_concrete() {
                    return err("confusing-word pattern needs one concrete deduction");
                }
            }
        }
        out.push(NamePattern {
            ty,
            condition,
            deduction,
            support: read_u64(bytes, at + 24)?,
            matches: read_u64(bytes, at + 32)?,
            satisfactions: read_u64(bytes, at + 40)?,
        });
    }
    Ok(out)
}

// ----- confusing pairs --------------------------------------------------------

/// Encodes confusing word pairs as fixed-width records, sorted by the
/// interned strings (not by [`Sym`] id, which is process-local), so the
/// same logical set always produces the same bytes.
pub fn encode_pairs(pairs: &ConfusingPairs, syms: &mut SymTableBuilder) -> Vec<u8> {
    let mut sorted: Vec<(Sym, Sym, u64)> = pairs
        .iter()
        .map(|(&(a, b), &n)| (a, b, n))
        .collect();
    sorted.sort_by(|x, y| {
        (x.0.as_str(), x.1.as_str()).cmp(&(y.0.as_str(), y.1.as_str()))
    });
    let mut out = Vec::with_capacity(sorted.len() * PAIR_RECORD_BYTES);
    for (a, b, n) in sorted {
        out.extend_from_slice(&syms.id(a).to_le_bytes());
        out.extend_from_slice(&syms.id(b).to_le_bytes());
        out.extend_from_slice(&n.to_le_bytes());
    }
    out
}

/// Decodes pair records written by [`encode_pairs`]. `correct_words` is
/// rebuilt by re-inserting each pair, exactly as the JSON path does.
///
/// # Errors
///
/// [`FlatError`] for truncated records or out-of-range symbol ids.
pub fn decode_pairs(bytes: &[u8], syms: &SymTable) -> Result<ConfusingPairs, FlatError> {
    if bytes.len() % PAIR_RECORD_BYTES != 0 {
        return err(format!("pair block length {} not a record multiple", bytes.len()));
    }
    let mut out = ConfusingPairs::new();
    for at in (0..bytes.len()).step_by(PAIR_RECORD_BYTES) {
        let a = syms.sym(read_u32(bytes, at)?)?;
        let b = syms.sym(read_u32(bytes, at + 4)?)?;
        let n = read_u64(bytes, at + 8)?;
        out.insert_count(a, b, n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Sym {
        Sym::intern(s)
    }

    fn sample_paths() -> Vec<NamePath> {
        vec![
            NamePath::concrete(vec![(sym("Call"), 0), (sym("NumST(1)"), 0)], sym("self")),
            NamePath::symbolic(vec![(sym("Assign"), 1)]),
            NamePath::concrete(Vec::new(), sym("x")),
            NamePath::symbolic(Vec::new()),
        ]
    }

    #[test]
    fn symbol_table_round_trips() {
        let mut b = SymTableBuilder::new();
        let ids: Vec<u32> = ["alpha", "beta", "alpha", "γ-unicode", ""]
            .iter()
            .map(|s| b.id(sym(s)))
            .collect();
        assert_eq!(ids, [0, 1, 0, 2, 3]);
        let table = SymTable::decode(&b.encode()).unwrap();
        assert_eq!(table.len(), 4);
        assert_eq!(table.sym(0).unwrap(), sym("alpha"));
        assert_eq!(table.sym(2).unwrap(), sym("γ-unicode"));
        assert_eq!(table.sym(3).unwrap(), sym(""));
        assert!(table.sym(4).is_err());
    }

    #[test]
    fn paths_round_trip_including_epsilon() {
        let mut syms = SymTableBuilder::new();
        let mut b = PathsBuilder::new();
        let originals = sample_paths();
        for p in &originals {
            b.push(p, &mut syms);
        }
        let (records, pool) = b.finish();
        let table = SymTable::decode(&syms.encode()).unwrap();
        let view = PathsView::parse(&records, &pool).unwrap();
        assert_eq!(view.len(), originals.len() as u32);
        for (i, p) in originals.iter().enumerate() {
            assert_eq!(&view.get(i as u32, &table).unwrap(), p);
        }
        assert!(view.get(originals.len() as u32, &table).is_err());
    }

    #[test]
    fn patterns_round_trip() {
        let paths = sample_paths();
        let originals = vec![
            NamePattern::consistency(
                vec![paths[0].clone(), paths[2].clone()],
                paths[1].clone(),
                paths[3].clone(),
            ),
            NamePattern::confusing_word(vec![paths[0].clone()], paths[2].clone()),
        ];
        let mut with_counts = originals.clone();
        with_counts[0].support = 9;
        with_counts[0].matches = 8;
        with_counts[0].satisfactions = 7;

        let mut syms = SymTableBuilder::new();
        let mut pb = PathsBuilder::new();
        let block = encode_patterns(&with_counts, &mut pb, &mut syms);
        let (records, pool) = pb.finish();
        let table = SymTable::decode(&syms.encode()).unwrap();
        let view = PathsView::parse(&records, &pool).unwrap();
        let back = decode_patterns(&block, &view, &table).unwrap();
        assert_eq!(back, with_counts);
    }

    #[test]
    fn pattern_decoder_rejects_invariant_violations() {
        // A consistency record whose deduction range points at a concrete
        // path must be rejected, not asserted on.
        let mut syms = SymTableBuilder::new();
        let mut pb = PathsBuilder::new();
        let concrete = NamePath::concrete(Vec::new(), sym("x"));
        let p = NamePattern::confusing_word(Vec::new(), concrete);
        let mut block = encode_patterns(&[p], &mut pb, &mut syms);
        block[0] = 0; // rewrite the type tag to Consistency
        let (records, pool) = pb.finish();
        let table = SymTable::decode(&syms.encode()).unwrap();
        let view = PathsView::parse(&records, &pool).unwrap();
        assert!(decode_patterns(&block, &view, &table).is_err());
    }

    #[test]
    fn pattern_decoder_rejects_bad_tags_and_ranges() {
        let table = SymTable::decode(&SymTableBuilder::new().encode()).unwrap();
        let view = PathsView::parse(&[], &[]).unwrap();
        // Unknown type tag.
        let mut rec = vec![0u8; PATTERN_RECORD_BYTES];
        rec[0] = 7;
        assert!(decode_patterns(&rec, &view, &table).is_err());
        // Truncated block.
        assert!(decode_patterns(&rec[..10], &view, &table).is_err());
        // Out-of-range path index.
        let mut rec = vec![0u8; PATTERN_RECORD_BYTES];
        rec[0] = 1; // confusing-word
        rec[16] = 1; // ded_len = 1, but the path view is empty
        assert!(decode_patterns(&rec, &view, &table).is_err());
    }

    #[test]
    fn pairs_round_trip_and_rebuild_correct_words() {
        let mut pairs = ConfusingPairs::new();
        pairs.insert(sym("True"), sym("Equal"));
        pairs.insert(sym("True"), sym("Equal"));
        pairs.insert(sym("size"), sym("count"));
        let mut syms = SymTableBuilder::new();
        let block = encode_pairs(&pairs, &mut syms);
        assert_eq!(block.len(), 2 * PAIR_RECORD_BYTES);
        let table = SymTable::decode(&syms.encode()).unwrap();
        let back = decode_pairs(&block, &table).unwrap();
        assert_eq!(back.count(sym("True"), sym("Equal")), 2);
        assert_eq!(back.count(sym("size"), sym("count")), 1);
        assert!(back.correct_words.contains(&sym("Equal")));
        assert!(back.correct_words.contains(&sym("count")));
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn pair_encoding_is_sorted_by_string() {
        // Intern in reverse order so Sym ids disagree with string order.
        let z = sym("zzz-flat-test");
        let a = sym("aaa-flat-test");
        let mut pairs = ConfusingPairs::new();
        pairs.insert(z, a);
        pairs.insert(a, z);
        let mut syms = SymTableBuilder::new();
        let block = encode_pairs(&pairs, &mut syms);
        let table = SymTable::decode(&syms.encode()).unwrap();
        let first = table.sym(read_u32(&block, 0).unwrap()).unwrap();
        assert_eq!(first, a, "records sort by string, not by interning order");
    }

    #[test]
    fn truncated_symbol_tables_error_not_panic() {
        let mut b = SymTableBuilder::new();
        b.id(sym("hello"));
        b.id(sym("world"));
        let full = b.encode();
        for cut in 0..full.len() {
            // Every prefix must decode to Ok (shorter table) or Err —
            // never panic or read out of bounds.
            let _ = SymTable::decode(&full[..cut]);
        }
    }
}
