//! The frequent-pattern tree underlying the mining algorithm (§3.3).
//!
//! Transactions are canonically sorted lists of name paths whose tail is the
//! deduction. Each tree node stores one path, its occurrence count, and the
//! `isLast` flag marking transaction ends, exactly as in Algorithm 1.

use namer_syntax::namepath::NamePath;
use std::collections::HashMap;

/// Arena-allocated FP tree.
#[derive(Debug)]
pub struct FpTree {
    nodes: Vec<Node>,
}

/// Handle to an FP-tree node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeRef(usize);

#[derive(Debug)]
struct Node {
    path: Option<NamePath>,
    count: u64,
    is_last: bool,
    children: HashMap<NamePath, usize>,
}

impl Default for FpTree {
    fn default() -> FpTree {
        FpTree::new()
    }
}

impl FpTree {
    /// Creates a tree with only the (path-less) root.
    pub fn new() -> FpTree {
        FpTree {
            nodes: vec![Node {
                path: None,
                count: 0,
                is_last: false,
                children: HashMap::new(),
            }],
        }
    }

    /// The root handle.
    pub fn root(&self) -> NodeRef {
        NodeRef(0)
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Inserts one transaction (Algorithm 1, line 7), incrementing counts
    /// along the branch and flagging the final node with `isLast`.
    pub fn update(&mut self, transaction: &[NamePath]) {
        let mut cur = 0usize;
        for p in transaction {
            let next = match self.nodes[cur].children.get(p) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node {
                        path: Some(p.clone()),
                        count: 0,
                        is_last: false,
                        children: HashMap::new(),
                    });
                    self.nodes[cur].children.insert(p.clone(), n);
                    n
                }
            };
            self.nodes[next].count += 1;
            cur = next;
        }
        if cur != 0 {
            self.nodes[cur].is_last = true;
        }
    }

    /// The path stored at `node` (`None` for the root).
    pub fn path(&self, node: NodeRef) -> Option<&NamePath> {
        self.nodes[node.0].path.as_ref()
    }

    /// Occurrence count of `node`.
    pub fn count(&self, node: NodeRef) -> u64 {
        self.nodes[node.0].count
    }

    /// Whether a transaction ends at `node`.
    pub fn is_last(&self, node: NodeRef) -> bool {
        self.nodes[node.0].is_last
    }

    /// Child handles of `node` (unordered).
    pub fn children(&self, node: NodeRef) -> Vec<NodeRef> {
        let mut kids: Vec<NodeRef> = self.nodes[node.0].children.values().map(|&n| NodeRef(n)).collect();
        // Deterministic traversal order for reproducible mining output.
        kids.sort_by(|a, b| self.nodes[a.0].path.cmp(&self.nodes[b.0].path));
        kids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::Sym;

    fn np(tag: &str) -> NamePath {
        NamePath::concrete(vec![(Sym::intern(tag), 0)], Sym::intern(tag))
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = FpTree::new();
        t.update(&[np("A"), np("B")]);
        t.update(&[np("A"), np("C")]);
        // root + A + B + C
        assert_eq!(t.len(), 4);
        let a = t.children(t.root())[0];
        assert_eq!(t.count(a), 2);
    }

    #[test]
    fn counts_accumulate() {
        let mut t = FpTree::new();
        for _ in 0..5 {
            t.update(&[np("A"), np("B")]);
        }
        let a = t.children(t.root())[0];
        let b = t.children(a)[0];
        assert_eq!(t.count(a), 5);
        assert_eq!(t.count(b), 5);
    }

    #[test]
    fn is_last_marks_transaction_ends() {
        let mut t = FpTree::new();
        t.update(&[np("A"), np("B")]);
        t.update(&[np("A")]);
        let a = t.children(t.root())[0];
        let b = t.children(a)[0];
        assert!(t.is_last(a));
        assert!(t.is_last(b));
    }

    #[test]
    fn interior_nodes_are_not_last() {
        let mut t = FpTree::new();
        t.update(&[np("A"), np("B")]);
        let a = t.children(t.root())[0];
        assert!(!t.is_last(a));
    }

    #[test]
    fn figure3_style_tree() {
        // A Figure 3 (a)-shaped tree: NP1 with branches NP2, NP3→NP5, and
        // NP3→NP4→NP6, where NP4 is also a transaction end (isLast).
        let mut t = FpTree::new();
        let (np1, np2, np3, np4, np5, np6) =
            (np("NP1"), np("NP2"), np("NP3"), np("NP4"), np("NP5"), np("NP6"));
        for _ in 0..33 {
            t.update(&[np1.clone(), np2.clone()]);
        }
        for _ in 0..15 {
            t.update(&[np1.clone(), np3.clone(), np5.clone()]);
        }
        for _ in 0..13 {
            t.update(&[np1.clone(), np3.clone(), np4.clone(), np6.clone()]);
        }
        t.update(&[np1.clone(), np3.clone(), np4.clone()]);
        let n1 = t.children(t.root())[0];
        assert_eq!(t.count(n1), 62);
        let kids = t.children(n1);
        let counts: Vec<u64> = kids.iter().map(|&k| t.count(k)).collect();
        assert!(counts.contains(&33) && counts.contains(&29), "{counts:?}");
        // NP4 carries both the through-traffic to NP6 and its own ending.
        let n3 = *kids
            .iter()
            .find(|&&k| t.path(k) == Some(&np3))
            .unwrap();
        let n4 = *t
            .children(n3)
            .iter()
            .find(|&&k| t.path(k) == Some(&np4))
            .unwrap();
        assert_eq!(t.count(n4), 14);
        assert!(t.is_last(n4));
    }

    #[test]
    fn empty_transaction_is_a_noop() {
        let mut t = FpTree::new();
        t.update(&[]);
        assert!(t.is_empty());
        assert!(!t.is_last(t.root()));
    }
}
