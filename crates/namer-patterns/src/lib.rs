//! Name patterns and Big Code mining (§3.2–§3.3 of the Namer paper).
//!
//! This crate provides:
//!
//! * [`pattern`] — [`NamePattern`]s (consistency and confusing-word types)
//!   with the paper's match / satisfaction / violation semantics;
//! * [`fptree`] — the frequent-pattern tree of Algorithm 1;
//! * [`mining`] — Algorithms 1 & 2 plus `pruneUncommon`, and the
//!   [`PatternSet`] matcher used at inference time;
//! * [`shard`] — pattern-axis sharding: prefix-disjoint [`PatternShards`]
//!   built from a [`ShardPlan`], so huge mined sets scan across cores
//!   (DESIGN.md §9);
//! * [`confusion`] — confusing word pairs mined from commit histories via
//!   AST diffing;
//! * [`flat`] — the flat fixed-width pattern/path/pair layout used by the
//!   binary model format (DESIGN.md §12).
//!
//! # Examples
//!
//! ```
//! use namer_patterns::{mine_patterns, ConfusingPairs, MiningConfig, PathSet, PatternType};
//! use namer_syntax::{namepath, python, stmt, transform, Sym};
//!
//! # fn paths(src: &str) -> PathSet {
//! #     let file = python::parse(src).unwrap();
//! #     let s = &stmt::extract(&file)[0];
//! #     let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
//! #     PathSet::new(namepath::extract(&plus, 10))
//! # }
//! let mut stmts: Vec<PathSet> = (0..40).map(|_| paths("self.assertEqual(v, 1)\n")).collect();
//! stmts.push(paths("self.assertTrue(v, 1)\n"));
//! let mut pairs = ConfusingPairs::new();
//! pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
//! let config = MiningConfig { min_path_count: 2, min_support: 5, ..MiningConfig::default() };
//! let patterns = mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), &config);
//! assert!(!patterns.is_empty());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod flat;
pub mod fptree;
pub mod mining;
pub mod pattern;
pub mod shard;

pub use confusion::{diff_word_pairs, ConfusingPairs};
pub use fptree::FpTree;
pub use mining::{
    mine_patterns, mine_patterns_observed, resolve_threads, MatchScratch, MiningConfig, PathSet,
    PatternSet,
};
pub use pattern::{NamePattern, PatternType, Relation, ViolationDetail};
pub use shard::{merge_shard_hits, PatternShards, ShardHit, ShardPlan};
