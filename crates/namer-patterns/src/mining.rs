//! Mining name patterns from Big Code (Algorithms 1 and 2, §3.3) and
//! matching statements against the mined set.

use crate::confusion::ConfusingPairs;
use crate::fptree::{FpTree, NodeRef};
use crate::pattern::{NamePattern, PatternType, Relation};
use crate::shard::{PatternShards, ShardPlan};
use namer_observe::{Counter, Observer, Phase};
use namer_syntax::namepath::NamePath;
use namer_syntax::{PrefixId, Sym};
use std::collections::{HashMap, HashSet};

/// Regularisation knobs (§5.1 of the paper).
#[derive(Clone, Debug)]
pub struct MiningConfig {
    /// Keep only name paths occurring more than this often (paper: 10).
    pub min_path_count: u64,
    /// Maximum number of name paths in a condition (paper: 10).
    pub max_cond_paths: usize,
    /// `combinations` (Algorithm 2 line 7) enumerates all condition subsets
    /// of at most this size, in addition to the full condition set. Bounds
    /// the candidate explosion while still producing the general few-path
    /// conditions of Figure 2 (e).
    pub max_subset_size: usize,
    /// `pruneUncommon`: keep patterns matched at least this often
    /// (paper: 100 for Python, 500 for Java — scaled to corpus size here).
    pub min_support: u64,
    /// `pruneUncommon`: minimum satisfactions/matches ratio (paper: 0.8).
    pub min_satisfaction: f64,
    /// Worker threads for the `pruneUncommon` recount, the dominant mining
    /// cost (`0` = all available cores). Results are identical at any count.
    pub threads: usize,
    /// Pattern-axis sharding for the recount (DESIGN.md §9): each statement
    /// chunk is additionally split across prefix-disjoint pattern shards.
    /// Like `threads`, this only changes scheduling, never results.
    pub shard_plan: ShardPlan,
}

impl Default for MiningConfig {
    fn default() -> MiningConfig {
        MiningConfig {
            min_path_count: 10,
            max_cond_paths: 10,
            max_subset_size: 3,
            min_support: 100,
            min_satisfaction: 0.8,
            threads: 1,
            shard_plan: ShardPlan::unsharded(),
        }
    }
}

/// Resolves a requested worker-thread count: `0` means one worker per
/// available core, any other value is used as given.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// The name paths of one statement, with an interned-prefix→end index for
/// fast matching (statement prefixes are unique — see §3.1).
///
/// Prefixes are interned into dense [`PrefixId`]s once at construction, so
/// every subsequent lookup in the match loop hashes a `u32` instead of a
/// `Vec<(Sym, u32)>`.
#[derive(Clone, Debug)]
pub struct PathSet {
    /// The extracted (concrete) name paths.
    pub paths: Vec<NamePath>,
    /// Interned prefix of each path, parallel to `paths`.
    prefix_ids: Vec<PrefixId>,
    by_prefix: HashMap<PrefixId, Sym>,
}

impl PathSet {
    /// Builds the index for one statement's paths.
    pub fn new(paths: Vec<NamePath>) -> PathSet {
        let prefix_ids: Vec<PrefixId> = paths.iter().map(NamePath::prefix_id).collect();
        let by_prefix = paths
            .iter()
            .zip(&prefix_ids)
            .filter_map(|(p, &id)| p.end.map(|e| (id, e)))
            .collect();
        PathSet {
            paths,
            prefix_ids,
            by_prefix,
        }
    }

    /// The end subtoken at `prefix`, if this statement has that path.
    pub fn end_at(&self, prefix: &[(Sym, u32)]) -> Option<Sym> {
        self.end_at_id(PrefixId::intern(prefix))
    }

    /// The end subtoken at the interned prefix `id`, if this statement has
    /// that path.
    pub fn end_at_id(&self, id: PrefixId) -> Option<Sym> {
        self.by_prefix.get(&id).copied()
    }

    /// The interned prefix of each path, parallel to [`PathSet::paths`].
    pub fn prefix_ids(&self) -> &[PrefixId] {
        &self.prefix_ids
    }

    /// Does this statement contain `path` under the `=` operator?
    pub fn contains_eq(&self, path: &NamePath) -> bool {
        match (self.end_at(&path.prefix), path.end) {
            (Some(_), None) => true,
            (Some(e), Some(want)) => e == want,
            (None, _) => false,
        }
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` when the statement produced no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Mines name patterns of type `ty` from `stmts` (Algorithm 1).
///
/// `pairs` supplies the confusing word pairs and is required for
/// [`PatternType::ConfusingWord`].
///
/// # Panics
///
/// Panics if `ty` is `ConfusingWord` and `pairs` is `None`.
pub fn mine_patterns(
    stmts: &[PathSet],
    ty: PatternType,
    pairs: Option<&ConfusingPairs>,
    config: &MiningConfig,
) -> Vec<NamePattern> {
    mine_patterns_observed(stmts, ty, pairs, config, Observer::none())
}

/// [`mine_patterns`] with observability: candidate generation and the
/// `pruneUncommon` recount report as [`Phase::MineCandidates`] /
/// [`Phase::MinePrune`], and the candidate count lands in
/// [`Counter::PatternCandidates`]. Candidate generation is serial, so the
/// counter is identical at any thread/shard combination (DESIGN.md §10).
///
/// # Panics
///
/// Panics if `ty` is `ConfusingWord` and `pairs` is `None`.
pub fn mine_patterns_observed(
    stmts: &[PathSet],
    ty: PatternType,
    pairs: Option<&ConfusingPairs>,
    config: &MiningConfig,
    obs: Observer<'_>,
) -> Vec<NamePattern> {
    if ty == PatternType::ConfusingWord {
        assert!(pairs.is_some(), "confusing-word mining needs mined pairs");
    }
    let candidates = {
        let _span = obs.phase(Phase::MineCandidates);
        gen_candidates(stmts, ty, pairs, config)
    };
    obs.add(Counter::PatternCandidates, candidates.len() as u64);
    let _span = obs.phase(Phase::MinePrune);
    prune_uncommon(candidates, stmts, config)
}

/// Algorithm 1 lines 1–8: frequency-filter paths, grow the FP tree, and
/// walk it into candidate patterns (everything before `pruneUncommon`).
fn gen_candidates(
    stmts: &[PathSet],
    ty: PatternType,
    pairs: Option<&ConfusingPairs>,
    config: &MiningConfig,
) -> Vec<NamePattern> {
    // §5.1: drop infrequent name paths before growing the tree.
    let mut freq: HashMap<&NamePath, u64> = HashMap::new();
    for s in stmts {
        for p in &s.paths {
            *freq.entry(p).or_default() += 1;
        }
    }
    let frequent: HashSet<&NamePath> = freq
        .iter()
        .filter(|(_, &c)| c > config.min_path_count)
        .map(|(&p, _)| p)
        .collect();

    let mut tree = FpTree::new();
    for s in stmts {
        let paths: Vec<&NamePath> = s.paths.iter().filter(|p| frequent.contains(p)).collect();
        match ty {
            PatternType::ConfusingWord => {
                let correct = &pairs.expect("checked above").correct_words;
                for (i, d) in paths.iter().enumerate() {
                    let Some(end) = d.end else { continue };
                    if !correct.contains(&end) {
                        continue;
                    }
                    let mut cond: Vec<NamePath> = paths
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, p)| (*p).clone())
                        .collect();
                    cond.sort();
                    cond.truncate(config.max_cond_paths);
                    cond.push((*d).clone());
                    tree.update(&cond);
                }
            }
            PatternType::Consistency => {
                // Deduction pairs come from the *unfiltered* statement paths:
                // their ends are made symbolic, so per-name rarity must not
                // regularise them away; only condition paths are filtered.
                let all: Vec<&NamePath> = s.paths.iter().collect();
                for i in 0..all.len() {
                    for j in (i + 1)..all.len() {
                        if all[i].end != all[j].end || all[i].prefix == all[j].prefix {
                            continue;
                        }
                        let mut cond: Vec<NamePath> = paths
                            .iter()
                            .filter(|p| p.prefix != all[i].prefix && p.prefix != all[j].prefix)
                            .map(|p| (*p).clone())
                            .collect();
                        cond.sort();
                        cond.truncate(config.max_cond_paths);
                        let mut ded = vec![all[i].to_symbolic(), all[j].to_symbolic()];
                        ded.sort();
                        cond.extend(ded);
                        tree.update(&cond);
                    }
                }
            }
        }
    }

    gen_patterns(&tree, ty, config)
}

/// Algorithm 2: walk the FP tree, emitting (condition, deduction) pairs at
/// every `isLast` node, enumerating condition subsets when small.
fn gen_patterns(tree: &FpTree, ty: PatternType, config: &MiningConfig) -> Vec<NamePattern> {
    let mut acc: HashMap<(Vec<NamePath>, Vec<NamePath>), u64> = HashMap::new();
    let mut stack: Vec<NamePath> = Vec::new();
    gen_rec(tree, tree.root(), ty, config, &mut stack, &mut acc);
    acc.into_iter()
        .map(|((condition, deduction), support)| {
            let mut p = match ty {
                PatternType::Consistency => NamePattern::consistency(
                    condition,
                    deduction[0].clone(),
                    deduction[1].clone(),
                ),
                PatternType::ConfusingWord => {
                    NamePattern::confusing_word(condition, deduction[0].clone())
                }
            };
            p.support = support;
            p
        })
        .collect()
}

fn gen_rec(
    tree: &FpTree,
    node: NodeRef,
    ty: PatternType,
    config: &MiningConfig,
    stack: &mut Vec<NamePath>,
    acc: &mut HashMap<(Vec<NamePath>, Vec<NamePath>), u64>,
) {
    if let Some(p) = tree.path(node) {
        stack.push(p.clone());
    }
    let ded_len = match ty {
        PatternType::Consistency => 2,
        PatternType::ConfusingWord => 1,
    };
    if tree.is_last(node) && stack.len() >= ded_len {
        let (conds, ded) = stack.split_at(stack.len() - ded_len);
        let mut deduction: Vec<NamePath> = ded.to_vec();
        if ty == PatternType::Consistency {
            // Consistency deductions are symbolic.
            deduction = deduction.iter().map(NamePath::to_symbolic).collect();
        }
        let count = tree.count(node);
        // Full condition set.
        let mut add = |cond: Vec<NamePath>| {
            *acc.entry((cond, deduction.clone())).or_default() += count;
        };
        add(conds.to_vec());
        // Subset enumeration (Algorithm 2 line 7), bounded for tractability:
        // all subsets of size ≤ max_subset_size.
        if !conds.is_empty() {
            let n = conds.len();
            let kmax = config.max_subset_size.min(n);
            let mut chosen: Vec<usize> = Vec::new();
            enumerate_subsets(n, kmax, 0, &mut chosen, &mut |idxs: &[usize]| {
                let subset: Vec<NamePath> = idxs.iter().map(|&i| conds[i].clone()).collect();
                *acc.entry((subset, deduction.clone())).or_default() += count;
            });
        }
    }
    for child in tree.children(node) {
        gen_rec(tree, child, ty, config, stack, acc);
    }
    if tree.path(node).is_some() {
        stack.pop();
    }
}

/// Calls `f` on every index subset of `{0..n}` with size in `[0, kmax]`,
/// excluding the full set (added separately by the caller).
fn enumerate_subsets(
    n: usize,
    kmax: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if chosen.len() < n {
        f(chosen);
    }
    if chosen.len() == kmax {
        return;
    }
    for i in start..n {
        chosen.push(i);
        enumerate_subsets(n, kmax, i + 1, chosen, f);
        chosen.pop();
    }
}

/// `pruneUncommon` (Algorithm 1, line 9): recount matches and satisfactions
/// over the dataset and keep patterns that are both frequent and commonly
/// satisfied. The recount — the dominant mining cost — is sharded across
/// `config.threads` workers; per-shard counts are merged by addition, so the
/// result is identical to a serial pass.
fn prune_uncommon(
    mut candidates: Vec<NamePattern>,
    stmts: &[PathSet],
    config: &MiningConfig,
) -> Vec<NamePattern> {
    if candidates.is_empty() {
        return candidates;
    }
    // Cheap pre-filter on FP support to bound the recount.
    candidates.retain(|p| p.support >= config.min_support.max(1) / 2);
    let set = PatternSet::new(candidates);
    let (matches, sats) = count_relations(
        &set,
        stmts,
        resolve_threads(config.threads),
        &config.shard_plan,
    );
    let mut out: Vec<NamePattern> = set
        .patterns
        .into_iter()
        .enumerate()
        .map(|(i, mut p)| {
            p.matches = matches[i];
            p.satisfactions = sats[i];
            p
        })
        .filter(|p| {
            p.matches >= config.min_support && p.satisfaction_rate() >= config.min_satisfaction
        })
        .collect();
    // Deterministic output order: most-supported first.
    out.sort_by(|a, b| {
        b.matches
            .cmp(&a.matches)
            .then_with(|| a.deduction.cmp(&b.deduction))
            .then_with(|| a.condition.cmp(&b.condition))
    });
    out
}

/// Counts per-pattern matches and satisfactions over `stmts`, sharding the
/// statements across `threads` workers and — when `plan` asks for it — each
/// chunk across prefix-disjoint pattern shards. `u64` addition is
/// commutative and the shards partition the pattern set, so the merged
/// counts equal a serial pass at any (threads × shards) combination.
fn count_relations(
    set: &PatternSet,
    stmts: &[PathSet],
    threads: usize,
    plan: &ShardPlan,
) -> (Vec<u64>, Vec<u64>) {
    fn count_chunk(set: &PatternSet, chunk: &[PathSet]) -> (Vec<u64>, Vec<u64>) {
        let mut matches = vec![0u64; set.len()];
        let mut sats = vec![0u64; set.len()];
        let mut scratch = MatchScratch::for_set(set);
        let mut hits: Vec<(usize, Relation)> = Vec::new();
        for s in chunk {
            set.check_into(s, &mut scratch, &mut hits);
            for (idx, rel) in &hits {
                matches[*idx] += 1;
                if *rel == Relation::Satisfied {
                    sats[*idx] += 1;
                }
            }
        }
        (matches, sats)
    }

    fn count_chunk_shard(
        set: &PatternSet,
        shards: &PatternShards,
        shard: usize,
        chunk: &[PathSet],
    ) -> (Vec<u64>, Vec<u64>) {
        let mut matches = vec![0u64; set.len()];
        let mut sats = vec![0u64; set.len()];
        let mut scratch = MatchScratch::for_set(set);
        let mut hits: Vec<crate::shard::ShardHit> = Vec::new();
        for s in chunk {
            set.check_shard_into(shards, shard, s, &mut scratch, &mut hits);
            for h in &hits {
                matches[h.pattern_idx] += 1;
                if h.relation == Relation::Satisfied {
                    sats[h.pattern_idx] += 1;
                }
            }
        }
        (matches, sats)
    }

    let threads = threads.min(stmts.len().max(1));
    let shard_count = plan.effective(set.len());
    if threads <= 1 && shard_count <= 1 {
        return count_chunk(set, stmts);
    }
    let shards = (shard_count > 1).then(|| set.shard(plan));
    let chunk_size = stmts.len().div_ceil(threads).max(1);
    let parts: Vec<(Vec<u64>, Vec<u64>)> = crossbeam::scope(|scope| {
        let shards = shards.as_ref();
        let handles: Vec<_> = stmts
            .chunks(chunk_size)
            .flat_map(|chunk| match shards {
                Some(sh) => (0..sh.shard_count())
                    .map(|s| scope.spawn(move |_| count_chunk_shard(set, sh, s, chunk)))
                    .collect::<Vec<_>>(),
                None => vec![scope.spawn(move |_| count_chunk(set, chunk))],
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("count worker panicked"))
            .collect()
    })
    .expect("count workers do not panic");
    let mut matches = vec![0u64; set.len()];
    let mut sats = vec![0u64; set.len()];
    for (m, s) in parts {
        for i in 0..set.len() {
            matches[i] += m[i];
            sats[i] += s[i];
        }
    }
    (matches, sats)
}

/// An indexed set of patterns supporting fast per-statement checks.
///
/// Condition and deduction prefixes are interned once at construction
/// ([`PrefixId`]), so [`PatternSet::check`] keys every lookup on a `u32`.
#[derive(Debug)]
pub struct PatternSet {
    /// The patterns, in the order given to [`PatternSet::new`].
    pub patterns: Vec<NamePattern>,
    /// Per-pattern condition paths as (interned prefix, required end).
    pub(crate) cond_keys: Vec<Vec<(PrefixId, Option<Sym>)>>,
    /// Per-pattern deduction prefixes, interned.
    pub(crate) ded_keys: Vec<Vec<PrefixId>>,
    /// First-deduction-prefix → ascending pattern indices.
    pub(crate) index: HashMap<PrefixId, Vec<usize>>,
}

impl PatternSet {
    /// Builds the index.
    pub fn new(patterns: Vec<NamePattern>) -> PatternSet {
        let cond_keys: Vec<Vec<(PrefixId, Option<Sym>)>> = patterns
            .iter()
            .map(|p| {
                p.condition
                    .iter()
                    .map(|c| (c.prefix_id(), c.end))
                    .collect()
            })
            .collect();
        let ded_keys: Vec<Vec<PrefixId>> = patterns
            .iter()
            .map(|p| p.deduction.iter().map(NamePath::prefix_id).collect())
            .collect();
        let mut index: HashMap<PrefixId, Vec<usize>> = HashMap::new();
        for (i, keys) in ded_keys.iter().enumerate() {
            index.entry(keys[0]).or_default().push(i);
        }
        PatternSet {
            patterns,
            cond_keys,
            ded_keys,
            index,
        }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` when the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Checks a statement against all patterns whose deduction can possibly
    /// be present, returning `(pattern index, relation)` for every *match*
    /// (satisfied or violated).
    ///
    /// Convenience wrapper over [`PatternSet::check_into`] that allocates
    /// fresh buffers; hot loops should hold a [`MatchScratch`] and an output
    /// `Vec` instead.
    pub fn check(&self, stmt: &PathSet) -> Vec<(usize, Relation)> {
        let mut scratch = MatchScratch::for_set(self);
        let mut out = Vec::new();
        self.check_into(stmt, &mut scratch, &mut out);
        out
    }

    /// Like [`PatternSet::check`], writing into caller-provided buffers.
    /// `out` is cleared first; `scratch` is reusable across any number of
    /// statements and carries no information between calls.
    pub fn check_into(
        &self,
        stmt: &PathSet,
        scratch: &mut MatchScratch,
        out: &mut Vec<(usize, Relation)>,
    ) {
        out.clear();
        scratch.begin(self.patterns.len());
        for &pid in stmt.prefix_ids() {
            let Some(cands) = self.index.get(&pid) else {
                continue;
            };
            for &i in cands {
                if !scratch.first_visit(i) {
                    continue;
                }
                if !self.quick_match(i, stmt) {
                    continue;
                }
                match self.patterns[i].relation(&stmt.paths) {
                    Relation::NoMatch => {}
                    rel => out.push((i, rel)),
                }
            }
        }
    }

    /// O(|C| + |D|) match test over interned prefix keys.
    pub(crate) fn quick_match(&self, i: usize, stmt: &PathSet) -> bool {
        self.cond_keys[i]
            .iter()
            .all(|&(pid, want)| match (stmt.end_at_id(pid), want) {
                (Some(_), None) => true,
                (Some(e), Some(w)) => e == w,
                (None, _) => false,
            })
            && self.ded_keys[i]
                .iter()
                .all(|&pid| stmt.end_at_id(pid).is_some())
    }
}

/// Reusable per-worker scratch for [`PatternSet::check_into`].
///
/// Replaces the per-statement `HashSet` of visited pattern indices with a
/// generation-stamped array: `begin` bumps the generation (O(1) clear) and
/// `first_visit` stamps a slot, so dedup costs one array access per
/// candidate.
#[derive(Clone, Debug, Default)]
pub struct MatchScratch {
    stamps: Vec<u32>,
    generation: u32,
}

impl MatchScratch {
    /// Creates scratch sized for `set`.
    pub fn for_set(set: &PatternSet) -> MatchScratch {
        MatchScratch {
            stamps: vec![0; set.len()],
            generation: 0,
        }
    }

    pub(crate) fn begin(&mut self, len: usize) {
        if self.stamps.len() < len {
            self.stamps.resize(len, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Generation wrapped: old stamps could collide with it; reset.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
    }

    pub(crate) fn first_visit(&mut self, i: usize) -> bool {
        if self.stamps[i] == self.generation {
            false
        } else {
            self.stamps[i] = self.generation;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::{namepath, python, stmt, transform};

    fn path_set(src: &str) -> PathSet {
        let file = python::parse(src).unwrap();
        let s = &stmt::extract(&file)[0];
        let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
        PathSet::new(namepath::extract(&plus, 10))
    }

    fn corpus(specs: &[(&str, usize)]) -> Vec<PathSet> {
        specs
            .iter()
            .flat_map(|&(src, n)| std::iter::repeat_with(move || path_set(src)).take(n))
            .collect()
    }

    fn small_config() -> MiningConfig {
        MiningConfig {
            min_path_count: 2,
            min_support: 5,
            ..MiningConfig::default()
        }
    }

    #[test]
    fn mines_confusing_word_pattern_for_assert_equal() {
        // 40 statements use assertEqual with a numeric second argument; a
        // couple use assertTrue (the mistake). ⟨True, Equal⟩ is a mined pair.
        let stmts = corpus(&[
            ("self.assertEqual(value, 90)\n", 40),
            ("self.assertTrue(value, 90)\n", 2),
        ]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let patterns = mine_patterns(
            &stmts,
            PatternType::ConfusingWord,
            Some(&pairs),
            &small_config(),
        );
        assert!(!patterns.is_empty());
        let set = PatternSet::new(patterns);
        let bad = path_set("self.assertTrue(value, 90)\n");
        let violations: Vec<_> = set
            .check(&bad)
            .into_iter()
            .filter_map(|(i, r)| match r {
                Relation::Violated(v) => Some((i, v)),
                _ => None,
            })
            .collect();
        assert!(!violations.is_empty());
        let v = &violations[0].1;
        assert_eq!(v.original.as_str(), "True");
        assert_eq!(v.suggested.as_str(), "Equal");
    }

    #[test]
    fn satisfied_statements_do_not_violate() {
        let stmts = corpus(&[("self.assertEqual(value, 90)\n", 40)]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let patterns = mine_patterns(
            &stmts,
            PatternType::ConfusingWord,
            Some(&pairs),
            &small_config(),
        );
        let set = PatternSet::new(patterns);
        let good = path_set("self.assertEqual(value, 90)\n");
        assert!(set
            .check(&good)
            .iter()
            .all(|(_, r)| *r == Relation::Satisfied));
    }

    #[test]
    fn mines_consistency_pattern_for_ctor_assign() {
        // `self.x = x` with matching names dominates; `self.help = docstring`
        // should violate the mined pattern.
        let stmts = corpus(&[
            ("self.name = name\n", 20),
            ("self.value = value\n", 20),
            ("self.data = data\n", 20),
        ]);
        let patterns =
            mine_patterns(&stmts, PatternType::Consistency, None, &small_config());
        assert!(!patterns.is_empty(), "no consistency patterns mined");
        let set = PatternSet::new(patterns);
        let bad = path_set("self.help = docstring\n");
        let violated = set
            .check(&bad)
            .into_iter()
            .any(|(_, r)| matches!(r, Relation::Violated(_)));
        assert!(violated);
        let good = path_set("self.title = title\n");
        assert!(set
            .check(&good)
            .iter()
            .all(|(_, r)| *r == Relation::Satisfied));
    }

    #[test]
    fn prune_uncommon_drops_rarely_satisfied_patterns() {
        // The deduction word appears but the idiom is satisfied only half the
        // time — below the 0.8 threshold, so nothing survives.
        let stmts = corpus(&[
            ("self.assertEqual(value, 90)\n", 20),
            ("self.assertTrue(value, 90)\n", 20),
        ]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let patterns = mine_patterns(
            &stmts,
            PatternType::ConfusingWord,
            Some(&pairs),
            &small_config(),
        );
        // Patterns conditioned on paths shared by both variants must be gone.
        let set = PatternSet::new(patterns);
        let bad = path_set("self.assertTrue(value, 90)\n");
        assert!(set
            .check(&bad)
            .iter()
            .all(|(_, r)| !matches!(r, Relation::Violated(_))));
    }

    #[test]
    fn min_support_prunes_rare_idioms() {
        let stmts = corpus(&[("self.assertEqual(value, 90)\n", 3)]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let cfg = MiningConfig {
            min_path_count: 1,
            min_support: 50,
            ..MiningConfig::default()
        };
        let patterns = mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), &cfg);
        assert!(patterns.is_empty());
    }

    #[test]
    fn path_set_contains_eq_semantics() {
        let s = path_set("self.assertTrue(value, 90)\n");
        let true_path = s.paths.iter().find(|p| p.end_str() == Some("True")).unwrap().clone();
        assert!(s.contains_eq(&true_path));
        assert!(s.contains_eq(&true_path.to_symbolic()));
        let mut other = true_path.clone();
        other.end = Some(Sym::intern("Equal"));
        assert!(!s.contains_eq(&other));
    }

    #[test]
    fn check_into_matches_check_across_statements() {
        let stmts = corpus(&[
            ("self.assertEqual(value, 90)\n", 40),
            ("self.assertTrue(value, 90)\n", 2),
        ]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let patterns = mine_patterns(
            &stmts,
            PatternType::ConfusingWord,
            Some(&pairs),
            &small_config(),
        );
        let set = PatternSet::new(patterns);
        // One reused scratch across many statements must agree with the
        // allocating wrapper on every single one.
        let mut scratch = MatchScratch::for_set(&set);
        let mut out = Vec::new();
        for s in stmts.iter().chain(&[
            path_set("self.assertTrue(value, 90)\n"),
            path_set("self.assertEqual(value, 90)\n"),
            path_set("unrelated(x)\n"),
        ]) {
            set.check_into(s, &mut scratch, &mut out);
            assert_eq!(out, set.check(s));
        }
    }

    #[test]
    fn mining_is_thread_count_invariant() {
        let stmts = corpus(&[
            ("self.assertEqual(value, 90)\n", 40),
            ("self.assertTrue(value, 90)\n", 2),
            ("self.name = name\n", 20),
        ]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let serial = small_config();
        for threads in [2, 3, 8] {
            let parallel = MiningConfig {
                threads,
                ..small_config()
            };
            for ty in [PatternType::ConfusingWord, PatternType::Consistency] {
                assert_eq!(
                    mine_patterns(&stmts, ty, Some(&pairs), &serial),
                    mine_patterns(&stmts, ty, Some(&pairs), &parallel),
                    "{ty} mining differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn mining_is_shard_plan_invariant() {
        let stmts = corpus(&[
            ("self.assertEqual(value, 90)\n", 40),
            ("self.assertTrue(value, 90)\n", 2),
            ("self.name = name\n", 20),
            ("self.value = value\n", 20),
        ]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let serial = small_config();
        for (threads, shards) in [(1, 2), (1, 4), (2, 2), (3, 8)] {
            let sharded = MiningConfig {
                threads,
                shard_plan: ShardPlan {
                    shards,
                    min_patterns: 0,
                },
                ..small_config()
            };
            for ty in [PatternType::ConfusingWord, PatternType::Consistency] {
                assert_eq!(
                    mine_patterns(&stmts, ty, Some(&pairs), &serial),
                    mine_patterns(&stmts, ty, Some(&pairs), &sharded),
                    "{ty} mining differs at {threads} threads x {shards} shards"
                );
            }
        }
    }

    #[test]
    fn mining_is_deterministic() {
        let stmts = corpus(&[
            ("self.assertEqual(value, 90)\n", 30),
            ("self.assertTrue(value, 90)\n", 2),
        ]);
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let a = mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), &small_config());
        let b = mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), &small_config());
        assert_eq!(a, b);
    }
}
