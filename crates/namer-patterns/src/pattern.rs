//! Name patterns and their match/satisfaction/violation semantics
//! (Definitions 3.6–3.9 of the paper).

use namer_syntax::namepath::NamePath;
use namer_syntax::Sym;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two pattern types Namer mines (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PatternType {
    /// Code fragments with the same underlying semantics should be named
    /// consistently: `D = {d1, d2}`, both symbolic.
    Consistency,
    /// A subtoken position should hold the *correct* word of a mined
    /// confusing word pair: `D = {d}`, `d.n` concrete.
    ConfusingWord,
}

impl fmt::Display for PatternType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PatternType::Consistency => "consistency",
            PatternType::ConfusingWord => "confusing-word",
        })
    }
}

/// A name pattern: condition `C`, deduction `D` (Definition 3.6).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct NamePattern {
    /// Pattern type, which fixes the satisfaction semantics.
    pub ty: PatternType,
    /// Condition paths (concrete).
    pub condition: Vec<NamePath>,
    /// Deduction paths: two symbolic paths (consistency) or one concrete
    /// path (confusing word).
    pub deduction: Vec<NamePath>,
    /// Occurrence count from mining (FP-tree node count).
    pub support: u64,
    /// Number of matches counted by `pruneUncommon` over the mining dataset.
    pub matches: u64,
    /// Number of satisfactions counted by `pruneUncommon`.
    pub satisfactions: u64,
}

/// Relationship between a statement and a pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Relation {
    /// The statement does not match the pattern.
    NoMatch,
    /// The statement matches and satisfies the pattern.
    Satisfied,
    /// The statement matches but contradicts the deduction.
    Violated(ViolationDetail),
}

/// What exactly was violated, and the suggested fix.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ViolationDetail {
    /// The offending subtoken as written.
    pub original: Sym,
    /// The subtoken the pattern deduces.
    pub suggested: Sym,
    /// The statement path carrying the offending subtoken.
    pub violated_path: NamePath,
}

impl NamePattern {
    /// Creates a consistency pattern from a condition and two deduction
    /// prefixes.
    ///
    /// # Panics
    ///
    /// Panics if either deduction path is concrete.
    pub fn consistency(condition: Vec<NamePath>, d1: NamePath, d2: NamePath) -> NamePattern {
        assert!(!d1.is_concrete() && !d2.is_concrete(), "deductions must be symbolic");
        NamePattern {
            ty: PatternType::Consistency,
            condition,
            deduction: vec![d1, d2],
            support: 0,
            matches: 0,
            satisfactions: 0,
        }
    }

    /// Creates a confusing-word pattern from a condition and one concrete
    /// deduction path ending in the correct word.
    ///
    /// # Panics
    ///
    /// Panics if the deduction path is symbolic.
    pub fn confusing_word(condition: Vec<NamePath>, d: NamePath) -> NamePattern {
        assert!(d.is_concrete(), "confusing-word deduction must be concrete");
        NamePattern {
            ty: PatternType::ConfusingWord,
            condition,
            deduction: vec![d],
            support: 0,
            matches: 0,
            satisfactions: 0,
        }
    }

    /// Satisfaction rate counted by `pruneUncommon` (`0` when never matched).
    pub fn satisfaction_rate(&self) -> f64 {
        if self.matches == 0 {
            0.0
        } else {
            self.satisfactions as f64 / self.matches as f64
        }
    }

    /// The *match* relationship (Definition 3.6): every condition path is
    /// present in `paths` (under `=`) and every deduction prefix is present
    /// (under `∼`).
    pub fn matches(&self, paths: &[NamePath]) -> bool {
        self.condition
            .iter()
            .all(|c| paths.iter().any(|a| c.path_eq(a)))
            && self
                .deduction
                .iter()
                .all(|d| paths.iter().any(|a| d.same_prefix(a)))
    }

    /// Full classification of `paths` against this pattern.
    pub fn relation(&self, paths: &[NamePath]) -> Relation {
        if !self.matches(paths) {
            return Relation::NoMatch;
        }
        match self.ty {
            PatternType::ConfusingWord => {
                let d = &self.deduction[0];
                let expected = d.end.expect("confusing-word deduction is concrete");
                for a in paths.iter().filter(|a| a.same_prefix(d)) {
                    let actual = a.end.expect("statement paths are concrete");
                    if actual != expected {
                        return Relation::Violated(ViolationDetail {
                            original: actual,
                            suggested: expected,
                            violated_path: a.clone(),
                        });
                    }
                }
                Relation::Satisfied
            }
            PatternType::Consistency => {
                let (d1, d2) = (&self.deduction[0], &self.deduction[1]);
                for a1 in paths.iter().filter(|a| a.same_prefix(d1)) {
                    for a2 in paths.iter().filter(|a| a.same_prefix(d2)) {
                        let (e1, e2) = (
                            a1.end.expect("statement paths are concrete"),
                            a2.end.expect("statement paths are concrete"),
                        );
                        if e1 != e2 {
                            // Convention: the d1 position is reported as the
                            // issue; the d2 subtoken is the suggestion.
                            return Relation::Violated(ViolationDetail {
                                original: e1,
                                suggested: e2,
                                violated_path: a1.clone(),
                            });
                        }
                    }
                }
                Relation::Satisfied
            }
        }
    }
}

impl fmt::Display for NamePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] Condition:", self.ty)?;
        for c in &self.condition {
            writeln!(f, "  {c}")?;
        }
        writeln!(f, "Deduction:")?;
        for d in &self.deduction {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use namer_syntax::{namepath, python, stmt, transform};

    fn paths_of(src: &str) -> Vec<NamePath> {
        let file = python::parse(src).unwrap();
        let s = &stmt::extract(&file)[0];
        let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
        namepath::extract(&plus, 10)
    }

    /// The Figure 2 (e) pattern, minus the origin decoration (we build paths
    /// without analysis in these unit tests).
    fn figure2_pattern(paths: &[NamePath]) -> NamePattern {
        let self_path = paths.iter().find(|p| p.end_str() == Some("self")).unwrap();
        let assert_path = paths.iter().find(|p| p.end_str() == Some("assert")).unwrap();
        let num_path = paths.iter().find(|p| p.end_str() == Some("NUM")).unwrap();
        let true_path = paths.iter().find(|p| p.end_str() == Some("True")).unwrap();
        let mut d = true_path.clone();
        d.end = Some(Sym::intern("Equal"));
        NamePattern::confusing_word(
            vec![self_path.clone(), assert_path.clone(), num_path.clone()],
            d,
        )
    }

    #[test]
    fn figure2_violation() {
        let paths = paths_of("self.assertTrue(picture.rotate_angle, 90)\n");
        let p = figure2_pattern(&paths);
        assert!(p.matches(&paths));
        match p.relation(&paths) {
            Relation::Violated(v) => {
                assert_eq!(v.original.as_str(), "True");
                assert_eq!(v.suggested.as_str(), "Equal");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn figure2_satisfaction() {
        let bad = paths_of("self.assertTrue(picture.rotate_angle, 90)\n");
        let p = figure2_pattern(&bad);
        let good = paths_of("self.assertEqual(picture.rotate_angle, 90)\n");
        assert_eq!(p.relation(&good), Relation::Satisfied);
    }

    #[test]
    fn no_match_when_condition_absent() {
        let paths = paths_of("self.assertTrue(picture.rotate_angle, 90)\n");
        let p = figure2_pattern(&paths);
        // A call without the numeric second argument does not match.
        let other = paths_of("self.assertTrue(picture.rotate_angle, msg)\n");
        assert_eq!(p.relation(&other), Relation::NoMatch);
    }

    #[test]
    fn consistency_example_3_8() {
        // self.<name1> = <name2>: the two names must agree.
        let ok = paths_of("self.docstring = docstring\n");
        let bad = paths_of("self.help = docstring\n");
        // Deduction prefixes from the satisfied statement.
        let d1 = ok
            .iter()
            .find(|p| p.to_string().contains("AttributeStore 1 Attr"))
            .unwrap()
            .to_symbolic();
        let d2 = ok
            .iter()
            .find(|p| p.to_string().starts_with("Assign 1 NameLoad"))
            .unwrap()
            .to_symbolic();
        let self_cond = ok.iter().find(|p| p.end_str() == Some("self")).unwrap().clone();
        let p = NamePattern::consistency(vec![self_cond], d1, d2);
        assert_eq!(p.relation(&ok), Relation::Satisfied);
        match p.relation(&bad) {
            Relation::Violated(v) => {
                assert_eq!(v.original.as_str(), "help");
                assert_eq!(v.suggested.as_str(), "docstring");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn satisfaction_rate() {
        let paths = paths_of("self.assertTrue(x, 90)\n");
        let mut p = figure2_pattern(&paths);
        assert_eq!(p.satisfaction_rate(), 0.0);
        p.matches = 10;
        p.satisfactions = 8;
        assert!((p.satisfaction_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symbolic")]
    fn consistency_rejects_concrete_deductions() {
        let paths = paths_of("self.x = y\n");
        let _ = NamePattern::consistency(vec![], paths[0].clone(), paths[1].clone());
    }

    #[test]
    #[should_panic(expected = "concrete")]
    fn confusing_rejects_symbolic_deduction() {
        let paths = paths_of("self.x = y\n");
        let _ = NamePattern::confusing_word(vec![], paths[0].to_symbolic());
    }
}
