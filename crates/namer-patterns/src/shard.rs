//! Pattern-axis sharding: partition a [`PatternSet`] into prefix-disjoint
//! shards so one statement can be matched against slices of a huge mined
//! set concurrently (DESIGN.md §9).
//!
//! The unit of partitioning is the *prefix group*: all patterns sharing the
//! interned [`PrefixId`] of their first deduction path. Groups are atomic —
//! [`PatternSet::check_into`] only ever considers a pattern when that prefix
//! occurs in the statement, so keeping a group on one shard means each shard
//! can run the exact same candidate walk over its own index and no two
//! shards ever visit the same pattern. Groups are balanced across shards by
//! total pattern weight (condition + deduction key count) with a greedy
//! longest-processing-time pass, deterministically tie-broken so the same
//! set and plan always yield the same partition.
//!
//! Per-shard hits carry their merge key ([`ShardHit::pos`], the position of
//! the matched prefix in the statement's path list, plus the global pattern
//! index), so sorting the union of all shards' hits by `(pos, pattern_idx)`
//! reproduces the serial [`PatternSet::check`] order exactly — the property
//! the detector relies on for byte-identical reports at any
//! (file-threads × pattern-shards) combination.

use crate::mining::{resolve_threads, MatchScratch, PathSet, PatternSet};
use crate::pattern::Relation;
use namer_syntax::PrefixId;
use std::collections::HashMap;

/// Below this many patterns a [`ShardPlan`] falls back to a single shard:
/// the merge overhead would dominate any parallel win.
pub const DEFAULT_MIN_PATTERNS: usize = 64;

/// How to partition a pattern set along the pattern axis.
///
/// The plan is part of the scan configuration: it changes only scheduling,
/// never results, but it is still folded into the detector fingerprint so
/// cached scan state is keyed by the exact configuration that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Requested shard count. `1` disables sharding; `0` means one shard
    /// per available core (same convention as worker threads).
    pub shards: usize,
    /// Pattern sets smaller than this stay unsharded regardless of
    /// [`ShardPlan::shards`].
    pub min_patterns: usize,
}

impl Default for ShardPlan {
    fn default() -> ShardPlan {
        ShardPlan::unsharded()
    }
}

impl ShardPlan {
    /// The identity plan: everything on one shard.
    pub fn unsharded() -> ShardPlan {
        ShardPlan {
            shards: 1,
            min_patterns: DEFAULT_MIN_PATTERNS,
        }
    }

    /// A plan requesting `shards` shards with the default size threshold.
    pub fn with_shards(shards: usize) -> ShardPlan {
        ShardPlan {
            shards,
            min_patterns: DEFAULT_MIN_PATTERNS,
        }
    }

    /// The shard count this plan actually yields for a set of
    /// `pattern_count` patterns: the requested count (resolved like a
    /// thread count, so `0` = all cores), clamped to the set size, or `1`
    /// when the set is below [`ShardPlan::min_patterns`].
    pub fn effective(&self, pattern_count: usize) -> usize {
        if pattern_count < self.min_patterns {
            return 1;
        }
        resolve_threads(self.shards).clamp(1, pattern_count.max(1))
    }
}

/// One match hit from [`PatternSet::check_shard_into`], tagged with the key
/// that merges per-shard hit lists back into serial order.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardHit {
    /// Position in the statement's path list where the pattern's first
    /// deduction prefix matched (primary merge key).
    pub pos: u32,
    /// Global index of the matched pattern in the full set (secondary merge
    /// key — candidate lists are walked in ascending index order).
    pub pattern_idx: usize,
    /// The match relation (never [`Relation::NoMatch`]).
    pub relation: Relation,
}

/// A prefix-disjoint partition of a [`PatternSet`] built by
/// [`PatternSet::shard`].
///
/// Holds per-shard first-deduction-prefix indexes over the *shared* set
/// (global pattern indices; patterns are not cloned). Every pattern lives
/// in exactly one shard, and all patterns sharing a first-deduction prefix
/// live together.
#[derive(Clone, Debug)]
pub struct PatternShards {
    /// Shard id of each pattern, parallel to `PatternSet::patterns`.
    assignment: Vec<u32>,
    /// Per-shard prefix → ascending global pattern indices.
    indexes: Vec<HashMap<PrefixId, Vec<usize>>>,
    /// Total pattern weight placed on each shard (for balance inspection).
    loads: Vec<u64>,
}

impl PatternShards {
    fn build(set: &PatternSet, plan: &ShardPlan) -> PatternShards {
        // One atomic group per first-deduction prefix; weight is the
        // per-candidate match cost (number of interned keys quick_match
        // walks, plus one for the relation check).
        let mut groups: Vec<(u64, usize, PrefixId, &[usize])> = set
            .index
            .iter()
            .map(|(&pid, idxs)| {
                let weight: u64 = idxs
                    .iter()
                    .map(|&i| 1 + set.cond_keys[i].len() as u64 + set.ded_keys[i].len() as u64)
                    .sum();
                (weight, idxs[0], pid, idxs.as_slice())
            })
            .collect();
        // LPT greedy: heaviest group first, deterministic tie-break on the
        // group's lowest pattern index (unique per group).
        groups.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let shard_count = plan.effective(set.len()).min(groups.len()).max(1);
        let mut loads = vec![0u64; shard_count];
        let mut indexes: Vec<HashMap<PrefixId, Vec<usize>>> =
            vec![HashMap::new(); shard_count];
        let mut assignment = vec![0u32; set.len()];
        for (weight, _, pid, idxs) in groups {
            // `min_by_key` keeps the first minimum, so ties deterministically
            // go to the lowest shard id.
            let s = loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &load)| load)
                .map(|(i, _)| i)
                .expect("at least one shard");
            loads[s] += weight;
            indexes[s].insert(pid, idxs.to_vec());
            for &i in idxs {
                assignment[i] = s as u32;
            }
        }
        PatternShards {
            assignment,
            indexes,
            loads,
        }
    }

    /// Number of shards (≥ 1; `1` means the partition is trivial).
    pub fn shard_count(&self) -> usize {
        self.indexes.len()
    }

    /// Shard id of each pattern, parallel to the set's pattern list.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The shard holding pattern `idx`.
    pub fn shard_of(&self, idx: usize) -> usize {
        self.assignment[idx] as usize
    }

    /// Total pattern weight placed on each shard (balance diagnostics).
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }
}

impl PatternSet {
    /// Partitions this set into prefix-disjoint shards according to `plan`.
    pub fn shard(&self, plan: &ShardPlan) -> PatternShards {
        PatternShards::build(self, plan)
    }

    /// Checks `stmt` against the patterns of one shard only, writing every
    /// match as a [`ShardHit`] into `out` (cleared first). `scratch` is
    /// reusable across statements and shards.
    ///
    /// Running this for every shard of `shards` and sorting the combined
    /// hits by `(pos, pattern_idx)` yields exactly the
    /// [`PatternSet::check_into`] output (see [`PatternSet::check_sharded`]).
    pub fn check_shard_into(
        &self,
        shards: &PatternShards,
        shard: usize,
        stmt: &PathSet,
        scratch: &mut MatchScratch,
        out: &mut Vec<ShardHit>,
    ) {
        out.clear();
        scratch.begin(self.patterns.len());
        let index = &shards.indexes[shard];
        for (pos, &pid) in stmt.prefix_ids().iter().enumerate() {
            let Some(cands) = index.get(&pid) else {
                continue;
            };
            for &i in cands {
                if !scratch.first_visit(i) {
                    continue;
                }
                if !self.quick_match(i, stmt) {
                    continue;
                }
                match self.patterns[i].relation(&stmt.paths) {
                    Relation::NoMatch => {}
                    relation => out.push(ShardHit {
                        pos: pos as u32,
                        pattern_idx: i,
                        relation,
                    }),
                }
            }
        }
    }

    /// Checks `stmt` against every shard (serially) and merges the hits back
    /// into canonical order. Allocates; exists as the reference semantics
    /// for sharded checking and for tests — hot loops run
    /// [`PatternSet::check_shard_into`] per worker instead.
    pub fn check_sharded(&self, shards: &PatternShards, stmt: &PathSet) -> Vec<(usize, Relation)> {
        let mut scratch = MatchScratch::for_set(self);
        let mut shard_out: Vec<ShardHit> = Vec::new();
        let mut all: Vec<ShardHit> = Vec::new();
        for shard in 0..shards.shard_count() {
            self.check_shard_into(shards, shard, stmt, &mut scratch, &mut shard_out);
            all.append(&mut shard_out);
        }
        merge_shard_hits(&mut all);
        all.into_iter().map(|h| (h.pattern_idx, h.relation)).collect()
    }
}

/// Sorts a combined per-statement hit list into canonical
/// [`PatternSet::check`] order. Keys are unique — a pattern hits a
/// statement at most once — so an unstable sort is exact.
pub fn merge_shard_hits(hits: &mut [ShardHit]) {
    hits.sort_unstable_by_key(|h| (h.pos, h.pattern_idx));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confusion::ConfusingPairs;
    use crate::mining::{mine_patterns, MiningConfig};
    use crate::pattern::PatternType;
    use namer_syntax::{namepath, python, stmt, transform, Sym};

    fn path_set(src: &str) -> PathSet {
        let file = python::parse(src).unwrap();
        let s = &stmt::extract(&file)[0];
        let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
        PathSet::new(namepath::extract(&plus, 10))
    }

    fn mined_set() -> PatternSet {
        let mut stmts: Vec<PathSet> = Vec::new();
        for src in [
            "self.assertEqual(value, 90)\n",
            "self.name = name\n",
            "self.value = value\n",
            "self.data = data\n",
        ] {
            stmts.extend(std::iter::repeat_with(|| path_set(src)).take(20));
        }
        stmts.extend(std::iter::repeat_with(|| path_set("self.assertTrue(value, 90)\n")).take(2));
        let mut pairs = ConfusingPairs::default();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let cfg = MiningConfig {
            min_path_count: 2,
            min_support: 5,
            ..MiningConfig::default()
        };
        let mut patterns = mine_patterns(&stmts, PatternType::Consistency, None, &cfg);
        patterns.extend(mine_patterns(
            &stmts,
            PatternType::ConfusingWord,
            Some(&pairs),
            &cfg,
        ));
        assert!(!patterns.is_empty(), "test corpus mines no patterns");
        PatternSet::new(patterns)
    }

    fn tight_plan(shards: usize) -> ShardPlan {
        ShardPlan {
            shards,
            min_patterns: 0,
        }
    }

    #[test]
    fn small_sets_fall_back_to_one_shard() {
        let set = mined_set();
        let plan = ShardPlan {
            shards: 8,
            min_patterns: set.len() + 1,
        };
        assert_eq!(plan.effective(set.len()), 1);
        assert_eq!(set.shard(&plan).shard_count(), 1);
    }

    #[test]
    fn zero_shards_means_auto() {
        let plan = ShardPlan {
            shards: 0,
            min_patterns: 0,
        };
        assert_eq!(plan.effective(10_000), resolve_threads(0).clamp(1, 10_000));
    }

    #[test]
    fn every_pattern_lands_on_exactly_one_shard() {
        let set = mined_set();
        for k in [1usize, 2, 3, 8] {
            let shards = set.shard(&tight_plan(k));
            assert!(shards.shard_count() >= 1 && shards.shard_count() <= k.max(1));
            assert_eq!(shards.assignment().len(), set.len());
            let mut per_shard = vec![0usize; shards.shard_count()];
            for &s in shards.assignment() {
                per_shard[s as usize] += 1;
            }
            assert_eq!(per_shard.iter().sum::<usize>(), set.len());
        }
    }

    #[test]
    fn prefix_groups_stay_together() {
        let set = mined_set();
        let shards = set.shard(&tight_plan(4));
        let mut by_prefix: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for (i, p) in set.patterns.iter().enumerate() {
            let pid = p.deduction[0].prefix_id();
            let shard = shards.shard_of(i);
            assert_eq!(
                *by_prefix.entry(pid).or_insert(shard),
                shard,
                "prefix group split across shards"
            );
        }
    }

    #[test]
    fn sharding_is_deterministic() {
        let set = mined_set();
        let a = set.shard(&tight_plan(4));
        let b = set.shard(&tight_plan(4));
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(a.loads(), b.loads());
    }

    #[test]
    fn check_sharded_matches_check_at_every_shard_count() {
        let set = mined_set();
        let stmts = [
            path_set("self.assertTrue(value, 90)\n"),
            path_set("self.assertEqual(value, 90)\n"),
            path_set("self.help = docstring\n"),
            path_set("self.name = name\n"),
            path_set("unrelated(x)\n"),
        ];
        for k in [1usize, 2, 3, 4, 8] {
            let shards = set.shard(&tight_plan(k));
            for s in &stmts {
                assert_eq!(
                    set.check_sharded(&shards, s),
                    set.check(s),
                    "sharded check diverges at {k} shards"
                );
            }
        }
    }
}
