//! Property-based tests for patterns, mining, and the FP tree.

use namer_patterns::{
    mine_patterns, ConfusingPairs, FpTree, MiningConfig, PathSet, PatternSet, PatternType,
    Relation, ShardPlan,
};
use namer_syntax::namepath::NamePath;
use namer_syntax::{PrefixId, Sym};
use proptest::prelude::*;

fn np(tag: u8, end: &str) -> NamePath {
    NamePath::concrete(
        vec![(Sym::intern(&format!("P{tag}")), 0)],
        Sym::intern(end),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fptree_root_children_counts_sum_to_transactions(
        transactions in proptest::collection::vec(
            proptest::collection::vec((0u8..5, 0u8..3), 1..5), 1..40)
    ) {
        let mut tree = FpTree::new();
        for t in &transactions {
            let paths: Vec<NamePath> =
                t.iter().map(|&(tag, e)| np(tag, &format!("e{e}"))).collect();
            tree.update(&paths);
        }
        let total: u64 = tree
            .children(tree.root())
            .iter()
            .map(|&c| tree.count(c))
            .sum();
        prop_assert_eq!(total, transactions.len() as u64);
    }

    #[test]
    fn child_counts_never_exceed_parent(
        transactions in proptest::collection::vec(
            proptest::collection::vec((0u8..4, 0u8..2), 1..4), 1..30)
    ) {
        let mut tree = FpTree::new();
        for t in &transactions {
            let paths: Vec<NamePath> =
                t.iter().map(|&(tag, e)| np(tag, &format!("e{e}"))).collect();
            tree.update(&paths);
        }
        fn check(tree: &FpTree, node: namer_patterns::fptree::NodeRef) -> bool {
            let parent_count = tree.count(node);
            tree.children(node).iter().all(|&c| {
                (tree.path(node).is_none() || tree.count(c) <= parent_count) && check(tree, c)
            })
        }
        prop_assert!(check(&tree, tree.root()));
    }

    #[test]
    fn violation_implies_match_and_not_satisfaction(
        good in 10u8..40, bad in 1u8..5
    ) {
        // good statements end in "Equal", bad ones in "True".
        let mut stmts: Vec<PathSet> = Vec::new();
        for _ in 0..good {
            stmts.push(PathSet::new(vec![np(0, "self"), np(1, "Equal")]));
        }
        for _ in 0..bad {
            stmts.push(PathSet::new(vec![np(0, "self"), np(1, "True")]));
        }
        let mut pairs = ConfusingPairs::new();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let config = MiningConfig {
            min_path_count: 2,
            min_support: 5,
            min_satisfaction: 0.5,
            ..MiningConfig::default()
        };
        let patterns = mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), &config);
        for p in &patterns {
            for s in &stmts {
                match p.relation(&s.paths) {
                    Relation::Violated(_) => prop_assert!(p.matches(&s.paths)),
                    Relation::Satisfied => prop_assert!(p.matches(&s.paths)),
                    Relation::NoMatch => prop_assert!(!p.matches(&s.paths)),
                }
            }
        }
    }

    #[test]
    fn prune_counts_are_consistent(
        good in 10u8..40, bad in 0u8..6
    ) {
        let mut stmts: Vec<PathSet> = Vec::new();
        for _ in 0..good {
            stmts.push(PathSet::new(vec![np(0, "self"), np(1, "Equal")]));
        }
        for _ in 0..bad {
            stmts.push(PathSet::new(vec![np(0, "self"), np(1, "True")]));
        }
        let mut pairs = ConfusingPairs::new();
        pairs.insert(Sym::intern("True"), Sym::intern("Equal"));
        let config = MiningConfig {
            min_path_count: 2,
            min_support: 5,
            min_satisfaction: 0.0,
            ..MiningConfig::default()
        };
        let patterns = mine_patterns(&stmts, PatternType::ConfusingWord, Some(&pairs), &config);
        for p in &patterns {
            prop_assert!(p.satisfactions <= p.matches);
            prop_assert!(p.matches as usize <= stmts.len());
            prop_assert!(p.satisfaction_rate() >= 0.0 && p.satisfaction_rate() <= 1.0);
        }
    }

    #[test]
    fn prefix_interning_round_trips(
        prefix in proptest::collection::vec((0u8..12, 0u32..4), 0..6)
    ) {
        let prefix: Vec<(Sym, u32)> = prefix
            .iter()
            .map(|&(tag, idx)| (Sym::intern(&format!("V{tag}")), idx))
            .collect();
        let id = PrefixId::intern(&prefix);
        prop_assert_eq!(id.as_slice(), prefix.as_slice());
        // Interning is idempotent: the same prefix always maps to the
        // same dense id.
        prop_assert_eq!(PrefixId::intern(&prefix), id);
    }

    #[test]
    fn path_set_lookups_match_linear_scan(
        paths in proptest::collection::vec((0u8..6, 0u8..4), 1..8)
    ) {
        let paths: Vec<NamePath> = paths
            .iter()
            .map(|&(tag, e)| np(tag, &format!("e{e}")))
            .collect();
        let set = PathSet::new(paths.clone());
        for p in &paths {
            // The interned-key index agrees with a linear scan; on duplicate
            // prefixes the last occurrence wins (HashMap-collect order).
            let linear = paths
                .iter()
                .rev()
                .find(|q| q.prefix == p.prefix)
                .and_then(|q| q.end);
            prop_assert_eq!(set.end_at(&p.prefix), linear);
            prop_assert_eq!(set.end_at_id(p.prefix_id()), linear);
            // Every concrete path is found via its symbolic shape.
            prop_assert!(set.contains_eq(&p.to_symbolic()));
        }
    }

    #[test]
    fn shards_partition_patterns_prefix_disjoint_exactly_once(
        groups in proptest::collection::vec((0u8..8, 10u8..25), 1..5),
        shard_count in 0usize..9,
    ) {
        // Each distinct tag yields its own deduction prefix, so mining over
        // several tags produces several prefix groups to distribute.
        let mut stmts: Vec<PathSet> = Vec::new();
        for &(tag, n) in &groups {
            for _ in 0..n {
                stmts.push(PathSet::new(vec![np(tag, "self"), np(tag + 8, "Equal")]));
            }
        }
        let config = MiningConfig {
            min_path_count: 2,
            min_support: 5,
            min_satisfaction: 0.5,
            ..MiningConfig::default()
        };
        let set = PatternSet::new(mine_patterns(
            &stmts,
            PatternType::Consistency,
            None,
            &config,
        ));
        let shards = set.shard(&ShardPlan { shards: shard_count, min_patterns: 0 });

        // Every pattern lands on exactly one shard.
        prop_assert_eq!(shards.assignment().len(), set.len());
        let mut per_shard = vec![0usize; shards.shard_count()];
        for &s in shards.assignment() {
            per_shard[s as usize] += 1;
        }
        prop_assert_eq!(per_shard.iter().sum::<usize>(), set.len());

        // Prefix groups are atomic: patterns sharing a first-deduction
        // prefix always share a shard.
        let mut by_prefix: std::collections::HashMap<_, usize> =
            std::collections::HashMap::new();
        for (i, p) in set.patterns.iter().enumerate() {
            let pid = p.deduction[0].prefix_id();
            let shard = shards.shard_of(i);
            prop_assert_eq!(*by_prefix.entry(pid).or_insert(shard), shard);
        }

        // And the partition is invisible to matching.
        for stmt in &stmts {
            prop_assert_eq!(set.check_sharded(&shards, stmt), set.check(stmt));
        }
    }

    #[test]
    fn diff_of_identical_sources_is_empty(src_idx in 0usize..4) {
        let sources = [
            "x = compute(y)\n",
            "self.name = name\n",
            "for i in range(5):\n    total += i\n",
            "with open(path) as f:\n    data = f.read()\n",
        ];
        let src = sources[src_idx];
        let a = namer_syntax::python::parse(src).expect("parses");
        let b = namer_syntax::python::parse(src).expect("parses");
        prop_assert!(namer_patterns::diff_word_pairs(&a, &b).is_empty());
    }
}
