//! `namer-serve`: a long-lived JSON-RPC 2.0 detection daemon on the
//! Namer session API.
//!
//! The daemon keeps trained models, warm scan caches, and the
//! configured thread/shard plan resident, and answers newline-delimited
//! JSON-RPC requests over stdio ([`serve_stdio`]) or TCP
//! ([`serve_listener`]) — the bridge from "CLI run per invocation" to
//! "service editor/CI clients hit at interactive latency".
//!
//! * [`proto`] — the wire protocol: request parsing, the typed error
//!   taxonomy, method param/result schemas, and byte-stable response
//!   rendering.
//! * [`server`] — the resident engine, the transport-agnostic
//!   [`ServeState`] protocol layer, and the three transports.
//!
//! The protocol is specified in DESIGN.md §13 and pinned by golden
//! transcripts in `tests/serve_protocol.rs`; concurrency determinism
//! and crash behavior are covered by `tests/serve_determinism.rs` and
//! `tests/serve_faults.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod server;

pub use proto::{
    parse_line, render_err, render_notification, render_ok, AnalyzeFile, AnalyzeParams,
    AnalyzeResult, CacheFlushParams, CacheFlushResult, CacheSummary, Capabilities, ErrorKind,
    Finding, FindingsEvent, InitializeParams, InitializeResult, ModelLoadParams, ModelLoadResult,
    Request, RpcError, Summary, UnwatchParams, UnwatchResult, WatchParams, WatchResult, METHODS,
    PROTOCOL_VERSION,
};
pub use server::{
    serve_listener, serve_stdio, serve_transcript, ConnCtx, ModelHost, ServeConfig, ServeState,
};
