//! Wire protocol for `namer serve`: newline-delimited JSON-RPC 2.0.
//!
//! One request per line, one response per line, no framing headers.
//! Requests are JSON-RPC 2.0 objects (`{"jsonrpc":"2.0","id":…,`
//! `"method":…,"params":{…}}`); every request gets exactly one response
//! on the same connection, carrying the echoed `id`. The only other
//! server-to-client traffic is the `file.findings` push notification
//! (id-less, for files subscribed via `file.watch`), written after the
//! response of the request that changed the findings. Blank lines are
//! ignored. The full protocol — handshake, method schemas, error codes,
//! and the backpressure policy — is specified in DESIGN.md §13/§14 and
//! pinned byte-for-byte by the golden transcripts in
//! `tests/serve_protocol.rs`.
//!
//! Responses are rendered by [`render_ok`]/[`render_err`] with a
//! hand-formatted envelope and serde-derived result bodies, so key
//! order is fixed by struct declaration order (not by `serde_json`'s
//! sorted maps) and the wire format cannot drift silently.

use namer_core::Diagnostics;
use namer_observe::MetricsSnapshot;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Protocol revision spoken by this server. Clients send the revision
/// they expect in `initialize`; a mismatch is rejected with
/// [`ErrorKind::IncompatibleProtocol`] and the connection stays
/// uninitialized (the client may retry with a supported revision).
pub const PROTOCOL_VERSION: u32 = 1;

/// Methods the server accepts, in the order advertised by `initialize`.
pub const METHODS: [&str; 8] = [
    "initialize",
    "ping",
    "shutdown",
    "file.analyze",
    "model.load",
    "cache.flush",
    "file.watch",
    "file.unwatch",
];

/// Typed error taxonomy. The numeric codes follow JSON-RPC 2.0
/// (`-32700..-32600` reserved range) with server-defined codes in the
/// `-32000..-32099` implementation range; the snake_case tag is
/// machine-matchable and travels in `error.data.kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not valid JSON.
    ParseError,
    /// Valid JSON, but not a well-formed JSON-RPC 2.0 request object.
    InvalidRequest,
    /// The request named a method the server does not implement.
    MethodNotFound,
    /// `params` failed to validate against the method's schema.
    InvalidParams,
    /// The server failed internally while executing a valid request.
    Internal,
    /// The bounded request queue was full; the request was rejected
    /// without being buffered. Retry after draining in-flight work.
    ServerBusy,
    /// A method other than `initialize` arrived before the handshake.
    NotInitialized,
    /// `initialize` arrived twice on one connection.
    AlreadyInitialized,
    /// The client asked for a protocol revision the server cannot speak.
    IncompatibleProtocol,
    /// The requested model is unknown, failed to load, or failed to
    /// build a detection session.
    ModelError,
    /// The server has accepted `shutdown` and no longer executes
    /// requests.
    ShuttingDown,
}

impl ErrorKind {
    /// The JSON-RPC numeric error code for this kind.
    pub fn code(self) -> i64 {
        match self {
            ErrorKind::ParseError => -32700,
            ErrorKind::InvalidRequest => -32600,
            ErrorKind::MethodNotFound => -32601,
            ErrorKind::InvalidParams => -32602,
            ErrorKind::Internal => -32603,
            ErrorKind::ServerBusy => -32000,
            ErrorKind::NotInitialized => -32001,
            ErrorKind::AlreadyInitialized => -32002,
            ErrorKind::IncompatibleProtocol => -32003,
            ErrorKind::ModelError => -32004,
            ErrorKind::ShuttingDown => -32005,
        }
    }

    /// The snake_case tag carried in `error.data.kind`.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::ParseError => "parse_error",
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::MethodNotFound => "method_not_found",
            ErrorKind::InvalidParams => "invalid_params",
            ErrorKind::Internal => "internal",
            ErrorKind::ServerBusy => "server_busy",
            ErrorKind::NotInitialized => "not_initialized",
            ErrorKind::AlreadyInitialized => "already_initialized",
            ErrorKind::IncompatibleProtocol => "incompatible_protocol",
            ErrorKind::ModelError => "model_error",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }
}

/// A typed protocol error: kind + human message + optional free-form
/// detail. Rendered as `{"code":…,"message":…,"data":{"kind":…[,"detail":…]}}`.
#[derive(Clone, Debug)]
pub struct RpcError {
    /// The error taxonomy entry (fixes the code and the data kind).
    pub kind: ErrorKind,
    /// One-line human-readable description.
    pub message: String,
    /// Optional extra context (e.g. a serde or I/O error string).
    /// Detail text may vary across library versions, so golden
    /// transcripts only pin responses without it.
    pub detail: Option<String>,
}

impl RpcError {
    /// Builds an error with no detail.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> RpcError {
        RpcError {
            kind,
            message: message.into(),
            detail: None,
        }
    }

    /// Attaches free-form detail text.
    pub fn with_detail(mut self, detail: impl Into<String>) -> RpcError {
        self.detail = Some(detail.into());
        self
    }
}

/// A parsed, envelope-validated request. `params` is `Null` when the
/// client omitted it (methods with all-optional parameters accept
/// that).
#[derive(Clone, Debug)]
pub struct Request {
    /// The request id, echoed verbatim in the response. A string,
    /// number, or `null` per JSON-RPC 2.0.
    pub id: Value,
    /// The method name.
    pub method: String,
    /// The params object, or `Null` when absent.
    pub params: Value,
}

/// Parses and validates one wire line into a [`Request`].
///
/// On failure returns the best-effort id to echo (when the envelope
/// carried a legal one) plus the typed error; the caller renders that
/// with [`render_err`]. Callers should skip blank lines before calling.
pub fn parse_line(line: &str) -> Result<Request, (Option<Value>, RpcError)> {
    let value: Value = serde_json::from_str(line)
        .map_err(|_| (None, RpcError::new(ErrorKind::ParseError, "invalid JSON")))?;
    let Value::Object(obj) = value else {
        return Err((
            None,
            RpcError::new(ErrorKind::InvalidRequest, "request must be a JSON object"),
        ));
    };
    let id = obj.get("id").cloned();
    let id_ok = matches!(
        &id,
        Some(Value::String(_)) | Some(Value::Number(_)) | Some(Value::Null)
    );
    let echo = if id_ok { id.clone() } else { None };
    if obj.get("jsonrpc").and_then(Value::as_str) != Some("2.0") {
        return Err((
            echo,
            RpcError::new(
                ErrorKind::InvalidRequest,
                "missing or wrong \"jsonrpc\" (expected \"2.0\")",
            ),
        ));
    }
    if !id_ok {
        let message = if id.is_none() {
            "missing request id"
        } else {
            "request id must be a string, number, or null"
        };
        return Err((None, RpcError::new(ErrorKind::InvalidRequest, message)));
    }
    let Some(method) = obj.get("method").and_then(Value::as_str) else {
        return Err((echo, RpcError::new(ErrorKind::InvalidRequest, "missing method")));
    };
    let params = obj.get("params").cloned().unwrap_or(Value::Null);
    if !(params.is_null() || params.is_object()) {
        return Err((
            echo,
            RpcError::new(ErrorKind::InvalidParams, "params must be an object"),
        ));
    }
    Ok(Request {
        id: id.expect("id validated above"),
        method: method.to_owned(),
        params,
    })
}

/// Deserializes a method's params from the request's `params` value.
/// `Null` (params omitted) is treated as the empty object, so methods
/// whose parameters are all optional accept a bare request.
pub fn params_from<T: DeserializeOwned>(params: &Value) -> Result<T, RpcError> {
    let value = if params.is_null() {
        Value::Object(serde_json::Map::new())
    } else {
        params.clone()
    };
    serde_json::from_value(value).map_err(|e| {
        RpcError::new(ErrorKind::InvalidParams, "invalid params").with_detail(e.to_string())
    })
}

/// Renders a success response line (no trailing newline).
/// `result_json` must already be serialized JSON.
pub fn render_ok(id: &Value, result_json: &str) -> String {
    let id = serde_json::to_string(id).expect("request ids serialize");
    format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"result\":{result_json}}}")
}

/// Renders an error response line (no trailing newline). `id` is
/// `None` when the request's id could not be recovered, in which case
/// JSON-RPC mandates `"id":null`.
pub fn render_err(id: Option<&Value>, err: &RpcError) -> String {
    let id = match id {
        Some(v) => serde_json::to_string(v).expect("request ids serialize"),
        None => "null".to_owned(),
    };
    let message = serde_json::to_string(&err.message).expect("strings serialize");
    let mut data = format!("{{\"kind\":\"{}\"", err.kind.tag());
    if let Some(detail) = &err.detail {
        data.push_str(",\"detail\":");
        data.push_str(&serde_json::to_string(detail).expect("strings serialize"));
    }
    data.push('}');
    format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":{id},\"error\":{{\"code\":{},\"message\":{message},\"data\":{data}}}}}",
        err.kind.code()
    )
}

// ---------------------------------------------------------------------------
// Method params (client → server)
// ---------------------------------------------------------------------------

/// `initialize` params: the handshake.
#[derive(Clone, Debug, Deserialize)]
pub struct InitializeParams {
    /// Protocol revision the client speaks; must equal
    /// [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// Optional client identification string (logged, never parsed).
    pub client: Option<String>,
}

/// One file in a `file.analyze` batch.
#[derive(Clone, Debug, Deserialize)]
pub struct AnalyzeFile {
    /// Repository label for reports; defaults to `"client"`.
    pub repo: Option<String>,
    /// File path (used for reports and cache keys within the batch).
    pub path: String,
    /// Full file contents.
    pub content: String,
}

/// `file.analyze` params: a batch of files to detect over.
#[derive(Clone, Debug, Deserialize)]
pub struct AnalyzeParams {
    /// The files to analyze, all in the served model's language.
    pub files: Vec<AnalyzeFile>,
    /// Model name to analyze with; optional when the server hosts
    /// exactly one model.
    pub model: Option<String>,
    /// Restrict findings to files whose content changed since the
    /// previous cached scan (requires a cache-backed server).
    #[serde(default)]
    pub changed_only: bool,
}

/// `model.load` params: pre-warm a model into a resident session.
#[derive(Clone, Debug, Deserialize)]
pub struct ModelLoadParams {
    /// The model name (registry file stem, or the single hosted model).
    pub model: String,
}

/// `cache.flush` params. With no params every resident session's dirty
/// cache is persisted.
#[derive(Clone, Debug, Deserialize)]
pub struct CacheFlushParams {
    /// Restrict to one resident model's cache.
    pub model: Option<String>,
    /// Also clear the in-memory cache before persisting (next analyze
    /// re-scans everything fresh).
    #[serde(default)]
    pub clear: bool,
}

/// `file.watch` params: subscribe one file to `file.findings` push
/// notifications. The server analyzes `content` immediately and stores
/// the findings as the subscription's baseline; clients re-send
/// `file.watch` with fresh content on every edit, and any request
/// (watch or analyze) whose findings for the file differ from the
/// baseline triggers a notification.
#[derive(Clone, Debug, Deserialize)]
pub struct WatchParams {
    /// Repository label; defaults to `"client"` like `file.analyze`.
    pub repo: Option<String>,
    /// File path — together with `repo`, the subscription key.
    pub path: String,
    /// Current file contents.
    pub content: String,
    /// Model to analyze with; optional when the server hosts exactly
    /// one model.
    pub model: Option<String>,
}

/// `file.unwatch` params: drop one subscription.
#[derive(Clone, Debug, Deserialize)]
pub struct UnwatchParams {
    /// Repository label; defaults to `"client"`.
    pub repo: Option<String>,
    /// File path of the subscription to drop.
    pub path: String,
}

// ---------------------------------------------------------------------------
// Method results (server → client) — field order is wire order.
// ---------------------------------------------------------------------------

/// Feature flags advertised by `initialize`. Additions here are
/// protocol-compatible: revision-1 clients that predate a capability
/// simply ignore the unknown key (pinned by
/// `serve_old_clients_ignore_new_initialize_fields`).
#[derive(Clone, Debug, Serialize)]
pub struct Capabilities {
    /// `file.watch`/`file.unwatch` are accepted and the server pushes
    /// `file.findings` notifications for watched files.
    pub watch: bool,
    /// Cache-backed analyzes splice statement-level regions instead of
    /// rescanning whole files (DESIGN.md §14).
    pub stmt_regions: bool,
    /// CLI names of the language frontends this server can analyze, in
    /// registry order (trailing so revision-1 clients parse unchanged).
    pub languages: Vec<&'static str>,
}

/// `initialize` result.
#[derive(Clone, Debug, Serialize)]
pub struct InitializeResult {
    /// Protocol revision the server speaks.
    pub protocol: u32,
    /// Server implementation name.
    pub server: &'static str,
    /// Server crate version.
    pub version: &'static str,
    /// Model names this server can analyze with.
    pub models: Vec<String>,
    /// Methods the server accepts.
    pub methods: Vec<&'static str>,
    /// Feature flags (trailing so older clients parse unchanged).
    pub capabilities: Capabilities,
}

/// One finding in a `file.analyze` result: the session's
/// `Report`/`Violation` projected onto the wire.
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// Repository label of the offending file.
    pub repo: String,
    /// Path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The name as written.
    pub original: String,
    /// The suggested replacement name.
    pub suggested: String,
    /// Pattern family (`"consistency"` or `"confusing-word"`).
    pub pattern: String,
    /// Classifier decision value (more positive = more confident).
    pub decision: f64,
    /// The matched statement, rendered.
    pub rendered: String,
    /// The offending source line with the fix applied, when the
    /// rewrite is unambiguous.
    pub fixed: Option<String>,
}

/// Cache accounting for one `file.analyze` request; absent when the
/// server runs cacheless.
#[derive(Clone, Debug, Serialize)]
pub struct CacheSummary {
    /// Files served from the warm cache.
    pub reused: usize,
    /// Files scanned fresh this request.
    pub fresh: usize,
    /// Files whose parse failure was replayed from cache.
    pub parse_failures: usize,
    /// Files whose content changed since the previous cached scan.
    pub changed: usize,
}

/// Batch-level accounting for one `file.analyze` request.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Files in the request batch.
    pub files: usize,
    /// Findings returned (after any `changed_only` filter).
    pub findings: usize,
    /// Cache accounting, when the server is cache-backed.
    pub cache: Option<CacheSummary>,
}

/// `file.analyze` result.
#[derive(Clone, Debug, Serialize)]
pub struct AnalyzeResult {
    /// The findings, in deterministic pipeline order.
    pub findings: Vec<Finding>,
    /// Batch accounting.
    pub summary: Summary,
    /// Ingestion diagnostics (quarantines, I/O retries) for this
    /// request.
    pub diagnostics: Diagnostics,
    /// Per-request metrics snapshot (DESIGN.md §10); timings are
    /// zeroed when the server runs `--deterministic`.
    pub metrics: MetricsSnapshot,
}

/// `model.load` result.
#[derive(Clone, Debug, Serialize)]
pub struct ModelLoadResult {
    /// The resolved model name now resident.
    pub model: String,
    /// The model's language — a registry name such as `"Python"`, `"Java"`,
    /// or `"JavaScript"`.
    pub lang: String,
    /// Per-request metrics snapshot (includes the `model_load` phase
    /// when this request actually built the session).
    pub metrics: MetricsSnapshot,
}

/// `cache.flush` result.
#[derive(Clone, Debug, Serialize)]
pub struct CacheFlushResult {
    /// Models whose dirty cache was persisted by this request.
    pub flushed: Vec<String>,
    /// Models whose in-memory cache was cleared by this request.
    pub cleared: Vec<String>,
    /// Per-request metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// `file.watch` result: the subscription count plus the file's current
/// findings (the stored baseline — subsequent notifications only fire
/// when findings diverge from it).
#[derive(Clone, Debug, Serialize)]
pub struct WatchResult {
    /// Watched files on this connection after the call.
    pub watching: usize,
    /// Current findings for the watched file, in pipeline order.
    pub findings: Vec<Finding>,
    /// Per-request metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// `file.unwatch` result.
#[derive(Clone, Debug, Serialize)]
pub struct UnwatchResult {
    /// Whether a subscription existed and was removed.
    pub removed: bool,
    /// Watched files remaining on this connection.
    pub watching: usize,
}

/// `file.findings` notification params: one watched file's findings
/// changed. The full (possibly empty) finding set is pushed, not a
/// delta — clients replace their state for the file wholesale.
#[derive(Clone, Debug, Serialize)]
pub struct FindingsEvent {
    /// Repository label of the watched file.
    pub repo: String,
    /// Path of the watched file.
    pub path: String,
    /// The file's complete current findings.
    pub findings: Vec<Finding>,
}

/// Renders a server-push notification line (no `id`, no trailing
/// newline). `params_json` must already be serialized JSON.
pub fn render_notification(method: &str, params_json: &str) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"method\":\"{method}\",\"params\":{params_json}}}")
}

/// Canned `ping` result body.
pub const PONG: &str = "{\"pong\":true}";

/// Canned `shutdown` result body.
pub const OK_TRUE: &str = "{\"ok\":true}";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_parse_rejects_non_json() {
        let (id, err) = parse_line("{oops").unwrap_err();
        assert!(id.is_none());
        assert_eq!(err.kind, ErrorKind::ParseError);
        assert_eq!(
            render_err(id.as_ref(), &err),
            "{\"jsonrpc\":\"2.0\",\"id\":null,\"error\":{\"code\":-32700,\
             \"message\":\"invalid JSON\",\"data\":{\"kind\":\"parse_error\"}}}"
        );
    }

    #[test]
    fn serve_parse_rejects_bad_envelope() {
        // Non-object.
        let (_, err) = parse_line("[1,2]").unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        // Wrong jsonrpc version, but a legal id to echo.
        let (id, err) = parse_line("{\"jsonrpc\":\"1.0\",\"id\":7,\"method\":\"ping\"}").unwrap_err();
        assert_eq!(id, Some(Value::from(7)));
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        // Missing id.
        let (id, err) = parse_line("{\"jsonrpc\":\"2.0\",\"method\":\"ping\"}").unwrap_err();
        assert!(id.is_none());
        assert_eq!(err.message, "missing request id");
        // Illegal id type.
        let (id, err) =
            parse_line("{\"jsonrpc\":\"2.0\",\"id\":[1],\"method\":\"ping\"}").unwrap_err();
        assert!(id.is_none());
        assert_eq!(err.message, "request id must be a string, number, or null");
        // Missing method.
        let (id, err) = parse_line("{\"jsonrpc\":\"2.0\",\"id\":3}").unwrap_err();
        assert_eq!(id, Some(Value::from(3)));
        assert_eq!(err.message, "missing method");
        // Array params.
        let (_, err) =
            parse_line("{\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"ping\",\"params\":[]}")
                .unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidParams);
    }

    #[test]
    fn serve_parse_accepts_string_and_null_ids() {
        let req = parse_line("{\"jsonrpc\":\"2.0\",\"id\":\"abc\",\"method\":\"ping\"}").unwrap();
        assert_eq!(req.id, Value::from("abc"));
        assert_eq!(req.method, "ping");
        assert!(req.params.is_null());
        let req = parse_line("{\"jsonrpc\":\"2.0\",\"id\":null,\"method\":\"ping\"}").unwrap();
        assert_eq!(req.id, Value::Null);
    }

    #[test]
    fn serve_render_ok_pins_envelope_bytes() {
        assert_eq!(
            render_ok(&Value::from(5), PONG),
            "{\"jsonrpc\":\"2.0\",\"id\":5,\"result\":{\"pong\":true}}"
        );
        assert_eq!(
            render_ok(&Value::from("abc"), OK_TRUE),
            "{\"jsonrpc\":\"2.0\",\"id\":\"abc\",\"result\":{\"ok\":true}}"
        );
    }

    #[test]
    fn serve_render_err_includes_detail_when_present() {
        let err = RpcError::new(ErrorKind::InvalidParams, "invalid params").with_detail("boom");
        assert_eq!(
            render_err(Some(&Value::from(2)), &err),
            "{\"jsonrpc\":\"2.0\",\"id\":2,\"error\":{\"code\":-32602,\
             \"message\":\"invalid params\",\"data\":{\"kind\":\"invalid_params\",\
             \"detail\":\"boom\"}}}"
        );
    }

    #[test]
    fn serve_error_codes_are_unique_and_tagged() {
        let kinds = [
            ErrorKind::ParseError,
            ErrorKind::InvalidRequest,
            ErrorKind::MethodNotFound,
            ErrorKind::InvalidParams,
            ErrorKind::Internal,
            ErrorKind::ServerBusy,
            ErrorKind::NotInitialized,
            ErrorKind::AlreadyInitialized,
            ErrorKind::IncompatibleProtocol,
            ErrorKind::ModelError,
            ErrorKind::ShuttingDown,
        ];
        let mut codes: Vec<i64> = kinds.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len(), "duplicate error code");
        for kind in kinds {
            assert!(!kind.tag().is_empty());
            assert!(kind.tag().chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn serve_render_notification_has_no_id() {
        assert_eq!(
            render_notification("file.findings", "{\"repo\":\"r\",\"path\":\"p\",\"findings\":[]}"),
            "{\"jsonrpc\":\"2.0\",\"method\":\"file.findings\",\
             \"params\":{\"repo\":\"r\",\"path\":\"p\",\"findings\":[]}}"
        );
    }

    #[test]
    fn serve_watch_params_validate() {
        let p: WatchParams = params_from(&serde_json::json!({
            "path": "a.py",
            "content": "x = 1\n",
        }))
        .unwrap();
        assert!(p.repo.is_none());
        assert!(p.model.is_none());
        assert_eq!(p.path, "a.py");
        let err = params_from::<WatchParams>(&Value::Null).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidParams);
        let p: UnwatchParams = params_from(&serde_json::json!({"path": "a.py"})).unwrap();
        assert_eq!(p.path, "a.py");
    }

    #[test]
    fn serve_params_null_means_empty_object() {
        let p: CacheFlushParams = params_from(&Value::Null).unwrap();
        assert!(p.model.is_none());
        assert!(!p.clear);
        let err = params_from::<AnalyzeParams>(&Value::Null).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidParams);
        assert!(err.detail.is_some());
    }
}
